"""Trace-based invariant checkers.

Post-hoc validation of model and protocol invariants over a traced run
(``Network(..., trace=True)``).  The runtime already *enforces* the model;
these checkers independently *audit* it from the observable event stream,
which is how the property tests catch a kernel regression that the
enforcement path itself might share.

All checkers raise :class:`~repro.core.errors.ProtocolViolation` with the
offending events on failure and return quietly on success.
"""

from __future__ import annotations

from collections import defaultdict

from repro.core.errors import ProtocolViolation
from repro.core.results import ElectionResult


def _require_trace(result: ElectionResult) -> None:
    if not result.trace.enabled or not result.trace.events:
        raise ProtocolViolation(
            "invariant checks need a traced run: pass trace=True to Network"
        )


def assert_fifo_per_link(result: ElectionResult) -> None:
    """Per directed link, messages are delivered in the order sent.

    Matches the ``send`` stream (sender, to, type) against the ``deliver``
    stream (receiver, sender, type): for every ordered pair of nodes the
    two type sequences must be equal, with deliveries never outrunning
    sends.
    """
    _require_trace(result)
    sent: dict[tuple[int, int], list[str]] = defaultdict(list)
    delivered: dict[tuple[int, int], list[str]] = defaultdict(list)
    for event in result.trace.events:
        if event.kind == "send":
            sent[(event.node, event.get("to"))].append(event.get("message"))
        elif event.kind == "deliver":
            sender = event.get("sender")
            delivered[(sender, event.node)].append(event.get("message"))
    for link, delivered_types in delivered.items():
        sent_types = sent.get(link, [])
        if delivered_types != sent_types[: len(delivered_types)]:
            raise ProtocolViolation(
                f"FIFO violated on link {link}: sent {sent_types}, "
                f"delivered {delivered_types}"
            )


def assert_no_losses(result: ElectionResult) -> None:
    """Every sent message was delivered (to a live node) or addressed to a
    failed or crashed one — links are reliable."""
    _require_trace(result)
    dead_ids = {
        result.node_snapshots[p]["id"]
        for p in (*result.failed_positions, *result.crashed_positions)
    }
    sends = sum(
        1
        for e in result.trace.events
        if e.kind == "send" and e.get("to") not in dead_ids
    )
    sends_to_crashed = sum(
        1
        for e in result.trace.events
        if e.kind == "send" and e.get("to") in dead_ids
    )
    delivers = sum(1 for e in result.trace.events if e.kind == "deliver")
    # Messages to a mid-run-crashed node may have been delivered before the
    # crash, so the exact count is bracketed rather than pinned.
    if not sends <= delivers <= sends + sends_to_crashed:
        raise ProtocolViolation(
            f"message loss: {sends} sends to live nodes, up to "
            f"{sends_to_crashed} more to crashed ones, but {delivers} "
            "deliveries"
        )


def assert_levels_monotone(result: ElectionResult) -> None:
    """A candidate's level (or lattice level) never decreases."""
    _require_trace(result)
    last: dict[int, int] = {}
    for event in result.trace.events:
        if event.kind in ("level", "lattice_level"):
            level = event.get("level")
            if level < last.get(event.node, -1):
                raise ProtocolViolation(
                    f"node {event.node} level went backwards: "
                    f"{last[event.node]} -> {level} at t={event.time}"
                )
            last[event.node] = level


def assert_captured_at_most_once(result: ElectionResult) -> None:
    """Protocol A/C phase 1: each node surrenders to a contest at most once.

    (The message-complexity argument of Section 3 rests on this.)
    """
    _require_trace(result)
    captures: dict[int, int] = defaultdict(int)
    for event in result.trace.events:
        if event.kind == "captured_by":
            captures[event.node] += 1
    repeat = {node: c for node, c in captures.items() if c > 1}
    if repeat:
        raise ProtocolViolation(
            f"nodes contest-captured more than once: {repeat}"
        )


def assert_single_declaration(result: ElectionResult) -> None:
    """Exactly one ``leader`` trace event in the whole execution."""
    _require_trace(result)
    leaders = [e.node for e in result.trace.of_kind("leader")]
    if len(leaders) != 1:
        raise ProtocolViolation(f"leader declarations: {leaders}")


def assert_wakeups_before_activity(result: ElectionResult) -> None:
    """No node sends before its wake event."""
    _require_trace(result)
    awake: set[int] = set()
    for event in result.trace.events:
        if event.kind == "wake":
            awake.add(event.node)
        elif event.kind == "send" and event.node not in awake:
            raise ProtocolViolation(
                f"node {event.node} sent {event.get('message')} at "
                f"t={event.time} before waking"
            )


#: The full audit battery, in dependency-free order.
ALL_INVARIANTS = (
    assert_fifo_per_link,
    assert_no_losses,
    assert_levels_monotone,
    assert_captured_at_most_once,
    assert_single_declaration,
    assert_wakeups_before_activity,
)


def audit(result: ElectionResult) -> None:
    """Run every invariant checker against a traced result."""
    for checker in ALL_INVARIANTS:
        checker(result)
