"""Terminal sparkline charts for sweep results.

EXPERIMENTS.md and the examples stay plain-text; a sparkline row per series
is often all that is needed to *see* O(N) vs O(N log N) vs O(N²) at a
glance.  Pure Python, Unicode block glyphs.
"""

from __future__ import annotations

import math
from collections.abc import Mapping, Sequence

from repro.core.errors import ConfigurationError

_BARS = "▁▂▃▄▅▆▇█"


def sparkline(
    values: Sequence[float],
    *,
    log_scale: bool = False,
    bounds: tuple[float, float] | None = None,
) -> str:
    """One-line bar chart of ``values``.

    ``log_scale=True`` plots the logarithm — the right view for data
    spanning orders of magnitude (message counts across a doubling sweep).
    ``bounds`` fixes the (low, high) range so several sparklines share one
    scale and their heights are comparable (pass pre-logged bounds when
    combining with ``log_scale``).
    """
    if not values:
        raise ConfigurationError("cannot chart zero values")
    if log_scale:
        if any(v <= 0 for v in values):
            raise ConfigurationError("log-scale charts need positive values")
        values = [math.log(v) for v in values]
    low, high = bounds if bounds is not None else (min(values), max(values))
    if math.isclose(low, high):
        return _BARS[0] * len(values)
    span = high - low
    return "".join(
        _BARS[
            max(
                0,
                min(len(_BARS) - 1, int((v - low) / span * len(_BARS))),
            )
        ]
        for v in values
    )


def chart_series(
    xs: Sequence[float],
    series: Mapping[str, Sequence[float]],
    *,
    log_scale: bool = True,
    shared_scale: bool = True,
) -> str:
    """A labeled block of sparklines sharing one x-axis.

    With ``shared_scale`` (default) every row uses the same y-range, so bar
    heights compare *across* protocols — an O(N log N) series visibly
    out-climbs an O(N) one.  Example output::

        N:      16 .. 512
        C       ▁▂▃▃▄▅   (98 .. 4226)
        B       ▂▃▄▅▆█   (230 .. 19462)
    """
    width = max((len(name) for name in series), default=1)
    lines = [f"{'N:'.ljust(width)}  {xs[0]} .. {xs[-1]}"]
    bounds = None
    if shared_scale:
        flat = [v for values in series.values() for v in values]
        if not flat:
            raise ConfigurationError("cannot chart empty series")
        if log_scale:
            if any(v <= 0 for v in flat):
                raise ConfigurationError(
                    "log-scale charts need positive values"
                )
            bounds = (math.log(min(flat)), math.log(max(flat)))
        else:
            bounds = (min(flat), max(flat))
    for name, values in series.items():
        if len(values) != len(xs):
            raise ConfigurationError(
                f"series {name!r} has {len(values)} points for {len(xs)} xs"
            )
        line = sparkline(values, log_scale=log_scale, bounds=bounds)
        lines.append(
            f"{name.ljust(width)}  {line}   "
            f"({values[0]:g} .. {values[-1]:g})"
        )
    return "\n".join(lines)
