"""Plain-text table rendering for experiment reports.

Every experiment produces one or more tables in the style of the paper's
complexity summary; this renderer keeps them aligned, diff-friendly and
embeddable in EXPERIMENTS.md (GitHub renders the pipe form).
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any


def _format_cell(value: Any) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if abs(value) >= 1000 or value == int(value):
            return f"{value:.0f}"
        return f"{value:.2f}"
    return str(value)


def render_table(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """Render a GitHub-flavoured pipe table with aligned columns."""
    cells = [[_format_cell(v) for v in row] for row in rows]
    widths = [
        max(len(str(headers[i])), *(len(row[i]) for row in cells), 3)
        if cells
        else max(len(str(headers[i])), 3)
        for i in range(len(headers))
    ]

    def line(parts: Sequence[str]) -> str:
        return "| " + " | ".join(p.ljust(w) for p, w in zip(parts, widths)) + " |"

    out = [line([str(h) for h in headers])]
    out.append("|" + "|".join("-" * (w + 2) for w in widths) + "|")
    out.extend(line(row) for row in cells)
    return "\n".join(out)


def render_kv(title: str, pairs: Sequence[tuple[str, Any]]) -> str:
    """A titled key/value block for headline findings."""
    width = max((len(k) for k, _ in pairs), default=0)
    lines = [title, "-" * len(title)]
    lines.extend(f"{k.ljust(width)} : {_format_cell(v)}" for k, v in pairs)
    return "\n".join(lines)
