"""Empirical complexity checks.

The paper's claims are asymptotic; the benchmarks verify their *shape* on
finite sweeps.  Three tools cover every experiment:

* :func:`loglog_slope` — the growth exponent of a measured series (O(N)
  messages show slope ≈ 1, O(N²) slope ≈ 2, O(log N) slope ≈ 0.x);
* :func:`boundedness_ratio` — how flat ``measured / claimed_bound`` is
  across the sweep (flat ⇒ the bound's shape holds with some constant);
* :func:`crossover` — where one protocol overtakes another, for the
  "who wins, and from which N on" claims.

Pure Python on purpose: the core library has no hard dependencies, and the
sweeps are small enough that ``math`` is all we need.
"""

from __future__ import annotations

import math
from collections.abc import Callable, Sequence

from repro.core.errors import ConfigurationError


def loglog_slope(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Least-squares slope of ``log y`` against ``log x``.

    This is the empirical growth exponent: for ``y = c·x^a`` it returns
    ``a`` exactly.
    """
    if len(xs) != len(ys) or len(xs) < 2:
        raise ConfigurationError("need at least two matching samples")
    if any(x <= 0 for x in xs) or any(y <= 0 for y in ys):
        raise ConfigurationError("log-log fit needs positive samples")
    lx = [math.log(x) for x in xs]
    ly = [math.log(y) for y in ys]
    mean_x = sum(lx) / len(lx)
    mean_y = sum(ly) / len(ly)
    sxx = sum((x - mean_x) ** 2 for x in lx)
    if sxx == 0:
        raise ConfigurationError("all x values identical")
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(lx, ly))
    return sxy / sxx


def boundedness_ratio(
    xs: Sequence[float],
    ys: Sequence[float],
    bound: Callable[[float], float],
) -> float:
    """Spread of ``y / bound(x)`` across the sweep (max over min).

    A value close to 1 means the measurement tracks the claimed bound up to
    a constant; a value growing with the sweep means the bound's shape is
    wrong.
    """
    ratios = [y / bound(x) for x, y in zip(xs, ys)]
    low, high = min(ratios), max(ratios)
    if low <= 0:
        raise ConfigurationError("bound must be positive over the sweep")
    return high / low


def crossover(
    xs: Sequence[float], ys_a: Sequence[float], ys_b: Sequence[float]
) -> float | None:
    """Smallest x at which series A becomes ≤ series B (None if never)."""
    for x, a, b in zip(xs, ys_a, ys_b):
        if a <= b:
            return x
    return None


def doubling_ratios(xs: Sequence[float], ys: Sequence[float]) -> list[float]:
    """``y(2x)/y(x)`` along a doubling sweep.

    Ratios near 2 mean linear growth, near 4 quadratic, near 1 logarithmic
    — a scale-free way to read growth off a table.
    """
    out = []
    for i in range(len(xs) - 1):
        if xs[i + 1] != 2 * xs[i]:
            raise ConfigurationError("doubling_ratios needs a doubling sweep")
        out.append(ys[i + 1] / ys[i])
    return out
