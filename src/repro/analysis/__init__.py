"""Empirical analysis: complexity fits, stats, tables, invariants, replay."""
