"""Human-readable execution replay.

Turns a traced run into the narrative a distributed-systems person would
sketch on a whiteboard: who woke when, who captured whom, where challenges
were forwarded, and the moment of victory.  Invaluable when a property test
shrinks a counterexample down to six nodes and you need to *see* it.

Usage::

    network = Network(ProtocolA(), topology, trace=True)
    result = network.run()
    print(render_replay(result))

:func:`render_schedule` is the same idea for the verification side: it
narrates a replayed :class:`~repro.verification.replay.ScheduleTrace`
(typically a shrunk fuzzer counterexample) step by step.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.results import ElectionResult

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.verification.replay import ReplayOutcome, ScheduleTrace

#: Events worth narrating, with terse templates.  Anything else (raw
#: send/deliver noise) is summarised per time step instead.
_NARRATED = {
    "wake": "node {node} wakes {detail}",
    "level": "node {node} reaches level {detail}",
    "lattice_level": "node {node} captures its class up to {detail}",
    "captured_by": "node {node} is captured by {detail}",
    "stalled": "node {node} is killed",
    "phase2": "node {node} enters its second phase",
    "first_phase": "node {node} starts asking permission",
    "second_phase": "node {node} got permission {detail}",
    "killed_by_finish": "node {node} woke too late (finish)",
    "conquest": "node {node} starts its conquest {detail}",
    "flood": "node {node} floods its election {detail}",
    "sweep_step": "node {node} completes doubling step {detail}",
    "step": "node {node} completes step {detail}",
    "tree_complete": "node {node} finished the spanning tree {detail}",
    "global_result": "node {node} folded the global result {detail}",
    "leader": "*** node {node} declares itself LEADER ***",
}


def _describe_detail(event) -> str:
    parts = [f"{key}={value}" for key, value in event.detail]
    return f"({', '.join(parts)})" if parts else ""


def render_replay(
    result: ElectionResult, *, include_messages: bool = False
) -> str:
    """Render a traced run as a time-ordered narrative.

    With ``include_messages=True`` every send/deliver is listed too;
    otherwise message traffic is summarised as a per-instant count.
    """
    events = result.trace.events
    if not events:
        return "(no trace recorded — run with trace=True)"
    lines = [
        f"replay of {result.protocol} on N={result.n} "
        f"(leader={result.leader_id}, {result.messages_total} messages)",
    ]
    pending_traffic = 0
    last_time: float | None = None

    def flush_traffic() -> None:
        nonlocal pending_traffic
        if pending_traffic and not include_messages:
            lines.append(f"         ... {pending_traffic} messages in flight")
        pending_traffic = 0

    for event in events:
        if event.time != last_time:
            flush_traffic()
            last_time = event.time
        if event.kind in ("send", "deliver"):
            if include_messages:
                direction = "->" if event.kind == "send" else "<-"
                peer = event.get("to", event.get("sender"))
                lines.append(
                    f"t={event.time:8.2f}  {event.node} {direction} {peer}: "
                    f"{event.get('message')}"
                )
            elif event.kind == "send":
                pending_traffic += 1
            continue
        template = _NARRATED.get(event.kind)
        if template is None:
            continue
        lines.append(
            f"t={event.time:8.2f}  "
            + template.format(node=event.node, detail=_describe_detail(event))
        )
    flush_traffic()
    return "\n".join(lines)


def render_schedule(trace: "ScheduleTrace", outcome: "ReplayOutcome") -> str:
    """Render a replayed schedule trace as a step-by-step narrative.

    ``outcome`` must come from
    :func:`~repro.verification.replay.replay_trace` with
    ``record_log=True`` (otherwise there are no steps to narrate).  The
    verdict line makes the rendering self-contained: a clean run names the
    leader, a violating run names the violated property.
    """
    lines = [
        f"schedule replay of {trace.protocol} on N={trace.n} "
        f"(family={trace.family}, seed={trace.seed}, "
        f"{len(trace.choices)} recorded choices)"
    ]
    lines.extend(outcome.log or ["(no step log — replay with record_log=True)"])
    if outcome.violation_kind is not None:
        lines.append(
            f"verdict: {outcome.violation_kind.upper()} violation — "
            f"{outcome.violation}"
        )
    else:
        lines.append(
            f"verdict: ok (leader={outcome.leader_id}, "
            f"{outcome.messages_sent} messages, {outcome.steps} steps)"
        )
    return "\n".join(lines)
