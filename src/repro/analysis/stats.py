"""Small-sample summary statistics for repeated runs.

Experiments repeat each configuration over several seeds (different hidden
wirings, delay draws and wake subsets); these helpers condense the repeats
into the mean ± spread the tables report.  Pure Python, no dependencies.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass

from repro.core.errors import ConfigurationError


@dataclass(frozen=True, slots=True)
class Summary:
    """Five-number condensation of one measured quantity."""

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float

    def __str__(self) -> str:
        if self.count == 1:
            return f"{self.mean:.1f}"
        return f"{self.mean:.1f}±{self.std:.1f}"


def summarize(samples: Sequence[float]) -> Summary:
    """Mean, sample standard deviation and range of ``samples``."""
    if not samples:
        raise ConfigurationError("cannot summarize zero samples")
    n = len(samples)
    mean = sum(samples) / n
    if n > 1:
        variance = sum((s - mean) ** 2 for s in samples) / (n - 1)
        std = math.sqrt(variance)
    else:
        std = 0.0
    return Summary(n, mean, std, min(samples), max(samples))


def geometric_mean(samples: Sequence[float]) -> float:
    """Geometric mean (the right average for ratios and speed-ups)."""
    if not samples:
        raise ConfigurationError("cannot average zero samples")
    if any(s <= 0 for s in samples):
        raise ConfigurationError("geometric mean needs positive samples")
    return math.exp(sum(math.log(s) for s in samples) / len(samples))
