"""The declarative scenario-spec model behind the matrix engine.

The scenario space — protocol × scenario × N × k × seed — outgrew the
hand-coded E1–E12 sweep functions; this module makes it a first-class,
*validated* artifact.  A :class:`ScenarioSpec` is one row of a spec file
(TOML ``[[spec]]`` tables or CSV rows, mirroring the validation-sweep
layout the repo's exemplars use): every multi-valued field is an **axis**,
and :func:`expand` turns one row into the exact cross-product of its axes
as :class:`MatrixCell` objects — the unit the sweep runner executes.

Three layers of checking, each at the earliest possible moment:

1. **Schema validation at parse time** (:func:`validate_spec`): unknown
   protocol or scenario names, empty or duplicated axis values, and
   nonsensical cross-check settings (``symmetry`` without ``verify_ns``,
   ``fuzz_schedules`` without ``fuzz_ns``) raise
   :class:`~repro.core.errors.ConfigurationError` naming the offending
   row — a typo dies at spec load, not 40 cells into a sweep.

2. **Capability gating at spec load** (also :func:`validate_spec`):
   ``symmetry = "prune"`` is only accepted when the linter-derived
   capability table (:mod:`repro.lint.capabilities`) proves *every*
   protocol on the row equivariant under the relevant relabelling group —
   the same gate ``python -m repro verify --symmetry prune`` applies,
   moved from mid-run to load time.  All fourteen paper protocols compare
   identities, so a curated row asking to prune them is a spec bug.

3. **Structural filtering at expansion** (:func:`expand_specs` with
   ``filter=True``): cells that are *individually* impossible — a
   sense-of-direction protocol under the ``adversarial_ports`` wiring
   adversary, a ``k`` axis applied to a protocol without a ``k``
   parameter, ``k > N-1`` — are dropped with a recorded reason instead of
   erroring, because a row like "every protocol × every scenario" is the
   natural way to write a matrix and the illegal corner is exactly what
   the filter is for.  The runner reports every dropped cell; nothing is
   silently skipped.

Round-trip contract (property-tested): ``parse_toml(specs_to_toml(s)) ==
s`` and ``parse_csv(specs_to_csv(s)) == s`` for any valid spec list, and
``len(expand(spec))`` equals the product of the axis lengths with no
duplicate cells.
"""

from __future__ import annotations

import csv
import hashlib
import inspect
import io
import json
import tomllib
from dataclasses import dataclass, field, fields
from pathlib import Path
from typing import TYPE_CHECKING

from repro.core.errors import ConfigurationError

if TYPE_CHECKING:
    from repro.core.protocol import ElectionProtocol

#: Values ``symmetry`` may take (None = no symmetry pass).
SYMMETRY_MODES = ("census", "prune")

#: CSV column order (one spec per row; list-valued columns are
#: ``|``-joined; empty string = the field's default).
CSV_COLUMNS = (
    "tag", "protocols", "scenarios", "ns", "seeds", "seed_family", "ks",
    "symmetry", "verify_ns", "fuzz_ns", "fuzz_schedules", "fault_budget",
)

_LIST_INT_FIELDS = ("ns", "seeds", "ks", "verify_ns", "fuzz_ns")
_LIST_STR_FIELDS = ("protocols", "scenarios")


@dataclass(frozen=True)
class ScenarioSpec:
    """One declarative row: axes plus per-row cross-check settings.

    ``protocols``/``scenarios``/``ns``/``seeds``/``ks`` are axes (the
    cross-product is the row's cell set; ``ks = ()`` means "one cell per
    combination, protocol-default k").  ``symmetry``/``verify_ns`` direct
    the exhaustive checker at this row's protocols, ``fuzz_ns``/
    ``fuzz_schedules``/``fault_budget`` direct the schedule fuzzer.
    """

    tag: str
    protocols: tuple[str, ...]
    scenarios: tuple[str, ...]
    ns: tuple[int, ...]
    seeds: tuple[int, ...] = (0,)
    #: Named seed family for randomized (``uses_ctx_rng``) protocols.
    #: When set, ``seeds`` are *indices* into the family and each cell
    #: runs with :func:`family_seed`'s derived value — so a curated row
    #: declares its whole seed discipline in two short fields, the
    #: derived seeds are identical across sizes (monotonicity grouping
    #: still works) and re-deriving the family elsewhere (the stat
    #: checker, E13) reproduces the exact same runs.
    seed_family: str | None = None
    ks: tuple[int, ...] = ()
    symmetry: str | None = None
    verify_ns: tuple[int, ...] = ()
    fuzz_ns: tuple[int, ...] = ()
    fuzz_schedules: int = 0
    fault_budget: int = 0


@dataclass(frozen=True)
class MatrixCell:
    """One fully-instantiated run: a point of the expanded cross-product."""

    tag: str
    protocol: str
    scenario: str
    n: int
    seed: int
    k: int | None = None
    #: The spec row's seed family (None on deterministic rows).  When
    #: set, ``seed`` already holds the family-derived value.
    seed_family: str | None = None

    @property
    def cell_id(self) -> str:
        """Stable directory-and-report identifier for this cell."""
        k_part = f"-k{self.k}" if self.k is not None else ""
        return f"{self.protocol}@{self.n}{k_part}-{self.scenario}-s{self.seed}"

    def config(self) -> dict:
        """The JSON-able configuration written to ``config_used.json``."""
        return {
            "tag": self.tag,
            "protocol": self.protocol,
            "scenario": self.scenario,
            "n": self.n,
            "seed": self.seed,
            "seed_family": self.seed_family,
            "k": self.k,
        }


# ---------------------------------------------------------------------------
# expansion
# ---------------------------------------------------------------------------


def family_seed(family: str, index: int) -> int:
    """The run seed of entry ``index`` of a named seed family.

    A 32-bit blake2b digest over the family name and index, so spec rows
    stay short (two fields) while every consumer — the matrix runner,
    the statistical checker, E13 — derives byte-identical run seeds from
    the same ``(family, index)`` coordinates.  Independent of N on
    purpose: the monotonicity check groups cells across sizes by seed.
    """
    payload = b"repro.seed-family.v1|%s|%d" % (family.encode(), index)
    return int.from_bytes(hashlib.blake2b(payload, digest_size=4).digest(), "big")


def expand(spec: ScenarioSpec) -> list[MatrixCell]:
    """The pure cross-product of one row's axes, in deterministic order.

    No validation and no filtering happen here (see the module docstring's
    layer 3): the cell count is exactly ``len(protocols) * len(scenarios)
    * len(ns) * len(seeds) * max(1, len(ks))``.  On a ``seed_family``
    row, the ``seeds`` axis holds family indices and every cell's
    ``seed`` is the :func:`family_seed`-derived value.
    """
    ks: tuple[int | None, ...] = spec.ks if spec.ks else (None,)
    if spec.seed_family is not None:
        seeds = tuple(family_seed(spec.seed_family, s) for s in spec.seeds)
    else:
        seeds = spec.seeds
    return [
        MatrixCell(spec.tag, protocol, scenario, n, seed, k, spec.seed_family)
        for protocol in spec.protocols
        for scenario in spec.scenarios
        for n in spec.ns
        for seed in seeds
        for k in ks
    ]


def protocol_takes_k(name: str) -> bool:
    """Whether the registered protocol's constructor has a ``k`` parameter."""
    from repro.core.protocol import protocol_class

    signature = inspect.signature(protocol_class(name).__init__)
    return "k" in signature.parameters


def build_protocol(cell: MatrixCell) -> ElectionProtocol:
    """Instantiate the cell's protocol (passing ``k`` when the cell has one)."""
    from repro.core.protocol import protocol_class

    cls = protocol_class(cell.protocol)
    if cell.k is not None:
        return cls(k=cell.k)
    return cls()


def cell_rejection(cell: MatrixCell) -> str | None:
    """Why this cell cannot run, or None when it is legal.

    Structural impossibilities only — anything a spec row's cross-product
    can innocently produce.  Genuine configuration *errors* (unknown
    names, bad symmetry requests) are rejected earlier, by
    :func:`validate_spec`.  The quick explicit checks give the common
    corners crisp messages; the final probe — actually building the
    cell's topology and running the protocol's own ``validate`` — makes
    the filter exactly as strict as the kernel (power-of-two sizes,
    k-range constraints, wiring feasibility), so a filtered matrix never
    dies mid-sweep on a structural :class:`ConfigurationError`.
    """
    from repro.core.protocol import protocol_class
    from repro.harness.scenarios import SCENARIOS

    cls = protocol_class(cell.protocol)
    if cell.seed_family is None and _protocol_uses_ctx_rng(cell.protocol):
        return (
            f"randomized protocol {cell.protocol!r} (uses_ctx_rng per the "
            "flow-derived capability table) requires the row to declare a "
            "seed_family: its coin flips are part of the run configuration, "
            "and the family pins which coin universes the matrix samples"
        )
    if cell.scenario == "adversarial_ports":
        if cls.needs_sense_of_direction:
            return "the port adversary only exists on unlabeled networks"
        # The Up/Down wiring needs 2k distinct neighbours (k = ⌈log₂N⌉).
        import math

        k = max(1, math.ceil(math.log2(cell.n)))
        if 2 * k > cell.n - 1:
            return (
                f"N={cell.n} too small for the Up/Down wiring "
                f"(needs 2·⌈log₂N⌉ = {2 * k} ≤ N-1)"
            )
    if cell.k is not None:
        if not protocol_takes_k(cell.protocol):
            return f"protocol {cell.protocol!r} takes no k parameter"
        if cell.k > cell.n - 1:
            return f"k={cell.k} exceeds N-1={cell.n - 1}"
    if cell.scenario not in SCENARIOS:  # pragma: no cover - caught at parse
        return f"unknown scenario {cell.scenario!r}"
    try:
        protocol = build_protocol(cell)
        topology, _ = SCENARIOS[cell.scenario].build(
            cell.n, cell.seed, protocol.needs_sense_of_direction
        )
        protocol.validate(topology)
    except (ConfigurationError, ValueError) as error:
        return str(error)
    return None


def expand_specs(
    specs: list[ScenarioSpec], *, filter: bool = True
) -> tuple[list[MatrixCell], list[tuple[MatrixCell, str]]]:
    """Expand every row; split the cells into (legal, rejected-with-reason).

    ``filter=False`` raises on the first illegal cell instead — the strict
    mode for spec files that are supposed to be exactly runnable.
    """
    legal: list[MatrixCell] = []
    rejected: list[tuple[MatrixCell, str]] = []
    for spec in specs:
        for cell in expand(spec):
            reason = cell_rejection(cell)
            if reason is None:
                legal.append(cell)
            elif filter:
                rejected.append((cell, reason))
            else:
                raise ConfigurationError(
                    f"illegal cell {cell.cell_id} in spec row "
                    f"{spec.tag!r}: {reason}"
                )
    return legal, rejected


# ---------------------------------------------------------------------------
# validation
# ---------------------------------------------------------------------------


def _require(condition: bool, tag: str, message: str) -> None:
    if not condition:
        raise ConfigurationError(f"spec row {tag!r}: {message}")


def validate_spec(spec: ScenarioSpec) -> None:
    """Schema + capability validation for one row (see module docstring)."""
    from repro.core.protocol import registered_protocols
    from repro.harness.scenarios import SCENARIOS

    tag = spec.tag
    _require(bool(tag), tag, "tag must be non-empty")
    registry = registered_protocols()
    for axis in ("protocols", "scenarios", "ns"):
        values = getattr(spec, axis)
        _require(bool(values), tag, f"axis {axis!r} must be non-empty")
    _require(bool(spec.seeds), tag, "axis 'seeds' must be non-empty")
    if spec.seed_family is not None:
        _require(
            bool(spec.seed_family), tag,
            "seed_family must be a non-empty family name",
        )
    for axis in (*_LIST_STR_FIELDS, *_LIST_INT_FIELDS):
        values = getattr(spec, axis)
        _require(
            len(set(values)) == len(values), tag,
            f"axis {axis!r} contains duplicates: {values!r}",
        )
    for name in spec.protocols:
        _require(
            name in registry, tag,
            f"unknown protocol {name!r}; choose from {sorted(registry)}",
        )
    for name in spec.scenarios:
        _require(
            name in SCENARIOS, tag,
            f"unknown scenario {name!r}; choose from {sorted(SCENARIOS)}",
        )
    for n in (*spec.ns, *spec.verify_ns, *spec.fuzz_ns):
        _require(n >= 2, tag, f"network sizes must be >= 2, got {n}")
    for k in spec.ks:
        _require(k >= 1, tag, f"k values must be >= 1, got {k}")
    _require(
        spec.fuzz_schedules >= 0, tag,
        f"fuzz_schedules must be >= 0, got {spec.fuzz_schedules}",
    )
    _require(
        spec.fault_budget >= 0, tag,
        f"fault_budget must be >= 0, got {spec.fault_budget}",
    )
    if spec.symmetry is not None:
        _require(
            spec.symmetry in SYMMETRY_MODES, tag,
            f"symmetry must be one of {SYMMETRY_MODES}, got {spec.symmetry!r}",
        )
        _require(
            bool(spec.verify_ns), tag,
            "symmetry requires verify_ns (it configures the exhaustive pass)",
        )
    if spec.fuzz_schedules:
        _require(
            bool(spec.fuzz_ns), tag,
            "fuzz_schedules requires fuzz_ns (the sizes to fuzz at)",
        )
    else:
        _require(
            not spec.fuzz_ns, tag,
            "fuzz_ns requires fuzz_schedules > 0",
        )
    if spec.symmetry == "prune":
        _ensure_prune_capability(spec)
    _ensure_deterministic_capability(spec)


def _capability_entry(name: str, *, required_key: str) -> dict:
    """One protocol's capability dict, pinned if fresh enough else live."""
    from repro.core.protocol import protocol_class
    from repro.lint.capabilities import capability_for, load_packaged_table

    table = load_packaged_table() or {"protocols": {}}
    entry = table.get("protocols", {}).get(name)
    if entry is None or required_key not in entry:
        entry = capability_for(protocol_class(name)).to_dict()
    return entry


def _protocol_uses_ctx_rng(name: str) -> bool:
    """Whether the capability table marks ``name`` as coin-flipping."""
    return bool(
        _capability_entry(name, required_key="uses_ctx_rng").get(
            "uses_ctx_rng", False
        )
    )


def _ensure_deterministic_capability(spec: ScenarioSpec) -> None:
    """Reject rows naming protocols the flow analysis marks ``uses_rng``.

    Every matrix phase — golden digests, exhaustive exploration, schedule
    fuzzing, trend gating — assumes a protocol's behaviour is a function
    of the seeded schedule alone.  Module-level entropy (``random``,
    ``secrets``, ``uuid``) escapes the seeded RNG and silently breaks
    replay and digest comparison, so such rows are refused at load time
    rather than producing flaky cells.  (v1 capability tables predate the
    field; absent means not-randomized, matching every shipped protocol.)

    ``uses_ctx_rng`` (the seeded per-node streams) is digest-safe, so
    those rows stay — but the lock-step verification world has no run
    seed to derive streams from, so a ctx-rng row may not ask for the
    exhaustive or fuzz passes: probabilistic properties belong to
    ``verify --stat`` (:mod:`repro.verification.stat`).
    """
    for name in spec.protocols:
        entry = _capability_entry(name, required_key="uses_rng")
        if entry.get("uses_rng", False):
            raise ConfigurationError(
                f"spec row {spec.tag!r}: protocol {name!r} uses module-"
                "level entropy (uses_rng per the flow-derived capability "
                "table), which breaks seeded replay and digest "
                "determinism; drop it from the matrix"
            )
        if entry.get("uses_ctx_rng", False) and (
            spec.verify_ns or spec.fuzz_ns
        ):
            raise ConfigurationError(
                f"spec row {spec.tag!r}: protocol {name!r} draws from the "
                "per-node coin stream (uses_ctx_rng); the lock-step "
                "verification world has no run seed, so exhaustive "
                "exploration and schedule fuzzing cannot drive it — drop "
                "verify_ns/fuzz_ns from this row and check it with "
                "`python -m repro verify --stat` instead"
            )


def _ensure_prune_capability(spec: ScenarioSpec) -> None:
    """Reject ``symmetry = "prune"`` rows the capability table disproves.

    This is the load-time mirror of
    :func:`repro.verification.symmetry.ensure_prune_sound`: the verify
    phase explores each protocol on its default topology (labeled when the
    protocol needs or supports sense of direction), so sense protocols
    must be rotation-equivariant and unlabeled ones equivariant under the
    full relabelling group.  Suppressed linter findings count — a
    ``lint-ok`` acknowledges an id-ordering site, it does not remove it.
    """
    from repro.core.protocol import protocol_class
    from repro.lint.capabilities import capability_for, load_packaged_table

    table = load_packaged_table() or {"protocols": {}}
    pinned = table.get("protocols", {})
    for name in spec.protocols:
        cls = protocol_class(name)
        entry = pinned.get(name)
        if entry is None:
            entry = capability_for(cls).to_dict()
        if entry.get("uses_ctx_rng", False):
            raise ConfigurationError(
                f"spec row {spec.tag!r}: symmetry='prune' is not sound for "
                f"randomized protocol {name!r} (uses_ctx_rng): per-node "
                "coin streams are seeded by identity, so relabelling "
                "changes future flips; use `verify --stat` instead"
            )
        key = (
            "rotation_equivariant"
            if cls.needs_sense_of_direction
            else "relabelling_equivariant"
        )
        if not entry.get(key, False):
            raise ConfigurationError(
                f"spec row {spec.tag!r}: symmetry='prune' is not "
                f"outcome-sound for protocol {name!r} "
                f"({entry.get('id_order_sites', '?')} id-ordering site(s), "
                f"{entry.get('port_scan_sites', '?')} port-scan site(s) per "
                "the linter-derived capability table); use 'census' or "
                "drop the protocol from this row"
            )


# ---------------------------------------------------------------------------
# TOML round-trip
# ---------------------------------------------------------------------------


def _spec_to_dict(spec: ScenarioSpec) -> dict:
    """Minimal JSON/TOML-able dict: defaults are omitted."""
    out: dict = {
        "tag": spec.tag,
        "protocols": list(spec.protocols),
        "scenarios": list(spec.scenarios),
        "ns": list(spec.ns),
    }
    if spec.seeds != (0,):
        out["seeds"] = list(spec.seeds)
    if spec.seed_family is not None:
        out["seed_family"] = spec.seed_family
    if spec.ks:
        out["ks"] = list(spec.ks)
    if spec.symmetry is not None:
        out["symmetry"] = spec.symmetry
    if spec.verify_ns:
        out["verify_ns"] = list(spec.verify_ns)
    if spec.fuzz_ns:
        out["fuzz_ns"] = list(spec.fuzz_ns)
    if spec.fuzz_schedules:
        out["fuzz_schedules"] = spec.fuzz_schedules
    if spec.fault_budget:
        out["fault_budget"] = spec.fault_budget
    return out


def _spec_from_dict(raw: dict, *, source: str) -> ScenarioSpec:
    known = {f.name for f in fields(ScenarioSpec)}
    unknown = set(raw) - known
    if unknown:
        raise ConfigurationError(
            f"{source}: unknown spec field(s) {sorted(unknown)}; "
            f"known fields: {sorted(known)}"
        )
    kwargs: dict = dict(raw)
    for name in (*_LIST_STR_FIELDS, *_LIST_INT_FIELDS):
        if name in kwargs:
            value = kwargs[name]
            if not isinstance(value, list):
                raise ConfigurationError(
                    f"{source}: field {name!r} must be a list, got {value!r}"
                )
            kwargs[name] = tuple(value)
    try:
        spec = ScenarioSpec(**kwargs)
    except TypeError as error:
        raise ConfigurationError(f"{source}: {error}") from None
    validate_spec(spec)
    return spec


def specs_to_toml(specs: list[ScenarioSpec]) -> str:
    """Render spec rows as ``[[spec]]`` TOML tables.

    String values are emitted with JSON escaping, which is a subset of
    TOML basic-string escaping, so arbitrary tags survive the round trip.
    """
    blocks = []
    for spec in specs:
        lines = ["[[spec]]"]
        for key, value in _spec_to_dict(spec).items():
            lines.append(f"{key} = {json.dumps(value)}")
        blocks.append("\n".join(lines))
    return "\n\n".join(blocks) + "\n"


def parse_toml(text: str, *, source: str = "<toml>") -> list[ScenarioSpec]:
    """Parse and validate ``[[spec]]`` rows from TOML text."""
    try:
        document = tomllib.loads(text)
    except tomllib.TOMLDecodeError as error:
        raise ConfigurationError(f"{source}: invalid TOML: {error}") from None
    rows = document.get("spec")
    if not isinstance(rows, list) or not rows:
        raise ConfigurationError(
            f"{source}: expected at least one [[spec]] table"
        )
    return [
        _spec_from_dict(row, source=f"{source} [[spec]] #{index + 1}")
        for index, row in enumerate(rows)
    ]


# ---------------------------------------------------------------------------
# CSV round-trip
# ---------------------------------------------------------------------------


def specs_to_csv(specs: list[ScenarioSpec]) -> str:
    """Render spec rows as CSV (one spec per row, ``|``-joined axes)."""
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=CSV_COLUMNS)
    writer.writeheader()
    for spec in specs:
        row = {
            "tag": spec.tag,
            "protocols": "|".join(spec.protocols),
            "scenarios": "|".join(spec.scenarios),
            "ns": "|".join(str(n) for n in spec.ns),
            "seeds": "|".join(str(s) for s in spec.seeds),
            "seed_family": spec.seed_family or "",
            "ks": "|".join(str(k) for k in spec.ks),
            "symmetry": spec.symmetry or "",
            "verify_ns": "|".join(str(n) for n in spec.verify_ns),
            "fuzz_ns": "|".join(str(n) for n in spec.fuzz_ns),
            "fuzz_schedules": spec.fuzz_schedules or "",
            "fault_budget": spec.fault_budget or "",
        }
        writer.writerow(row)
    return buffer.getvalue()


def parse_csv(text: str, *, source: str = "<csv>") -> list[ScenarioSpec]:
    """Parse and validate spec rows from CSV text."""
    reader = csv.DictReader(io.StringIO(text))
    if reader.fieldnames is None:
        raise ConfigurationError(f"{source}: empty CSV")
    unknown = set(reader.fieldnames) - set(CSV_COLUMNS)
    if unknown:
        raise ConfigurationError(
            f"{source}: unknown column(s) {sorted(unknown)}; "
            f"expected a subset of {list(CSV_COLUMNS)}"
        )
    specs = []
    for index, row in enumerate(reader):
        where = f"{source} row #{index + 1}"
        raw: dict = {"tag": row.get("tag") or ""}
        for name in _LIST_STR_FIELDS:
            value = row.get(name) or ""
            if value:
                raw[name] = value.split("|")
        for name in _LIST_INT_FIELDS:
            value = row.get(name) or ""
            if value:
                try:
                    raw[name] = [int(v) for v in value.split("|")]
                except ValueError:
                    raise ConfigurationError(
                        f"{where}: column {name!r} must be |-joined "
                        f"integers, got {value!r}"
                    ) from None
        if row.get("seed_family"):
            raw["seed_family"] = row["seed_family"]
        if row.get("symmetry"):
            raw["symmetry"] = row["symmetry"]
        for name in ("fuzz_schedules", "fault_budget"):
            value = row.get(name) or ""
            if value:
                try:
                    raw[name] = int(value)
                except ValueError:
                    raise ConfigurationError(
                        f"{where}: column {name!r} must be an integer, "
                        f"got {value!r}"
                    ) from None
        specs.append(_spec_from_dict(raw, source=where))
    if not specs:
        raise ConfigurationError(f"{source}: no spec rows")
    return specs


# ---------------------------------------------------------------------------
# file loading and the curated slice
# ---------------------------------------------------------------------------


def load_specs(path: str | Path) -> list[ScenarioSpec]:
    """Load a spec file, dispatching on extension (.toml / .csv)."""
    path = Path(path)
    text = path.read_text()
    if path.suffix.lower() == ".csv":
        return parse_csv(text, source=str(path))
    return parse_toml(text, source=str(path))


def curated_path() -> Path:
    """Location of the packaged curated matrix slice."""
    return Path(__file__).resolve().parent / "curated.toml"


def curated_specs() -> list[ScenarioSpec]:
    """The checked-in curated slice ``python -m repro check --all`` runs."""
    return load_specs(curated_path())


def restrict_for_quick(specs: list[ScenarioSpec]) -> list[ScenarioSpec]:
    """The ``--quick`` slice: cap sizes and schedule counts, keep coverage.

    Election sizes are capped at 32, fuzz at 16 schedules, and exhaustive
    sizes at 4 — every row survives (the protocol × scenario coverage is
    the point), only its extent shrinks.
    """
    trimmed = []
    for spec in specs:
        ns = tuple(n for n in spec.ns if n <= 32) or (min(spec.ns),)
        verify_ns = tuple(n for n in spec.verify_ns if n <= 4)
        fuzz_schedules = min(spec.fuzz_schedules, 16)
        fuzz_ns = spec.fuzz_ns if fuzz_schedules else ()
        trimmed.append(
            ScenarioSpec(
                tag=spec.tag,
                protocols=spec.protocols,
                scenarios=spec.scenarios,
                ns=ns,
                seeds=spec.seeds,
                seed_family=spec.seed_family,
                ks=tuple(k for k in spec.ks if k <= min(ns) - 1),
                symmetry=spec.symmetry if verify_ns else None,
                verify_ns=verify_ns,
                fuzz_ns=fuzz_ns,
                fuzz_schedules=fuzz_schedules,
                fault_budget=spec.fault_budget,
            )
        )
    return trimmed
