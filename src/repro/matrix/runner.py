"""The matrix sweep runner: expanded cells → fork pool → aggregate report.

:func:`run_matrix` takes validated spec rows, expands and filters them
(:mod:`repro.matrix.spec`), executes every legal cell over
:func:`repro.harness.parallel.run_sweep`'s fork pool, and aggregates the
per-cell result fingerprints into a :class:`MatrixReport` carrying:

* every cell's slim, JSON-able result fingerprint (the deterministic
  :class:`~repro.core.results.ElectionResult` fields, fault counters only
  when active — the same convention as the determinism fixtures);
* the cells the capability/structure filter dropped, with reasons;
* cross-cell **checks**: every cell elected and verified, message counts
  non-decreasing in N within each (tag, protocol, scenario, k, seed)
  group (up to a small tolerance band — randomized-port scenarios are not
  exactly monotone run-to-run), and the FT message envelope from E8
  (``messages ≤ C·(N·f + N·log₂N)``, C = 8 on reliable links, 24 under
  the lossy overlay, f = 0 here);
* **baseline deltas** when a previous aggregate report is supplied.

When ``outdir`` is given the runner also writes the Snippet-1 style
layout: ``cells/<cell_id>/config_used.json`` + ``result.json`` per cell
and ``matrix_report.json`` / ``matrix_report.md`` at the top.

The report digest (:meth:`MatrixReport.digest`) hashes the canonical
payload, which contains **no wall-clock times and no worker counts** —
serial and ``REPRO_PARALLEL`` runs of the same specs must produce
byte-identical digests (pinned by ``tests/sim/test_determinism.py``).
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.harness.parallel import run_sweep
from repro.harness.runner import Check
from repro.harness.scenarios import SCENARIOS, run_scenario
from repro.matrix.spec import (
    MatrixCell,
    ScenarioSpec,
    build_protocol,
    expand_specs,
)

#: Messages may dip by this fraction as N grows before the monotonicity
#: check calls it a violation (hidden-wiring scenarios re-randomise the
#: port maps per N, so counts wobble slightly around the trend).
MONOTONICITY_TOLERANCE = 0.05

#: FT envelope constants from E8/E12: messages ≤ C·(N·f + N·log₂N).
FT_ENVELOPE_RELIABLE = 8.0
FT_ENVELOPE_LOSSY = 24.0


def cell_fingerprint(result: Any) -> dict[str, Any]:
    """Slim JSON-able digest of one cell's deterministic result fields."""
    digest: dict[str, Any] = {
        "n": result.n,
        "leader_id": result.leader_id,
        "leader_position": result.leader_position,
        "elected_at": result.elected_at,
        "election_time": result.election_time,
        "messages_total": result.messages_total,
        "bits_total": result.bits_total,
        "messages_by_type": dict(sorted(result.messages_by_type.items())),
        "max_channel_load": result.max_channel_load,
    }
    # Fault/overlay counters join only when active, mirroring the
    # determinism-fixture convention.
    for name in (
        "messages_dropped", "messages_duplicated", "messages_jittered",
        "retransmissions", "duplicates_suppressed", "packets_abandoned",
    ):
        value = getattr(result, name)
        if value:
            digest[name] = value
    return digest


def run_cell(cell: MatrixCell) -> dict[str, Any]:
    """Execute one cell (election + result verification) → fingerprint."""
    result = run_scenario(
        build_protocol(cell), cell.scenario, cell.n, seed=cell.seed
    )
    result.verify()
    return cell_fingerprint(result)


@dataclass(frozen=True)
class CellResult:
    """One executed cell with its result fingerprint."""

    cell: MatrixCell
    fingerprint: dict[str, Any]


@dataclass
class MatrixReport:
    """Aggregate of one matrix sweep."""

    cells: list[CellResult] = field(default_factory=list)
    rejected: list[tuple[MatrixCell, str]] = field(default_factory=list)
    checks: list[Check] = field(default_factory=list)
    baseline_deltas: list[dict[str, Any]] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        """True when every cross-cell check held."""
        return all(check.passed for check in self.checks)

    def check(self, name: str, passed: bool, detail: str = "") -> None:
        """Record one named aggregate-check verdict."""
        self.checks.append(Check(name, bool(passed), detail))

    def payload(self) -> dict[str, Any]:
        """Canonical JSON payload — deterministic across serial/parallel.

        Deliberately excludes anything machine- or schedule-dependent
        (wall times, worker counts); the digest is a hash of exactly this.
        """
        return {
            "cells": {
                f"{r.cell.tag}/{r.cell.cell_id}": r.fingerprint
                for r in self.cells
            },
            "rejected": {
                f"{cell.tag}/{cell.cell_id}": reason
                for cell, reason in self.rejected
            },
            "checks": {
                check.name: {"passed": check.passed, "detail": check.detail}
                for check in self.checks
            },
            "baseline_deltas": self.baseline_deltas,
        }

    def digest(self) -> str:
        """SHA-256 over the canonical payload serialisation."""
        canonical = json.dumps(self.payload(), sort_keys=True).encode()
        return hashlib.sha256(canonical).hexdigest()

    def render(self) -> str:
        """Plain-text summary (written as ``matrix_report.md``)."""
        lines = [
            "# Matrix sweep report",
            "",
            f"- cells run: {len(self.cells)}",
            f"- cells filtered: {len(self.rejected)}",
            f"- digest: `{self.digest()}`",
            "",
        ]
        if self.rejected:
            lines.append("## Filtered cells")
            lines.append("")
            for cell, reason in self.rejected:
                lines.append(f"- `{cell.tag}/{cell.cell_id}`: {reason}")
            lines.append("")
        lines.append("## Checks")
        lines.append("")
        for check in self.checks:
            mark = "PASS" if check.passed else "FAIL"
            suffix = f" — {check.detail}" if check.detail else ""
            lines.append(f"- [{mark}] {check.name}{suffix}")
        lines.append("")
        if self.baseline_deltas:
            lines.append("## Baseline deltas")
            lines.append("")
            for delta in self.baseline_deltas:
                lines.append(
                    f"- `{delta['cell']}` {delta['metric']}: "
                    f"{delta['baseline']} → {delta['current']} "
                    f"({delta['delta_pct']:+.1f}%)"
                )
            lines.append("")
        return "\n".join(lines)

    def raise_if_failed(self) -> None:
        """Assert every aggregate check passed; raise with details if not."""
        failed = [c for c in self.checks if not c.passed]
        if failed:
            details = "; ".join(f"{c.name} ({c.detail})" for c in failed)
            raise AssertionError(f"matrix sweep: failed checks: {details}")


def _check_all_elected(report: MatrixReport) -> None:
    leaderless = [
        f"{r.cell.tag}/{r.cell.cell_id}"
        for r in report.cells
        if r.fingerprint["leader_id"] is None
    ]
    report.check(
        "every cell elected a unique verified leader",
        not leaderless,
        f"{len(report.cells)} cells"
        + (f"; leaderless: {leaderless}" if leaderless else ""),
    )


def _check_monotonicity(report: MatrixReport) -> None:
    """Messages non-decreasing in N within each fixed-everything-else group.

    Seed-family (randomized) cells are exempt: their message count is a
    random variable re-drawn at every size — the same family seed flips
    different coins at N=16 and N=32, so pointwise monotonicity is not a
    property the protocol promises.  Their growth envelope is checked
    statistically instead (``verify --stat`` message bounds, E13 slopes).
    """
    groups: dict[tuple, list[tuple[int, int]]] = {}
    for r in report.cells:
        if r.cell.seed_family is not None:
            continue
        key = (r.cell.tag, r.cell.protocol, r.cell.scenario, r.cell.k,
               r.cell.seed)
        groups.setdefault(key, []).append(
            (r.cell.n, r.fingerprint["messages_total"])
        )
    violations = []
    checked = 0
    for key, points in groups.items():
        points.sort()
        if len(points) < 2:
            continue
        checked += 1
        for (n_lo, m_lo), (n_hi, m_hi) in zip(points, points[1:]):
            if m_hi < m_lo * (1 - MONOTONICITY_TOLERANCE):
                tag, protocol, scenario, k, seed = key
                violations.append(
                    f"{tag}/{protocol}-{scenario}: "
                    f"N={n_lo}→{n_hi} messages {m_lo}→{m_hi}"
                )
    report.check(
        "messages non-decreasing in N (5% band)",
        not violations,
        f"{checked} group(s) with an N axis"
        + (f"; violations: {violations}" if violations else ""),
    )


def _check_ft_envelope(report: MatrixReport) -> None:
    """E8's envelope for every FT cell: messages ≤ C·N·log₂N (f = 0)."""
    worst = 0.0
    cells = 0
    violations = []
    for r in report.cells:
        if r.cell.protocol != "FT":
            continue
        cells += 1
        limit = (
            FT_ENVELOPE_LOSSY
            if SCENARIOS[r.cell.scenario].reliable
            else FT_ENVELOPE_RELIABLE
        )
        ratio = r.fingerprint["messages_total"] / (
            r.cell.n * math.log2(r.cell.n)
        )
        worst = max(worst, ratio)
        if ratio > limit:
            violations.append(
                f"{r.cell.tag}/{r.cell.cell_id}: "
                f"constant {ratio:.2f} > {limit}"
            )
    if not cells:
        return
    report.check(
        "FT message envelope: messages ≤ C·N·log₂N (C=8, 24 under loss)",
        not violations,
        f"{cells} FT cell(s), worst constant {worst:.2f}"
        + (f"; violations: {violations}" if violations else ""),
    )


def _baseline_deltas(
    report: MatrixReport, baseline: dict[str, Any]
) -> None:
    """Per-cell metric deltas against a previous report's payload."""
    previous = baseline.get("cells", {})
    current = {
        f"{r.cell.tag}/{r.cell.cell_id}": r.fingerprint for r in report.cells
    }
    for cell_key in sorted(set(previous) & set(current)):
        for metric in ("messages_total", "bits_total", "election_time"):
            old = previous[cell_key].get(metric)
            new = current[cell_key].get(metric)
            if old in (None, 0) or new is None or old == new:
                continue
            report.baseline_deltas.append(
                {
                    "cell": cell_key,
                    "metric": metric,
                    "baseline": old,
                    "current": new,
                    "delta_pct": 100.0 * (new - old) / old,
                }
            )


def _write_layout(report: MatrixReport, outdir: Path) -> None:
    """The per-cell output layout plus the aggregate report files."""
    cells_dir = outdir / "cells"
    for r in report.cells:
        cell_dir = cells_dir / r.cell.tag / r.cell.cell_id
        cell_dir.mkdir(parents=True, exist_ok=True)
        (cell_dir / "config_used.json").write_text(
            json.dumps(r.cell.config(), indent=1, sort_keys=True) + "\n"
        )
        (cell_dir / "result.json").write_text(
            json.dumps(r.fingerprint, indent=1, sort_keys=True) + "\n"
        )
    outdir.mkdir(parents=True, exist_ok=True)
    (outdir / "matrix_report.json").write_text(
        json.dumps(report.payload(), indent=1, sort_keys=True) + "\n"
    )
    (outdir / "matrix_report.md").write_text(report.render())


def run_matrix(
    specs: list[ScenarioSpec],
    *,
    outdir: str | Path | None = None,
    parallel: bool | None = None,
    processes: int | None = None,
    baseline: dict[str, Any] | None = None,
) -> MatrixReport:
    """Expand, filter, execute, and aggregate the given spec rows."""
    cells, rejected = expand_specs(specs, filter=True)
    fingerprints = run_sweep(
        [lambda cell=cell: run_cell(cell) for cell in cells],
        parallel=parallel,
        processes=processes,
    )
    report = MatrixReport(
        cells=[
            CellResult(cell, fingerprint)
            for cell, fingerprint in zip(cells, fingerprints)
        ],
        rejected=rejected,
    )
    _check_all_elected(report)
    _check_monotonicity(report)
    _check_ft_envelope(report)
    if baseline is not None:
        _baseline_deltas(report, baseline)
    if outdir is not None:
        _write_layout(report, Path(outdir))
    return report
