"""Declarative scenario-matrix engine.

The scenario space (protocol × scenario × N × k × seed) as a first-class
artifact: spec rows (:mod:`repro.matrix.spec`) expand into cells, the
runner (:mod:`repro.matrix.runner`) sweeps them over the fork pool into
an aggregate report, ``check --all`` (:mod:`repro.matrix.check`) cross-
products the curated slice against the exhaustive checker, the schedule
fuzzer, and the reliable-delivery contract, and the trend comparator
(:mod:`repro.matrix.trends`) gates CI on committed BENCH snapshots.

See ``docs/matrix.md`` for the spec schema and usage.
"""

from repro.matrix.check import CheckReport, check_all
from repro.matrix.runner import MatrixReport, run_matrix
from repro.matrix.spec import (
    MatrixCell,
    ScenarioSpec,
    curated_specs,
    expand,
    expand_specs,
    load_specs,
    parse_csv,
    parse_toml,
    specs_to_csv,
    specs_to_toml,
    validate_spec,
)
from repro.matrix.trends import TrendReport, compare_files, compare_payloads

__all__ = [
    "CheckReport",
    "MatrixCell",
    "MatrixReport",
    "ScenarioSpec",
    "TrendReport",
    "check_all",
    "compare_files",
    "compare_payloads",
    "curated_specs",
    "expand",
    "expand_specs",
    "load_specs",
    "parse_csv",
    "parse_toml",
    "run_matrix",
    "specs_to_csv",
    "specs_to_toml",
    "validate_spec",
]
