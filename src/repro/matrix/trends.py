"""Tolerance-banded BENCH trend comparison — the CI regression gate.

The repo commits measured benchmark snapshots (``BENCH_kernel.json``,
``BENCH_verify.json``, ``BENCH_faults.json``, ``BENCH_random.json``)
alongside the code that produced them.  This module compares a *current* set of those files
against a *baseline* set (in CI: the merge-base versions extracted with
``git show``) and fails when a tracked metric regressed beyond a
tolerance band.  Comparing committed snapshots — numbers measured on the
contributor's machine in both revisions — is deliberately immune to CI
runner speed; the gate catches "this PR made the committed benchmark
worse", not "the CI machine is slow today".

What counts as a regression:

* **higher-is-better** metrics (throughputs — any key ending in
  ``_per_sec`` — probabilistic guarantees ending in ``success_rate``,
  and the named speedup/reduction ratios) dropping more than
  ``tolerance`` (default 30%) below baseline;
* **lower-is-better** metrics (keys containing ``overhead``, and the
  fitted growth exponents ending in ``_exponent`` — a randomized
  protocol drifting toward linear message growth is a regression)
  rising more than ``tolerance`` above baseline;
* any boolean under a ``checks`` mapping flipping true → false (no band
  — a claim that stopped holding is a regression at any magnitude);
* a tracked metric or workload present in the baseline but **missing**
  from the current file (deleting the evidence is not a fix).

Raw counts (events, states, messages) and wall seconds are *not* gated:
they legitimately move when workloads change; the normalised throughputs
and ratios are the regression signal.  ``peak_rss_mb`` *is* gated
(lower-is-better) but with a doubled band: memory high-water marks are
process-wide and wobble with allocator behaviour, so only a clear bloat
trips the gate.

CLI (``python -m repro trends``)::

    python -m repro trends --baseline ci_baseline/ --current .
    python -m repro trends --baseline old/BENCH_kernel.json \
                           --current BENCH_kernel.json --tolerance 0.2

Exit status 1 when any regression is found, 0 otherwise.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any

#: Relative band within which a tracked metric may move without failing.
DEFAULT_TOLERANCE = 0.30

#: The BENCH files the gate tracks by default.
BENCH_FILES = (
    "BENCH_kernel.json",
    "BENCH_verify.json",
    "BENCH_faults.json",
    "BENCH_random.json",
)

#: Named ratio metrics that are higher-is-better (beyond the ``_per_sec``
#: suffix rule).  ``sharded_speedup_vs_serial`` is the sharded kernel's
#: aggregate-capacity ratio (see docs/performance.md — "Sharded
#: execution"); new sharded workloads on the *current* side never fire the
#: missing-metric check because :func:`_walk` iterates baseline keys only.
_HIGHER_BETTER_NAMES = frozenset(
    {
        "speedup_vs_seed",
        "wall_speedup_vs_pr1",
        "store_reduction_vs_pr1",
        "sharded_speedup_vs_serial",
        "vector_speedup_vs_interp",
        "vector_speedup_vs_record",
    }
)

#: Named lower-is-better metrics (beyond the ``overhead`` substring rule).
_LOWER_BETTER_NAMES = frozenset({"peak_rss_mb"})

#: Per-metric widening of the tolerance band.  ``peak_rss_mb`` is a
#: process-wide high-water mark (allocator- and import-order-sensitive),
#: so it gets twice the normal room before tripping the gate.
_TOLERANCE_SCALE = {"peak_rss_mb": 2.0}


def metric_direction(key: str) -> str | None:
    """'up' (higher better), 'down' (lower better), or None (untracked)."""
    if (
        key.endswith("_per_sec")
        or key.endswith("success_rate")
        or key in _HIGHER_BETTER_NAMES
    ):
        return "up"
    if (
        "overhead" in key
        or key.endswith("_exponent")
        or key in _LOWER_BETTER_NAMES
    ):
        return "down"
    return None


@dataclass(frozen=True)
class TrendFinding:
    """One metric's comparison verdict."""

    file: str
    path: str  # dotted location within the file, e.g. "C@2048.events_per_sec"
    baseline: Any
    current: Any
    regression: bool
    detail: str


@dataclass
class TrendReport:
    """Every finding of one baseline/current comparison."""

    findings: list[TrendFinding]

    @property
    def regressions(self) -> list[TrendFinding]:
        return [f for f in self.findings if f.regression]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def render(self) -> str:
        """Plain-text comparison summary (one line per finding)."""
        lines = []
        for finding in self.findings:
            mark = "FAIL" if finding.regression else "ok"
            lines.append(
                f"[{mark}] {finding.file}:{finding.path} "
                f"{finding.baseline} -> {finding.current} ({finding.detail})"
            )
        verdict = (
            "no regressions"
            if self.ok
            else f"{len(self.regressions)} regression(s)"
        )
        lines.append(
            f"{len(self.findings)} tracked metric(s) compared: {verdict}"
        )
        return "\n".join(lines)


def _compare_value(
    file: str,
    path: str,
    direction: str,
    baseline: float,
    current: float | None,
    tolerance: float,
    findings: list[TrendFinding],
) -> None:
    if current is None:
        findings.append(
            TrendFinding(
                file, path, baseline, None, True,
                "tracked metric missing from current file",
            )
        )
        return
    if baseline == 0:
        findings.append(
            TrendFinding(file, path, baseline, current, False,
                         "zero baseline, skipped")
        )
        return
    change = (current - baseline) / abs(baseline)
    if direction == "up":
        regressed = change < -tolerance
        detail = f"{change * 100:+.1f}% (band -{tolerance * 100:.0f}%)"
    else:
        regressed = change > tolerance
        detail = f"{change * 100:+.1f}% (band +{tolerance * 100:.0f}%)"
    findings.append(
        TrendFinding(file, path, baseline, current, regressed, detail)
    )


def _walk(
    file: str,
    path: str,
    baseline: Any,
    current: Any,
    tolerance: float,
    findings: list[TrendFinding],
    *,
    in_checks: bool = False,
) -> None:
    """Recursively compare baseline against current, tracking metrics."""
    if isinstance(baseline, dict):
        for key, base_value in sorted(baseline.items()):
            child_path = f"{path}.{key}" if path else key
            cur_value = (
                current.get(key) if isinstance(current, dict) else None
            )
            if isinstance(base_value, dict):
                if cur_value is None and _tracks_anything(base_value, key):
                    findings.append(
                        TrendFinding(
                            file, child_path, "<present>", None, True,
                            "tracked workload missing from current file",
                        )
                    )
                    continue
                _walk(
                    file, child_path, base_value, cur_value, tolerance,
                    findings, in_checks=in_checks or key == "checks",
                )
            elif isinstance(base_value, bool):
                if in_checks or path.endswith("checks") or key == "checks":
                    still_true = bool(cur_value) if base_value else True
                    findings.append(
                        TrendFinding(
                            file, child_path, base_value, cur_value,
                            base_value and not still_true,
                            "claim check must not flip true -> false",
                        )
                    )
            elif isinstance(base_value, (int, float)):
                direction = metric_direction(key)
                if direction is None:
                    continue
                cur_number = (
                    cur_value
                    if isinstance(cur_value, (int, float))
                    and not isinstance(cur_value, bool)
                    else None
                )
                _compare_value(
                    file, child_path, direction, base_value, cur_number,
                    tolerance * _TOLERANCE_SCALE.get(key, 1.0), findings,
                )


def _tracks_anything(tree: dict, key: str) -> bool:
    """Whether a baseline subtree contains any tracked metric or check."""
    if key == "checks":
        return True
    for child_key, value in tree.items():
        if isinstance(value, dict):
            if _tracks_anything(value, child_key):
                return True
        elif isinstance(value, bool):
            if child_key == "checks":
                return True
        elif isinstance(value, (int, float)):
            if metric_direction(child_key) is not None:
                return True
    return False


def compare_payloads(
    baseline: dict[str, Any],
    current: dict[str, Any],
    *,
    file: str = "<bench>",
    tolerance: float = DEFAULT_TOLERANCE,
) -> TrendReport:
    """Compare two already-parsed BENCH payloads."""
    findings: list[TrendFinding] = []
    _walk(file, "", baseline, current, tolerance, findings)
    return TrendReport(findings)


def compare_files(
    baseline: str | Path,
    current: str | Path,
    *,
    tolerance: float = DEFAULT_TOLERANCE,
) -> TrendReport:
    """Compare BENCH files or directories containing them.

    Directory mode compares every :data:`BENCH_FILES` entry present in
    the baseline directory; a file that exists in the baseline but not on
    the current side is itself a regression.
    """
    baseline = Path(baseline)
    current = Path(current)
    findings: list[TrendFinding] = []
    if baseline.is_dir():
        for name in BENCH_FILES:
            base_file = baseline / name
            if not base_file.exists():
                continue
            cur_file = current / name
            if not cur_file.exists():
                findings.append(
                    TrendFinding(
                        name, "", "<present>", None, True,
                        "BENCH file missing from current tree",
                    )
                )
                continue
            report = compare_files(base_file, cur_file, tolerance=tolerance)
            findings.extend(report.findings)
        return TrendReport(findings)
    base_payload = json.loads(baseline.read_text())
    cur_payload = json.loads(current.read_text())
    return compare_payloads(
        base_payload, cur_payload, file=baseline.name, tolerance=tolerance
    )


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit status."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro trends",
        description="Compare committed BENCH snapshots against a baseline.",
    )
    parser.add_argument(
        "--baseline", required=True,
        help="baseline BENCH file, or a directory of BENCH files",
    )
    parser.add_argument(
        "--current", required=True,
        help="current BENCH file, or the repo root",
    )
    parser.add_argument(
        "--tolerance", type=float, default=DEFAULT_TOLERANCE,
        help=f"relative band (default {DEFAULT_TOLERANCE})",
    )
    args = parser.parse_args(argv)
    report = compare_files(
        args.baseline, args.current, tolerance=args.tolerance
    )
    print(report.render())
    return 0 if report.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
