"""``python -m repro check --all``: the one-command full cross-check.

Runs the curated matrix slice (:func:`repro.matrix.spec.curated_specs`)
through seven phases and folds every verdict into a single
:class:`CheckReport`:

1. **Matrix sweep** — every legal (protocol × scenario × N × k × seed)
   cell elects a verified leader; monotonicity and FT-envelope checks
   (:mod:`repro.matrix.runner`).
2. **Exhaustive verification** — for every spec row carrying
   ``verify_ns``, the explicit-state checker
   (:func:`repro.verification.explore.explore_protocol`) covers *every*
   interleaving at those sizes, with the row's ``symmetry`` mode.
   Exploration runs with ``workers=1`` inside the phase's own sweep
   tasks: the outer fork pool provides the parallelism, and the report
   then contains no worker-count dependence — a requirement of the
   digest-determinism contract below.
3. **Schedule fuzzing** — rows carrying ``fuzz_ns`` drive the seeded
   adversarial scheduler (:func:`repro.verification.fuzz.fuzz_protocol`),
   including the fault families when the row sets a ``fault_budget``.
4. **Reliable-delivery contract** — every registered protocol elects a
   verified leader at N=16 behind the retransmission overlay under the
   ``lossy`` scenario (10% drop, 5% duplication, jitter), with no port
   abandoned: the PR 5 overlay masks the faults completely.
5. **Sharded-kernel digest contract** — a fixed set of small cells
   (benign and lossy) runs on both the serial kernel and the sharded
   kernel (:mod:`repro.sim.shard`) at two shard counts and on both
   delivery engines (``interp`` and the default ``vector``), and every
   deterministic result field must agree exactly.  This is the
   sharded/serial equivalence promise of docs/performance.md, enforced
   on every ``check --all``.
6. **Flow-conformance probe** — every registered protocol runs one
   instrumented benign election
   (:func:`repro.lint.flow.conformance.probe_protocol_class`) and the
   measured per-activation fan-out must not exceed the static bound the
   flow analyzer derived (``python -m repro analyze``).  A violation
   means the analyzer's capability table (``capabilities.json`` v2) is
   describing a protocol the code does not implement.
7. **Statistical gate** — the randomized family
   (:mod:`repro.protocols.random`) gets the Monte-Carlo pass
   (:func:`repro.verification.stat.verify_stat`): seeded trials folded
   into exact Clopper–Pearson lower confidence bounds on election
   safety and the w.h.p. message bound.  Full mode samples
   :data:`STAT_TRIALS` trials per protocol at N=:data:`STAT_N` against
   the 0.99/0.99 confidence/target pair; ``--quick`` trims to
   :data:`STAT_TRIALS_QUICK` trials at N=:data:`STAT_N_QUICK` with the
   target lowered to what that trial count can certify
   (:data:`STAT_TARGET_QUICK`) — same machinery, smaller extent,
   exactly like the other quick restrictions.

Digest determinism: :meth:`CheckReport.digest` hashes a canonical payload
with **no wall-clock times and no worker counts**, and every phase fans
out through :func:`repro.harness.parallel.run_sweep` (results in task
order).  A serial run and a ``REPRO_PARALLEL`` run of the same specs
therefore produce byte-identical digests — asserted by
``tests/matrix/test_check_all.py`` and the determinism suite.

``--quick`` (:func:`repro.matrix.spec.restrict_for_quick`) trims sizes
and schedule counts but keeps every row, so coverage of the protocol ×
scenario space is identical — only its extent shrinks.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.harness.parallel import run_sweep
from repro.harness.runner import Check
from repro.harness.scenarios import run_scenario
from repro.matrix.runner import MatrixReport, run_matrix
from repro.matrix.spec import (
    ScenarioSpec,
    curated_specs,
    restrict_for_quick,
)

#: The reliable-delivery contract phase: every protocol, this size, the
#: lossy scenario (drop 10%, duplicate 5%, jitter) behind the overlay.
CONTRACT_N = 16
CONTRACT_SCENARIO = "lossy"

#: Phase-7 statistical gate.  Full mode certifies the acceptance pair
#: (LCB >= 0.99 at 0.99 confidence; needs zero failures in >= 459
#: trials).  Quick mode keeps the machinery but trims the extent — 120
#: trials can certify at most an 0.9624 LCB, so the quick target is the
#: round number just below it.
STAT_N = 64
STAT_TRIALS = 600
STAT_N_QUICK = 16
STAT_TRIALS_QUICK = 120
STAT_TARGET_QUICK = 0.95
STAT_CONFIDENCE = 0.99
STAT_TARGET = 0.99


@dataclass
class CheckReport:
    """Aggregate verdict of one ``check --all`` campaign."""

    matrix: MatrixReport
    verify: dict[str, dict[str, Any]] = field(default_factory=dict)
    fuzz: dict[str, dict[str, Any]] = field(default_factory=dict)
    contract: dict[str, dict[str, Any]] = field(default_factory=dict)
    shard: dict[str, dict[str, Any]] = field(default_factory=dict)
    conformance: dict[str, dict[str, Any]] = field(default_factory=dict)
    stat: dict[str, dict[str, Any]] = field(default_factory=dict)
    checks: list[Check] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return self.matrix.passed and all(c.passed for c in self.checks)

    def check(self, name: str, passed: bool, detail: str = "") -> None:
        """Record one named cross-check verdict."""
        self.checks.append(Check(name, bool(passed), detail))

    def payload(self) -> dict[str, Any]:
        """Canonical JSON payload (no wall times, no worker counts)."""
        return {
            "matrix": self.matrix.payload(),
            "verify": self.verify,
            "fuzz": self.fuzz,
            "contract": self.contract,
            "shard": self.shard,
            "conformance": self.conformance,
            "stat": self.stat,
            "checks": {
                check.name: {"passed": check.passed, "detail": check.detail}
                for check in self.checks
            },
        }

    def digest(self) -> str:
        """SHA-256 over the canonical payload serialisation."""
        import hashlib

        canonical = json.dumps(self.payload(), sort_keys=True).encode()
        return hashlib.sha256(canonical).hexdigest()

    def render(self) -> str:
        """Plain-text summary (written as ``check_report.md``)."""
        lines = [
            "# check --all report",
            "",
            f"- matrix cells: {len(self.matrix.cells)} run, "
            f"{len(self.matrix.rejected)} filtered",
            f"- exhaustive instances: {len(self.verify)}",
            f"- fuzz campaigns: {len(self.fuzz)}",
            f"- overlay contract runs: {len(self.contract)}",
            f"- sharded digest cells: {len(self.shard)}",
            f"- flow-conformance probes: {len(self.conformance)}",
            f"- statistical strata: {len(self.stat)}",
            f"- digest: `{self.digest()}`",
            "",
            "## Matrix checks",
            "",
        ]
        for check in self.matrix.checks:
            mark = "PASS" if check.passed else "FAIL"
            suffix = f" — {check.detail}" if check.detail else ""
            lines.append(f"- [{mark}] {check.name}{suffix}")
        lines.append("")
        lines.append("## Cross-check verdicts")
        lines.append("")
        for check in self.checks:
            mark = "PASS" if check.passed else "FAIL"
            suffix = f" — {check.detail}" if check.detail else ""
            lines.append(f"- [{mark}] {check.name}{suffix}")
        lines.append("")
        return "\n".join(lines)

    def raise_if_failed(self) -> None:
        """Assert the whole campaign passed; raise with details if not."""
        self.matrix.raise_if_failed()
        failed = [c for c in self.checks if not c.passed]
        if failed:
            details = "; ".join(f"{c.name} ({c.detail})" for c in failed)
            raise AssertionError(f"check --all: failed checks: {details}")


def _verify_task(
    protocol_name: str, n: int, symmetry: str | None
) -> dict[str, Any]:
    """One exhaustive-exploration task (runs inside the fork pool)."""
    from repro.core.protocol import protocol_class
    from repro.topology.complete import (
        complete_with_sense_of_direction,
        complete_without_sense,
    )
    from repro.verification.explore import explore_protocol

    protocol = protocol_class(protocol_name)()
    topology = (
        complete_with_sense_of_direction(n)
        if protocol.needs_sense_of_direction
        else complete_without_sense(n, seed=0)
    )
    report = explore_protocol(
        protocol, topology, symmetry=symmetry, workers=1
    )
    return {
        "states_explored": report.states_explored,
        "terminal_states": report.terminal_states,
        "transitions": report.transitions,
        "leaders_seen": sorted(report.leaders_seen),
        "complete": report.complete,
        "canonical_states": report.canonical_states,
        # Lists, not tuples: the payload must survive a JSON round-trip
        # unchanged so on-disk reports compare equal to in-memory ones.
        "quiescent_outcomes": [
            list(outcome) for outcome in sorted(report.quiescent_outcomes)
        ],
    }


def _fuzz_task(
    protocol_name: str, n: int, schedules: int, budget: int
) -> dict[str, Any]:
    """One fuzz-campaign task (runs inside the fork pool)."""
    from repro.core.protocol import protocol_class
    from repro.topology.complete import (
        complete_with_sense_of_direction,
        complete_without_sense,
    )
    from repro.verification.fuzz import fuzz_protocol

    protocol = protocol_class(protocol_name)()
    topology = (
        complete_with_sense_of_direction(n)
        if protocol.needs_sense_of_direction
        else complete_without_sense(n, seed=0)
    )
    report = fuzz_protocol(
        protocol,
        topology,
        schedules=schedules,
        seed=0,
        fault_budget=budget,
    )
    return {
        "runs": report.runs,
        "steps_total": report.steps_total,
        "truncated_runs": report.truncated_runs,
        "leaders_seen": sorted(report.leaders_seen),
        "runs_per_family": dict(sorted(report.runs_per_family.items())),
        "ok": report.ok,
        "violations": [
            {"kind": v.kind, "message": v.message} for v in report.violations
        ],
    }


def _contract_task(protocol_name: str) -> dict[str, Any]:
    """One overlay-contract run (runs inside the fork pool)."""
    from repro.core.protocol import protocol_class

    result = run_scenario(
        protocol_class(protocol_name)(), CONTRACT_SCENARIO, CONTRACT_N, seed=0
    )
    result.verify()
    return {
        "leader_id": result.leader_id,
        "messages_total": result.messages_total,
        "messages_dropped": result.messages_dropped,
        "retransmissions": result.retransmissions,
        "duplicates_suppressed": result.duplicates_suppressed,
        "packets_abandoned": result.packets_abandoned,
    }


#: Phase-5 cells: (protocol, n, shard count, lossy?, engine).  Small on
#: purpose — the exhaustive digest matrix lives in tests/sim/test_shard.py;
#: this is the always-on cross-runtime smoke.  The vector engine carries
#: most cells (it is the default); one interp cell stays to pin the
#: engines against each other through the serial digest.
SHARD_CELLS: tuple[tuple[str, int, int, bool, str], ...] = (
    ("C", 64, 2, False, "interp"),
    ("C", 64, 2, False, "vector"),
    ("C", 64, 3, False, "vector"),
    ("B", 32, 2, False, "vector"),
    ("G", 32, 4, False, "vector"),
    ("E", 32, 2, True, "vector"),
)


def _result_fields(result: Any) -> tuple:
    """Every deterministic ElectionResult field, in a comparable shape.

    The same field set as ``tests/sim/determinism_cases.fingerprint``
    (kept in sync by tests/sim/test_shard.py); the sharded kernel owes
    exact equality on all of them.
    """
    return (
        result.n,
        result.leader_id,
        result.leader_position,
        result.elected_at,
        result.election_time,
        result.election_depth,
        result.messages_total,
        result.bits_total,
        tuple(sorted(result.messages_by_type.items())),
        result.max_depth,
        result.quiescent_at,
        result.first_wake_time,
        result.last_wake_time,
        result.base_positions,
        result.max_channel_load,
        result.messages_dropped,
        result.messages_duplicated,
        result.messages_jittered,
        result.retransmissions,
        result.duplicates_suppressed,
        result.packets_abandoned,
        result.crashed_positions,
    )


def _shard_task(
    protocol_name: str, n: int, shards: int, lossy: bool, engine: str
) -> dict[str, Any]:
    """One serial-vs-sharded digest comparison (runs inside the fork pool)."""
    from repro.core.protocol import protocol_class
    from repro.core.reliable import ReliableDelivery
    from repro.sim.faults import FaultPlan
    from repro.sim.network import run_election
    from repro.sim.shard import run_sharded_election
    from repro.topology.complete import (
        complete_with_sense_of_direction,
        complete_without_sense,
    )

    cls = protocol_class(protocol_name)

    def config() -> tuple[Any, Any, dict[str, Any]]:
        protocol = ReliableDelivery(cls()) if lossy else cls()
        topology = (
            complete_with_sense_of_direction(n)
            if protocol.needs_sense_of_direction
            else complete_without_sense(n, seed=0)
        )
        kwargs: dict[str, Any] = {"seed": 0}
        if lossy:
            kwargs["faults"] = FaultPlan(
                seed=0, drop=0.10, duplicate=0.05, jitter=0.25
            )
        return protocol, topology, kwargs

    protocol, topology, kwargs = config()
    serial = run_election(protocol, topology, **kwargs)
    protocol, topology, kwargs = config()
    sharded = run_sharded_election(
        protocol, topology, shards=shards, workers=0, engine=engine, **kwargs
    )
    return {
        "equal": _result_fields(serial) == _result_fields(sharded),
        "leader_id": serial.leader_id,
        "messages_total": serial.messages_total,
    }


def _conformance_task(protocol_name: str) -> dict[str, Any]:
    """One flow-conformance probe (runs inside the fork pool)."""
    from repro.core.protocol import protocol_class
    from repro.lint.flow.conformance import probe_protocol_class

    return probe_protocol_class(protocol_class(protocol_name))


def check_all(
    specs: list[ScenarioSpec] | None = None,
    *,
    quick: bool = False,
    outdir: str | Path | None = None,
    parallel: bool | None = None,
    baseline: dict[str, Any] | None = None,
) -> CheckReport:
    """Run every phase over the given (default: curated) spec rows."""
    if specs is None:
        specs = curated_specs()
    if quick:
        specs = restrict_for_quick(specs)

    matrix_outdir = Path(outdir) / "matrix" if outdir is not None else None
    matrix = run_matrix(
        specs, outdir=matrix_outdir, parallel=parallel, baseline=baseline
    )
    report = CheckReport(matrix=matrix)

    # -- phase 2: exhaustive verification ---------------------------------
    verify_jobs: list[tuple[str, int, str | None]] = []
    seen = set()
    for spec in specs:
        for protocol in spec.protocols:
            for n in spec.verify_ns:
                key = (protocol, n, spec.symmetry)
                if key not in seen:
                    seen.add(key)
                    verify_jobs.append(key)
    verify_results = run_sweep(
        [
            lambda p=p, n=n, s=s: _verify_task(p, n, s)
            for p, n, s in verify_jobs
        ],
        parallel=parallel,
    )
    for (protocol, n, symmetry), outcome in zip(verify_jobs, verify_results):
        label = f"{protocol}@{n}" + (f"+{symmetry}" if symmetry else "")
        report.verify[label] = outcome
    incomplete = [
        label for label, r in report.verify.items() if not r["complete"]
    ]
    if verify_jobs:
        report.check(
            "exhaustive exploration covered every interleaving",
            not incomplete,
            f"{len(verify_jobs)} instance(s), "
            f"{sum(r['states_explored'] for r in report.verify.values())} "
            "states"
            + (f"; truncated: {incomplete}" if incomplete else ""),
        )

    # -- phase 3: schedule fuzzing ----------------------------------------
    fuzz_jobs: list[tuple[str, int, int, int]] = []
    seen = set()
    for spec in specs:
        if not spec.fuzz_schedules:
            continue
        for protocol in spec.protocols:
            for n in spec.fuzz_ns:
                key = (protocol, n, spec.fuzz_schedules, spec.fault_budget)
                if key not in seen:
                    seen.add(key)
                    fuzz_jobs.append(key)
    fuzz_results = run_sweep(
        [
            lambda p=p, n=n, c=c, b=b: _fuzz_task(p, n, c, b)
            for p, n, c, b in fuzz_jobs
        ],
        parallel=parallel,
    )
    for (protocol, n, schedules, budget), outcome in zip(
        fuzz_jobs, fuzz_results
    ):
        label = f"{protocol}@{n}x{schedules}" + (
            f"+faults{budget}" if budget else ""
        )
        report.fuzz[label] = outcome
    violating = [label for label, r in report.fuzz.items() if not r["ok"]]
    if fuzz_jobs:
        report.check(
            "no adversarial schedule violated safety/liveness/validity",
            not violating,
            f"{len(fuzz_jobs)} campaign(s), "
            f"{sum(r['runs'] for r in report.fuzz.values())} schedules"
            + (f"; violations in: {violating}" if violating else ""),
        )

    # -- phase 4: the reliable-delivery election contract ------------------
    from repro.core.protocol import registered_protocols

    protocol_names = sorted(registered_protocols())
    contract_results = run_sweep(
        [lambda p=p: _contract_task(p) for p in protocol_names],
        parallel=parallel,
    )
    for name, outcome in zip(protocol_names, contract_results):
        report.contract[name] = outcome
    abandoned = [
        name
        for name, r in report.contract.items()
        if r["packets_abandoned"] or r["leader_id"] is None
    ]
    report.check(
        "overlay contract: every protocol elects through 10% loss, "
        "no port abandoned",
        not abandoned,
        f"{len(protocol_names)} protocols at N={CONTRACT_N}"
        + (f"; failing: {abandoned}" if abandoned else ""),
    )

    # -- phase 5: the sharded-kernel digest contract -----------------------
    shard_results = run_sweep(
        [
            lambda p=p, n=n, k=k, f=f, e=e: _shard_task(p, n, k, f, e)
            for p, n, k, f, e in SHARD_CELLS
        ],
        parallel=parallel,
    )
    for (protocol, n, shards, lossy, engine), outcome in zip(
        SHARD_CELLS, shard_results
    ):
        # The interp cell keeps the historical unsuffixed label; vector
        # cells are suffixed so the report names the engine under test.
        label = (
            f"{protocol}@{n}/shards{shards}"
            + ("+lossy" if lossy else "")
            + (f"+{engine}" if engine != "interp" else "")
        )
        report.shard[label] = outcome
    diverged = [
        label for label, r in report.shard.items() if not r["equal"]
    ]
    report.check(
        "sharded kernel matches the serial digest on every cell",
        not diverged,
        f"{len(SHARD_CELLS)} cells"
        + (f"; diverged: {diverged}" if diverged else ""),
    )

    # -- phase 6: the flow-conformance probe -------------------------------
    conformance_results = run_sweep(
        [lambda p=p: _conformance_task(p) for p in protocol_names],
        parallel=parallel,
    )
    for name, outcome in zip(protocol_names, conformance_results):
        report.conformance[name] = outcome
    overruns = [
        name for name, r in report.conformance.items() if not r["ok"]
    ]
    report.check(
        "measured per-activation fan-out stays within the static "
        "flow bound",
        not overruns,
        f"{len(protocol_names)} protocols probed"
        + (f"; violating: {overruns}" if overruns else ""),
    )

    # -- phase 7: the statistical gate for the randomized family -----------
    from repro.verification.stat import randomized_protocol_names, verify_stat

    randomized = randomized_protocol_names()
    if randomized:
        stat_report = verify_stat(
            randomized,
            ns=(STAT_N_QUICK if quick else STAT_N,),
            trials=STAT_TRIALS_QUICK if quick else STAT_TRIALS,
            confidence=STAT_CONFIDENCE,
            target=STAT_TARGET_QUICK if quick else STAT_TARGET,
            parallel=parallel,
        )
        report.stat = {s.key: s.to_dict() for s in stat_report.strata}
        below = [c for c in stat_report.checks if not c.passed]
        report.check(
            "statistical gate: randomized strata clear the "
            "Clopper-Pearson targets",
            not below,
            f"{len(stat_report.strata)} strata x {stat_report.trials} "
            f"trials at confidence {stat_report.confidence}"
            + (
                f"; failing: {[c.detail for c in below]}" if below else ""
            ),
        )

    if outdir is not None:
        outdir = Path(outdir)
        outdir.mkdir(parents=True, exist_ok=True)
        (outdir / "check_report.json").write_text(
            json.dumps(report.payload(), indent=1, sort_keys=True) + "\n"
        )
        (outdir / "check_report.md").write_text(report.render())
    return report
