"""Message and time accounting.

The two quantities the paper bounds are

* **message complexity** — messages sent over the whole execution, and
* **time complexity** — termination time under worst-case unit delays.

:class:`MetricsCollector` tallies both, plus per-type message counts (useful
to attribute cost to protocol phases), total payload bits (to check the
O(log N) model), and the *causal depth* of the execution: the longest chain
of messages, which is the delay-independent "ideal time" of the run.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field


@dataclass
class MetricsCollector:
    """Mutable tallies updated by the network runtime during a run."""

    messages_total: int = 0
    bits_total: int = 0
    messages_by_type: Counter = field(default_factory=Counter)
    max_depth: int = 0
    first_wake_time: float | None = None
    last_wake_time: float | None = None
    leader_declared_at: float | None = None
    leader_declared_depth: int | None = None
    quiescent_at: float = 0.0
    # -- fault layer (all zero unless a FaultPlan is installed) -------------
    messages_dropped: int = 0
    messages_duplicated: int = 0
    messages_jittered: int = 0
    # -- reliable-delivery overlay (bumped via ``NodeContext.count``) -------
    retransmissions: int = 0
    duplicates_suppressed: int = 0
    packets_abandoned: int = 0

    def on_send(self, type_name: str, bits: int) -> None:
        """Record one message leaving a node."""
        self.messages_total += 1
        self.bits_total += bits
        self.messages_by_type[type_name] += 1

    def on_delivery_depth(self, depth: int) -> None:
        """Track the longest causal chain seen so far."""
        if depth > self.max_depth:
            self.max_depth = depth

    def on_wake(self, time: float) -> None:
        """Record a node waking (spontaneously or by message)."""
        if self.first_wake_time is None or time < self.first_wake_time:
            self.first_wake_time = time
        if self.last_wake_time is None or time > self.last_wake_time:
            self.last_wake_time = time

    def bump(self, name: str, delta: int = 1) -> None:
        """Add ``delta`` to the integer counter ``name``.

        The generic hook behind :meth:`NodeContext.count`: overlays and apps
        account their bookkeeping (retransmissions, suppressed duplicates)
        without the collector having to know about them ahead of time.  The
        counter must be an existing integer field — a typo raises rather
        than minting untracked state.
        """
        value = getattr(self, name)
        if not isinstance(value, int):
            raise TypeError(f"metric {name!r} is not an integer counter")
        setattr(self, name, value + delta)

    def on_leader(self, time: float, depth: int) -> None:
        """Record the leader's declaration instant."""
        self.leader_declared_at = time
        self.leader_declared_depth = depth

    @property
    def election_time(self) -> float:
        """Time from the first wake-up to the leader's declaration.

        This is the quantity the paper's time-complexity statements bound.
        """
        if self.leader_declared_at is None or self.first_wake_time is None:
            return float("inf")
        return self.leader_declared_at - self.first_wake_time
