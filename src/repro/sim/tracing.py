"""Execution traces.

Traces are opt-in (they cost memory on large sweeps) and record enough to
replay an execution on paper: sends, deliveries, wake-ups, captures and
leader declarations.  The order-equivalence checker in
:mod:`repro.adversary.order_equivalence` consumes these traces to verify the
comparison-based property that Section 5's lower bound relies on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One observable step of an execution."""

    time: float
    kind: str
    node: int
    detail: tuple[tuple[str, Any], ...] = ()

    def get(self, key: str, default: Any = None) -> Any:
        """Look up one detail field by name."""
        for name, value in self.detail:
            if name == key:
                return value
        return default


@dataclass
class Tracer:
    """Collects :class:`TraceEvent` records when enabled."""

    enabled: bool = False
    events: list[TraceEvent] = field(default_factory=list)

    def record(self, time: float, kind: str, node: int, **detail: Any) -> None:
        """Append an event (no-op when disabled)."""
        if self.enabled:
            self.events.append(
                TraceEvent(time, kind, node, tuple(sorted(detail.items())))
            )

    def of_kind(self, kind: str) -> Iterator[TraceEvent]:
        """All recorded events of one kind, in time order."""
        return (event for event in self.events if event.kind == kind)

    def __len__(self) -> int:
        return len(self.events)
