"""The network runtime: topology + protocol + scheduler + adversaries.

:class:`Network` wires a :class:`~repro.topology.complete.CompleteTopology`
to one :class:`~repro.core.protocol.ElectionProtocol`, drives the event loop
and produces an :class:`~repro.core.results.ElectionResult`.

Model guarantees enforced here (Section 2 of the paper):

* reliable FIFO links with per-message latency in ``(0, 1]`` chosen by the
  :class:`~repro.sim.delays.DelayModel` (the asynchronous adversary);
* passive nodes wake when their first message arrives, and such nodes are
  not base nodes;
* every message is audited against the O(log N)-bit budget;
* at most one leader may ever be declared — a second declaration raises
  :class:`~repro.core.errors.ProtocolViolation` at the exact instant of the
  violation, with both culprits named.

Failure injection (for the fault-tolerant protocol): positions listed in
``failed_positions`` model the paper's *initial site failures* — they never
wake, never send, and silently drop everything addressed to them.
``crash_schedule`` additionally kills nodes *mid-run* (``{position:
time}``): from that instant the node drops incoming messages and any send
it attempts raises.  The paper's protocols make no promises about mid-run
crashes (a purely asynchronous network cannot detect them — the FLP
boundary), so these runs are expected to hang candidates; the facility
exists to *demonstrate* that boundary and to fuzz the protocols' state
machines, not to model a tolerated fault.
"""

from __future__ import annotations

import random
from collections.abc import Callable, Mapping
from typing import Any

from repro.core.errors import ProtocolViolation, SimulationError
from repro.core.messages import Message, message_bits
from repro.core.node import Node, NodeContext
from repro.core.protocol import ElectionProtocol
from repro.core.results import ElectionResult
from repro.sim.delays import ConstantDelay, DelayModel
from repro.sim.events import Event
from repro.sim.link import ChannelTable
from repro.sim.metrics import MetricsCollector
from repro.sim.scheduler import Scheduler
from repro.sim.tracing import Tracer
from repro.topology.complete import CompleteTopology

#: A wake-up schedule maps base-node *positions* to spontaneous wake times.
WakeupSchedule = Mapping[int, float]
WakeupFactory = Callable[[CompleteTopology, random.Random], WakeupSchedule]


class _BoundContext(NodeContext):
    """The capability handle handed to one node."""

    def __init__(self, network: "Network", position: int) -> None:
        topology = network.topology
        self._network = network
        self._position = position
        self.node_id = topology.id_at(position)
        self.n = topology.n
        self.num_ports = topology.num_ports
        self.has_sense_of_direction = topology.sense_of_direction

    def send(self, port: int, message: Message) -> None:  # noqa: D102
        self._network._transmit(self._position, port, message)

    def port_label(self, port: int) -> int | None:  # noqa: D102
        return self._network.topology.label(self._position, port)

    def port_with_label(self, distance: int) -> int:  # noqa: D102
        return self._network.topology.port_with_label(self._position, distance)

    def now(self) -> float:  # noqa: D102
        return self._network.scheduler.now

    def declare_leader(self) -> None:  # noqa: D102
        self._network._on_leader_declared(self._position)

    def trace(self, kind: str, **detail: Any) -> None:  # noqa: D102
        self._network.tracer.record(
            self._network.scheduler.now, kind, self.node_id, **detail
        )


class Network:
    """One runnable election instance."""

    def __init__(
        self,
        protocol: ElectionProtocol,
        topology: CompleteTopology,
        *,
        delays: DelayModel | None = None,
        wakeup: WakeupSchedule | WakeupFactory | None = None,
        failed_positions: frozenset[int] | set[int] = frozenset(),
        crash_schedule: Mapping[int, float] | None = None,
        seed: int = 0,
        trace: bool = False,
        max_events: int = 5_000_000,
    ) -> None:
        protocol.validate(topology)
        self.protocol = protocol
        self.topology = topology
        self.delays = delays if delays is not None else ConstantDelay(1.0)
        self.rng = random.Random(seed)
        self.scheduler = Scheduler(max_events=max_events)
        self.tracer = Tracer(enabled=trace)
        self.metrics = MetricsCollector()
        self.channels = ChannelTable()
        self.failed_positions = frozenset(failed_positions)
        bad = [p for p in self.failed_positions if not 0 <= p < topology.n]
        if bad:
            raise SimulationError(f"failed positions out of range: {bad}")
        self.crash_schedule = dict(crash_schedule or {})
        bad = [p for p in self.crash_schedule if not 0 <= p < topology.n]
        if bad:
            raise SimulationError(f"crash positions out of range: {bad}")
        self._crashed: set[int] = set()

        self._wakeup_spec = wakeup
        self._leader_position: int | None = None
        self._current_depth = 0
        self._ran = False

        self.nodes: list[Node] = [
            protocol.create_node(_BoundContext(self, position))
            for position in range(topology.n)
        ]

    # -- wiring ---------------------------------------------------------------

    def _resolve_wakeup(self) -> dict[int, float]:
        """Materialise the wake-up schedule (default: everyone at t=0)."""
        spec = self._wakeup_spec
        if spec is None:
            schedule = {p: 0.0 for p in range(self.topology.n)}
        elif callable(spec):
            schedule = dict(spec(self.topology, self.rng))
        else:
            schedule = dict(spec)
        schedule = {
            p: t for p, t in schedule.items() if p not in self.failed_positions
        }
        if not schedule:
            raise SimulationError("wake-up schedule contains no live base node")
        for position, time in schedule.items():
            if not 0 <= position < self.topology.n:
                raise SimulationError(f"wake position {position} out of range")
            if time < 0:
                raise SimulationError(f"negative wake time {time}")
        return schedule

    def _transmit(self, position: int, port: int, message: Message) -> None:
        """Node ``position`` sends ``message`` through ``port``."""
        if not 0 <= port < self.topology.num_ports:
            raise SimulationError(
                f"node {self.topology.id_at(position)} used invalid port {port}"
            )
        bits = message_bits(message, self.topology.n)
        self.metrics.on_send(message.type_name, bits)
        far = self.topology.neighbor(position, port)
        far_port = self.topology.reverse_port(position, port)
        self.tracer.record(
            self.scheduler.now,
            "send",
            self.topology.id_at(position),
            to=self.topology.id_at(far),
            message=message.type_name,
        )
        # Channels are keyed (and delay models addressed) by identity, so
        # adversarial delay strategies can condition on the ids the paper's
        # constructions talk about.
        channel = self.channels.channel(
            self.topology.id_at(position), self.topology.id_at(far)
        )
        arrival = channel.arrival_time(
            message, self.scheduler.now, self.delays, self.rng
        )
        depth = self._current_depth + 1

        sender_id = self.topology.id_at(position)

        def deliver(event: Event, far=far, far_port=far_port, message=message):
            self._deliver(far, far_port, message, event.depth, sender_id)

        self.scheduler.schedule_at(arrival, deliver, depth=depth)

    def _deliver(
        self, position: int, port: int, message: Message, depth: int, sender_id: int
    ) -> None:
        """Hand a message to its destination node (or drop it if failed)."""
        self.metrics.on_delivery_depth(depth)
        if position in self.failed_positions or position in self._crashed:
            return
        node = self.nodes[position]
        was_asleep = not node.awake
        previous_depth = self._current_depth
        self._current_depth = depth
        try:
            if was_asleep:
                self.metrics.on_wake(self.scheduler.now)
            self.tracer.record(
                self.scheduler.now,
                "deliver",
                self.topology.id_at(position),
                message=message.type_name,
                sender=sender_id,
            )
            node.receive(port, message)
        finally:
            self._current_depth = previous_depth

    def _on_leader_declared(self, position: int) -> None:
        if self._leader_position is not None and self._leader_position != position:
            first = self.topology.id_at(self._leader_position)
            second = self.topology.id_at(position)
            raise ProtocolViolation(
                f"{self.protocol.name}: node {second} declared leader at "
                f"t={self.scheduler.now} but node {first} already had"
            )
        if self._leader_position is None:
            self._leader_position = position
            self.metrics.on_leader(self.scheduler.now, self._current_depth)

    # -- running ---------------------------------------------------------------

    def run(
        self, *, until: float | None = None, require_leader: bool = True
    ) -> ElectionResult:
        """Execute to quiescence (or ``until``) and return the result.

        With ``require_leader=True`` (default) the result is also verified:
        liveness, safety and validity per :meth:`ElectionResult.verify`.
        """
        if self._ran:
            raise SimulationError("a Network instance can only run once")
        self._ran = True

        schedule = self._resolve_wakeup()
        for position, time in schedule.items():

            def wake(event: Event, position=position):
                node = self.nodes[position]
                if position not in self._crashed and not node.awake:
                    self.metrics.on_wake(self.scheduler.now)
                    node.wake(spontaneous=True)

            self.scheduler.schedule_at(time, wake, tiebreak=-1)

        for position, time in self.crash_schedule.items():

            def crash(event: Event, position=position):
                self._crashed.add(position)
                self.tracer.record(
                    self.scheduler.now, "crash", self.topology.id_at(position)
                )

            # Crashes win ties against deliveries at the same instant: the
            # adversary kills the node before it can act.
            self.scheduler.schedule_at(time, crash, tiebreak=-2)

        self.scheduler.run(until=until)
        self.metrics.quiescent_at = self.scheduler.now

        # A node scheduled to wake spontaneously may have been woken earlier
        # by a message, in which case it is *not* a base node; report the
        # nodes that actually started the protocol on their own.
        base_positions = tuple(
            position
            for position in range(self.topology.n)
            if self.nodes[position].is_base
        )
        result = self._build_result(base_positions)
        if require_leader:
            result.verify()
        return result

    def _build_result(self, base_positions: tuple[int, ...]) -> ElectionResult:
        leader_position = self._leader_position
        leader_id = (
            self.topology.id_at(leader_position)
            if leader_position is not None
            else None
        )
        metrics = self.metrics
        return ElectionResult(
            n=self.topology.n,
            protocol=self.protocol.describe(),
            leader_id=leader_id,
            leader_position=leader_position,
            elected_at=metrics.leader_declared_at,
            election_time=metrics.election_time,
            election_depth=metrics.leader_declared_depth,
            messages_total=metrics.messages_total,
            bits_total=metrics.bits_total,
            messages_by_type=dict(metrics.messages_by_type),
            max_depth=metrics.max_depth,
            quiescent_at=metrics.quiescent_at,
            first_wake_time=metrics.first_wake_time,
            last_wake_time=metrics.last_wake_time,
            base_positions=base_positions,
            failed_positions=tuple(sorted(self.failed_positions)),
            node_snapshots=tuple(node.snapshot() for node in self.nodes),
            trace=self.tracer,
            crashed_positions=tuple(sorted(self._crashed)),
            max_channel_load=self.channels.max_load,
        )


def run_election(
    protocol: ElectionProtocol,
    topology: CompleteTopology,
    **kwargs: Any,
) -> ElectionResult:
    """One-shot convenience wrapper: build a :class:`Network` and run it."""
    until = kwargs.pop("until", None)
    require_leader = kwargs.pop("require_leader", True)
    network = Network(protocol, topology, **kwargs)
    return network.run(until=until, require_leader=require_leader)
