"""The network runtime: topology + protocol + scheduler + adversaries.

:class:`Network` wires a :class:`~repro.topology.complete.CompleteTopology`
to one :class:`~repro.core.protocol.ElectionProtocol`, drives the event loop
and produces an :class:`~repro.core.results.ElectionResult`.

Model guarantees enforced here (Section 2 of the paper):

* reliable FIFO links with per-message latency in ``(0, 1]`` chosen by the
  :class:`~repro.sim.delays.DelayModel` (the asynchronous adversary);
* passive nodes wake when their first message arrives, and such nodes are
  not base nodes;
* every message is audited against the O(log N)-bit budget;
* at most one leader may ever be declared — a second declaration raises
  :class:`~repro.core.errors.ProtocolViolation` at the exact instant of the
  violation, with both culprits named.

Failure injection (for the fault-tolerant protocol): positions listed in
``failed_positions`` model the paper's *initial site failures* — they never
wake, never send, and silently drop everything addressed to them.
``crash_schedule`` additionally kills nodes *mid-run* (``{position:
time}``): from that instant the node drops incoming messages and any send
it attempts raises.  The paper's protocols make no promises about mid-run
crashes (a purely asynchronous network cannot detect them — the FLP
boundary), so these runs are expected to hang candidates; the facility
exists to *demonstrate* that boundary and to fuzz the protocols' state
machines, not to model a tolerated fault.  A crash at t=0.0 is *not* the
same as an initial failure — the crashed node's links exist and its crash
is reported in ``crashed_positions``, so the two stay distinguishable (and
listing a position in both is rejected as a configuration error).

Link faults: passing a :class:`~repro.sim.faults.FaultPlan` as ``faults``
installs seeded per-link drop/duplication/jitter/partition injection (and
generalised crash-stop via ``FaultPlan.crashes``, which merges into the
crash schedule).  See :mod:`repro.sim.faults` and docs/faults.md; with no
plan installed the send path pays a single attribute test, the same
zero-cost-off discipline as tracing.

Hot-path design (see docs/performance.md): the send path performs no
per-message closure or :class:`Event` allocation — deliveries ride the heap
as plain tuples handled by one preallocated bound method; tracing is a
single attribute test when disabled; and message/bit/depth counters
accumulate in plain attributes that are folded into the
:class:`~repro.sim.metrics.MetricsCollector` at quiescence.
"""

from __future__ import annotations

import random
from collections.abc import Callable, Mapping
from typing import Any

from repro.core.errors import ProtocolViolation, SimulationError
from repro.core.messages import Message, message_bits
from repro.core.node import Node, NodeContext
from repro.core.protocol import ElectionProtocol
from repro.core.results import ElectionResult
from repro.sim.delays import ConstantDelay, DelayModel
from repro.sim.events import Event
from repro.sim.faults import FaultPlan
from repro.sim.link import ChannelTable
from repro.sim.metrics import MetricsCollector
from repro.sim.rng import node_stream
from repro.sim.scheduler import Scheduler
from repro.sim.tracing import Tracer
from repro.topology.complete import CompleteTopology

#: A wake-up schedule maps base-node *positions* to spontaneous wake times.
WakeupSchedule = Mapping[int, float]
WakeupFactory = Callable[[CompleteTopology, random.Random], WakeupSchedule]


def resolve_wakeup(
    spec: WakeupSchedule | WakeupFactory | None,
    topology: CompleteTopology,
    failed_positions: frozenset[int],
    rng: random.Random,
) -> dict[int, float]:
    """Materialise a wake-up schedule (default: everyone at t=0).

    Shared by :class:`Network` and the sharded kernel so both resolve the
    same spec to the same schedule — factories draw from ``rng`` *before*
    any other consumer, which is what keeps factory-produced schedules
    identical between serial and sharded runs of the same seed.
    """
    if spec is None:
        schedule = {p: 0.0 for p in range(topology.n)}
    elif callable(spec):
        schedule = dict(spec(topology, rng))
    else:
        schedule = dict(spec)
    schedule = {p: t for p, t in schedule.items() if p not in failed_positions}
    if not schedule:
        raise SimulationError("wake-up schedule contains no live base node")
    for position, time in schedule.items():
        if not 0 <= position < topology.n:
            raise SimulationError(f"wake position {position} out of range")
        if time < 0:
            raise SimulationError(f"negative wake time {time}")
    return schedule


def merge_crash_schedule(
    crash_schedule: Mapping[int, float] | None, faults: FaultPlan | None
) -> dict[int, float]:
    """Fold a fault plan's crashes into an explicit crash schedule."""
    merged = dict(crash_schedule or {})
    if faults is not None:
        for position, time in faults.crashes.items():
            existing = merged.get(position)
            if existing is not None and existing != time:
                raise SimulationError(
                    f"position {position} has conflicting crash times: "
                    f"{existing} (crash_schedule) vs {time} (fault plan)"
                )
            merged[position] = time
    return merged


def validate_failure_config(
    n: int,
    failed_positions: frozenset[int],
    crash_schedule: Mapping[int, float],
) -> None:
    """Reject out-of-range/contradictory failure configurations.

    One validation path for every runtime (serial network, sharded
    kernel), so misconfiguration errors are identical wherever a run is
    executed.
    """
    bad = [p for p in failed_positions if not 0 <= p < n]
    if bad:
        raise SimulationError(f"failed positions out of range: {bad}")
    bad = [p for p in crash_schedule if not 0 <= p < n]
    if bad:
        raise SimulationError(f"crash positions out of range: {bad}")
    bad = [p for p, t in sorted(crash_schedule.items()) if t < 0]
    if bad:
        raise SimulationError(f"negative crash times for positions: {bad}")
    overlap = sorted(failed_positions & crash_schedule.keys())
    if overlap:
        raise SimulationError(
            f"positions {overlap} are both initially failed and scheduled "
            "to crash; an initially-failed node never existed at runtime, "
            "so crashing it is contradictory (a crash at t=0.0 is the "
            "distinguishable alternative)"
        )


class SendPath:
    """The send path shared by every runtime (serial network, shards).

    One implementation of the per-send pipeline — port validation, bit
    audit, per-type tally, FIFO arrival (with the const-latency fast
    path), and the zero-cost-off fault hook — ending in a single
    :meth:`_dispatch_send` call that each runtime binds to its own
    delivery machinery: the serial :class:`Network` schedules a heap
    entry, the sharded kernel buffers a packed record at the window
    barrier, and the vectorized engine appends to its columnar batch.
    Deduplicating the pipeline here is what keeps the runtimes
    byte-identical: there is exactly one definition of what a send does.

    Host requirements (all plain attributes, so the hot path stays free
    of descriptor lookups): ``scheduler``, ``topology``, ``delays``,
    ``rng``, ``_faults``, ``_channel_of``, ``_const_latency``, ``_ids``,
    ``_num_ports``, ``_n``, and the accounting accumulators.  Hosts
    without tracing leave the class-level ``_tracing = False`` in place
    and never touch ``tracer``.
    """

    _tracing = False

    def _dispatch_send(
        self,
        arrival: float,
        far: int,
        far_port: int,
        message: Message,
        sender_id: int,
    ) -> None:
        raise NotImplementedError

    def _transmit(self, position: int, port: int, message: Message) -> None:
        """Node ``position`` sends ``message`` through ``port``."""
        if self._faults is not None:
            self._transmit_faulty(position, port, message)
            return
        if not 0 <= port < self._num_ports:
            raise SimulationError(
                f"node {self._ids[position]} used invalid port {port}"
            )
        bits = message_bits(message, self._n)
        self._messages_total += 1
        self._bits_total += bits
        type_name = message.type_name
        counts = self._type_counts
        counts[type_name] = counts.get(type_name, 0) + 1
        topology = self.topology
        far = topology.neighbor(position, port)
        far_port = topology.reverse_port(position, port)
        sender_id = self._ids[position]
        scheduler = self.scheduler
        if self._tracing:
            self.tracer.record(
                scheduler.now,
                "send",
                sender_id,
                to=self._ids[far],
                message=type_name,
            )
        # Channels are keyed (and delay models addressed) by identity, so
        # adversarial delay strategies can condition on the ids the paper's
        # constructions talk about.
        channel = self._channel_of(sender_id, self._ids[far])
        latency = self._const_latency
        if latency is not None:
            arrival = scheduler.now + latency
            if arrival < channel.last_arrival:
                arrival = channel.last_arrival
            channel.last_arrival = arrival
            channel.messages_sent += 1
        else:
            arrival = channel.arrival_time(
                message, scheduler.now, self.delays, self.rng
            )
        self._dispatch_send(arrival, far, far_port, message, sender_id)

    def _transmit_faulty(
        self, position: int, port: int, message: Message
    ) -> None:
        """The send path with a :class:`FaultPlan` installed.

        Mirrors :meth:`_transmit`'s accounting (a dropped message still
        *counts* as sent — loss is the gap between sent and delivered), then
        asks the plan's per-link verdict.  The FIFO arrival is computed
        first and jitter added on top without advancing the channel's FIFO
        clock, so reordering stays bounded by the plan's ``jitter``.
        """
        if not 0 <= port < self._num_ports:
            raise SimulationError(
                f"node {self._ids[position]} used invalid port {port}"
            )
        bits = message_bits(message, self._n)
        self._messages_total += 1
        self._bits_total += bits
        type_name = message.type_name
        counts = self._type_counts
        counts[type_name] = counts.get(type_name, 0) + 1
        topology = self.topology
        far = topology.neighbor(position, port)
        far_port = topology.reverse_port(position, port)
        sender_id = self._ids[position]
        receiver_id = self._ids[far]
        scheduler = self.scheduler
        if self._tracing:
            self.tracer.record(
                scheduler.now, "send", sender_id, to=receiver_id,
                message=type_name,
            )
        channel = self._channel_of(sender_id, receiver_id)
        # The generic arrival path computes the same times as the const
        # fast path for ConstantDelay (latency fixed, gap zero, no RNG
        # draw), so a plan with all rates zero is byte-identical to no plan.
        arrival = channel.arrival_time(
            message, scheduler.now, self.delays, self.rng
        )
        copies, jitter, dup_jitter, reason = self._faults.judge(
            sender_id, receiver_id, scheduler.now
        )
        if copies == 0:
            self._dropped += 1
            channel.messages_dropped += 1
            if self._tracing:
                self.tracer.record(
                    scheduler.now, "drop", sender_id, to=receiver_id,
                    message=type_name, reason=reason,
                )
            return
        if jitter > 0.0:
            self._jittered += 1
            if self._tracing:
                self.tracer.record(
                    scheduler.now, "jitter", sender_id, to=receiver_id,
                    message=type_name, delay=jitter,
                )
        self._dispatch_send(arrival + jitter, far, far_port, message, sender_id)
        if copies == 2:
            self._duplicated += 1
            channel.messages_duplicated += 1
            if self._tracing:
                self.tracer.record(
                    scheduler.now, "duplicate", sender_id, to=receiver_id,
                    message=type_name,
                )
            self._dispatch_send(
                arrival + dup_jitter, far, far_port, message, sender_id
            )


class _BoundContext(NodeContext):
    """The capability handle handed to one node."""

    def __init__(self, network: "Network", position: int) -> None:
        topology = network.topology
        self._network = network
        self._position = position
        self.node_id = topology.id_at(position)
        self.n = topology.n
        self.num_ports = topology.num_ports
        self.has_sense_of_direction = topology.sense_of_direction
        self._rng: random.Random | None = None

    def send(self, port: int, message: Message) -> None:  # noqa: D102
        self._network._transmit(self._position, port, message)

    def port_label(self, port: int) -> int | None:  # noqa: D102
        return self._network.topology.label(self._position, port)

    def port_with_label(self, distance: int) -> int:  # noqa: D102
        return self._network.topology.port_with_label(self._position, distance)

    def now(self) -> float:  # noqa: D102
        return self._network.scheduler.now

    def declare_leader(self) -> None:  # noqa: D102
        self._network._on_leader_declared(self._position)

    def set_timer(self, delay: float, callback: Callable[[], None]) -> None:
        """Arm a one-shot timer; see :meth:`NodeContext.set_timer`."""
        self._network._schedule_timer(self._position, delay, callback)

    def count(self, metric: str, delta: int = 1) -> None:  # noqa: D102
        self._network.metrics.bump(metric, delta)

    def rng(self) -> random.Random:
        """This node's ``(run_seed, node_id)``-derived stream (lazy)."""
        stream = self._rng
        if stream is None:
            stream = self._rng = node_stream(self._network.seed, self.node_id)
        return stream

    def trace(self, kind: str, **detail: Any) -> None:  # noqa: D102
        network = self._network
        if network._tracing:
            network.tracer.record(
                network.scheduler.now, kind, self.node_id, **detail
            )


class Network(SendPath):
    """One runnable election instance."""

    def __init__(
        self,
        protocol: ElectionProtocol,
        topology: CompleteTopology,
        *,
        delays: DelayModel | None = None,
        wakeup: WakeupSchedule | WakeupFactory | None = None,
        failed_positions: frozenset[int] | set[int] = frozenset(),
        crash_schedule: Mapping[int, float] | None = None,
        faults: FaultPlan | None = None,
        seed: int = 0,
        trace: bool = False,
        max_events: int = 5_000_000,
    ) -> None:
        protocol.validate(topology)
        self.protocol = protocol
        self.topology = topology
        self.delays = delays if delays is not None else ConstantDelay(1.0)
        self.seed = seed
        self.rng = random.Random(seed)
        self.scheduler = Scheduler(max_events=max_events)
        self.tracer = Tracer(enabled=trace)
        self.metrics = MetricsCollector()
        self.channels = ChannelTable()
        self.failed_positions = frozenset(failed_positions)
        self.crash_schedule = merge_crash_schedule(crash_schedule, faults)
        validate_failure_config(
            topology.n, self.failed_positions, self.crash_schedule
        )
        self._crashed: set[int] = set()
        #: Per-run fault state; ``None`` keeps the send path on the fast
        #: branch (one attribute test, zero overhead).
        self._faults = faults.bind() if faults is not None else None
        self.fault_plan = faults

        self._wakeup_spec = wakeup
        self._leader_position: int | None = None
        self._current_depth = 0
        self._ran = False

        # Hot-path state: ids/num_ports as plain attributes, counters as
        # local accumulators (flushed into ``self.metrics`` at quiescence),
        # and the tracing flag tested once per send/delivery.
        self._tracing = trace
        self._ids = topology.ids
        self._num_ports = topology.num_ports
        self._n = topology.n
        self._messages_total = 0
        self._bits_total = 0
        self._type_counts: dict[str, int] = {}
        self._max_depth = 0
        self._dropped = 0
        self._duplicated = 0
        self._jittered = 0
        self._has_failures = bool(self.failed_positions) or bool(
            self.crash_schedule
        )
        self._channel_of = self.channels.channel
        self._schedule_payload = self.scheduler.schedule_payload
        # Constant latency with the default zero gap needs no per-message
        # delay-model dispatch (and consumes no randomness): the arrival is
        # just the FIFO clamp of ``now + delay``.
        self._const_latency = (
            self.delays.delay
            if type(self.delays) is ConstantDelay
            and type(self.delays).gap is DelayModel.gap
            else None
        )

        self.nodes: list[Node] = [
            protocol.create_node(_BoundContext(self, position))
            for position in range(topology.n)
        ]

    # -- wiring ---------------------------------------------------------------

    def _resolve_wakeup(self) -> dict[int, float]:
        """Materialise the wake-up schedule (default: everyone at t=0)."""
        return resolve_wakeup(
            self._wakeup_spec, self.topology, self.failed_positions, self.rng
        )

    def _dispatch_send(
        self,
        arrival: float,
        far: int,
        far_port: int,
        message: Message,
        sender_id: int,
    ) -> None:
        """Serial delivery: one payload-carrying heap entry per message."""
        self._schedule_payload(
            arrival,
            self._deliver_entry,
            self._current_depth + 1,
            (far, far_port, message, sender_id),
        )

    def _schedule_timer(
        self, position: int, delay: float, callback: Callable[[], None]
    ) -> None:
        """Arm a one-shot timer for ``position`` (``NodeContext.set_timer``).

        Timers ride the same payload fast path as deliveries but with
        tiebreak 1, so a delivery (or ack) landing at the exact timeout
        instant is processed first and a retransmission overlay never
        retransmits something already acknowledged "now".
        """
        if delay < 0:
            raise SimulationError(f"negative timer delay {delay}")
        self._schedule_payload(
            self.scheduler.now + delay,
            self._timer_entry,
            self._current_depth,
            (position, callback),
            1,
        )

    def _timer_entry(self, entry: tuple) -> None:
        """Fire a timer callback unless its owner has failed or crashed."""
        position = entry[4]
        if self._has_failures and (
            position in self.failed_positions or position in self._crashed
        ):
            return
        previous_depth = self._current_depth
        self._current_depth = entry[3]
        try:
            entry[5]()
        finally:
            self._current_depth = previous_depth

    def _deliver_entry(self, entry: tuple) -> None:
        """Hand a message to its destination node (or drop it if failed).

        ``entry`` is the raw heap tuple; the payload packed by
        :meth:`_transmit` sits at slots 4+ (see :mod:`repro.sim.events`).
        """
        depth = entry[3]
        position = entry[4]
        if depth > self._max_depth:
            self._max_depth = depth
        if self._has_failures and (
            position in self.failed_positions or position in self._crashed
        ):
            return
        node = self.nodes[position]
        message = entry[6]
        was_asleep = not node.awake
        previous_depth = self._current_depth
        self._current_depth = depth
        try:
            if was_asleep:
                self.metrics.on_wake(self.scheduler.now)
            if self._tracing:
                self.tracer.record(
                    self.scheduler.now,
                    "deliver",
                    self._ids[position],
                    message=message.type_name,
                    sender=entry[7],
                )
            node.receive(entry[5], message)
        finally:
            self._current_depth = previous_depth

    def _on_leader_declared(self, position: int) -> None:
        if self._leader_position is not None and self._leader_position != position:
            first = self.topology.id_at(self._leader_position)
            second = self.topology.id_at(position)
            raise ProtocolViolation(
                f"{self.protocol.name}: node {second} declared leader at "
                f"t={self.scheduler.now} but node {first} already had"
            )
        if self._leader_position is None:
            self._leader_position = position
            self.metrics.on_leader(self.scheduler.now, self._current_depth)

    def _flush_metrics(self) -> None:
        """Fold the hot-path accumulators into the metrics collector."""
        metrics = self.metrics
        metrics.messages_total = self._messages_total
        metrics.bits_total = self._bits_total
        metrics.messages_by_type.clear()
        metrics.messages_by_type.update(self._type_counts)
        if self._max_depth > metrics.max_depth:
            metrics.max_depth = self._max_depth
        metrics.messages_dropped = self._dropped
        metrics.messages_duplicated = self._duplicated
        metrics.messages_jittered = self._jittered

    # -- running ---------------------------------------------------------------

    def run(
        self, *, until: float | None = None, require_leader: bool = True
    ) -> ElectionResult:
        """Execute to quiescence (or ``until``) and return the result.

        With ``require_leader=True`` (default) the result is also verified:
        liveness, safety and validity per :meth:`ElectionResult.verify`.
        """
        if self._ran:
            raise SimulationError("a Network instance can only run once")
        self._ran = True

        schedule = self._resolve_wakeup()
        for position, time in schedule.items():

            def wake(event: Event, position=position):
                node = self.nodes[position]
                if position not in self._crashed and not node.awake:
                    self.metrics.on_wake(self.scheduler.now)
                    node.wake(spontaneous=True)

            self.scheduler.schedule_at(time, wake, tiebreak=-1)

        for position, time in self.crash_schedule.items():

            def crash(event: Event, position=position):
                self._crashed.add(position)
                self.tracer.record(
                    self.scheduler.now, "crash", self.topology.id_at(position)
                )

            # Crashes win ties against deliveries at the same instant: the
            # adversary kills the node before it can act.
            self.scheduler.schedule_at(time, crash, tiebreak=-2)

        try:
            self.scheduler.run(until=until)
        finally:
            self._flush_metrics()
        self.metrics.quiescent_at = self.scheduler.now

        # A node scheduled to wake spontaneously may have been woken earlier
        # by a message, in which case it is *not* a base node; report the
        # nodes that actually started the protocol on their own.
        base_positions = tuple(
            position
            for position in range(self.topology.n)
            if self.nodes[position].is_base
        )
        result = self._build_result(base_positions)
        if require_leader:
            result.verify()
        return result

    def _build_result(self, base_positions: tuple[int, ...]) -> ElectionResult:
        leader_position = self._leader_position
        leader_id = (
            self.topology.id_at(leader_position)
            if leader_position is not None
            else None
        )
        metrics = self.metrics
        return ElectionResult(
            n=self.topology.n,
            protocol=self.protocol.describe(),
            leader_id=leader_id,
            leader_position=leader_position,
            elected_at=metrics.leader_declared_at,
            election_time=metrics.election_time,
            election_depth=metrics.leader_declared_depth,
            messages_total=metrics.messages_total,
            bits_total=metrics.bits_total,
            messages_by_type=dict(metrics.messages_by_type),
            max_depth=metrics.max_depth,
            quiescent_at=metrics.quiescent_at,
            first_wake_time=metrics.first_wake_time,
            last_wake_time=metrics.last_wake_time,
            base_positions=base_positions,
            failed_positions=tuple(sorted(self.failed_positions)),
            node_snapshots=tuple(node.snapshot() for node in self.nodes),
            trace=self.tracer,
            crashed_positions=tuple(sorted(self._crashed)),
            max_channel_load=self.channels.max_load,
            messages_dropped=metrics.messages_dropped,
            messages_duplicated=metrics.messages_duplicated,
            messages_jittered=metrics.messages_jittered,
            retransmissions=metrics.retransmissions,
            duplicates_suppressed=metrics.duplicates_suppressed,
            packets_abandoned=metrics.packets_abandoned,
        )


def run_election(
    protocol: ElectionProtocol,
    topology: CompleteTopology,
    *,
    delays: DelayModel | None = None,
    wakeup: WakeupSchedule | WakeupFactory | None = None,
    failed_positions: frozenset[int] | set[int] = frozenset(),
    crash_schedule: Mapping[int, float] | None = None,
    faults: FaultPlan | None = None,
    seed: int = 0,
    trace: bool = False,
    max_events: int = 5_000_000,
    until: float | None = None,
    require_leader: bool = True,
) -> ElectionResult:
    """One-shot convenience wrapper: build a :class:`Network` and run it.

    The keyword signature mirrors :class:`Network` exactly (plus ``until``
    and ``require_leader`` from :meth:`Network.run`), so a mistyped keyword
    raises ``TypeError`` here instead of being silently forwarded.
    """
    network = Network(
        protocol,
        topology,
        delays=delays,
        wakeup=wakeup,
        failed_positions=failed_positions,
        crash_schedule=crash_schedule,
        faults=faults,
        seed=seed,
        trace=trace,
        max_events=max_events,
    )
    return network.run(until=until, require_leader=require_leader)
