"""Message-delay models.

Section 2 of the paper fixes the timing model used for all complexity
claims:

* a message takes *at most one time unit* to reach its destination, and
* the *inter-message delay* on a single link is at most one time unit
  (consecutive deliveries on one link may be spaced up to a unit apart).

A :class:`DelayModel` decides, per message, the transmission latency and the
extra FIFO spacing.  The asynchronous adversary of the proofs corresponds to
choosing these values maliciously; the benign benchmarks use constant or
random delays.  Models receive the *sender/receiver identities* and the send
time so adversarial models (Section 5's band-stretching construction) can
condition on them.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod

from repro.core.errors import ConfigurationError
from repro.core.messages import Message


class DelayModel(ABC):
    """Chooses per-message latency (and per-link spacing) in ``(0, 1]``."""

    @abstractmethod
    def latency(
        self,
        sender: int,
        receiver: int,
        message: Message,
        send_time: float,
        rng: random.Random,
    ) -> float:
        """Transmission latency for this message, in ``(0, 1]``."""

    def gap(
        self,
        sender: int,
        receiver: int,
        message: Message,
        send_time: float,
        rng: random.Random,
    ) -> float:
        """Minimum spacing after the previous delivery on the same link.

        The paper allows up to one time unit; the default is zero (links as
        fast as FIFO permits).  Adversaries override this to stretch chains.
        """
        return 0.0


def _check_unit_interval(value: float, what: str) -> float:
    if not 0.0 < value <= 1.0:
        raise ConfigurationError(f"{what} must lie in (0, 1], got {value}")
    return value


class ConstantDelay(DelayModel):
    """Every message takes exactly ``delay`` time units.

    ``ConstantDelay(1.0)`` is the worst-case synchronous-looking schedule the
    paper's time-complexity definition measures against.
    """

    def __init__(self, delay: float = 1.0) -> None:
        self._delay = _check_unit_interval(delay, "delay")

    @property
    def delay(self) -> float:
        return self._delay

    def latency(self, sender, receiver, message, send_time, rng):  # noqa: D102
        return self._delay


class UniformDelay(DelayModel):
    """Latency drawn uniformly from ``[low, high] ⊆ (0, 1]`` per message."""

    def __init__(self, low: float = 0.1, high: float = 1.0) -> None:
        self._low = _check_unit_interval(low, "low")
        self._high = _check_unit_interval(high, "high")
        if low > high:
            raise ConfigurationError(f"low={low} exceeds high={high}")

    def latency(self, sender, receiver, message, send_time, rng):  # noqa: D102
        return rng.uniform(self._low, self._high)


class HookDelay(DelayModel):
    """Delegates to caller-supplied callables.

    The Section 5 adversary is implemented as hooks so the lower-bound
    experiment can stretch delays for the moving band ``B_i`` while leaving
    the rest of the network fast.  ``latency_fn`` (and optional ``gap_fn``)
    receive ``(sender, receiver, message, send_time)`` and must return a
    value in ``(0, 1]`` (gap in ``[0, 1]``).
    """

    def __init__(self, latency_fn, gap_fn=None) -> None:
        self._latency_fn = latency_fn
        self._gap_fn = gap_fn

    def latency(self, sender, receiver, message, send_time, rng):  # noqa: D102
        return _check_unit_interval(
            self._latency_fn(sender, receiver, message, send_time), "latency"
        )

    def gap(self, sender, receiver, message, send_time, rng):  # noqa: D102
        if self._gap_fn is None:
            return 0.0
        value = self._gap_fn(sender, receiver, message, send_time)
        if not 0.0 <= value <= 1.0:
            raise ConfigurationError(f"gap must lie in [0, 1], got {value}")
        return value
