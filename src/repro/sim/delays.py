"""Message-delay models.

Section 2 of the paper fixes the timing model used for all complexity
claims:

* a message takes *at most one time unit* to reach its destination, and
* the *inter-message delay* on a single link is at most one time unit
  (consecutive deliveries on one link may be spaced up to a unit apart).

A :class:`DelayModel` decides, per message, the transmission latency and the
extra FIFO spacing.  The asynchronous adversary of the proofs corresponds to
choosing these values maliciously; the benign benchmarks use constant or
random delays.  Models receive the *sender/receiver identities* and the send
time so adversarial models (Section 5's band-stretching construction) can
condition on them.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod

from repro.core.errors import ConfigurationError
from repro.core.messages import Message


class DelayModel(ABC):
    """Chooses per-message latency (and per-link spacing) in ``(0, 1]``.

    Two class-level attributes describe the model to the sharded kernel
    (:mod:`repro.sim.shard`), which needs a *conservative lookahead* — a
    strictly positive lower bound on every latency the model can return —
    and a guarantee that the model never consumes the shared run RNG
    (per-shard execution cannot reproduce a global draw order):

    * ``min_latency`` — a float lower-bounding :meth:`latency` for every
      message, or ``None`` when no bound is declared.  Models with a
      ``None`` (or non-positive) bound cannot be sharded.
    * ``uses_run_rng`` — ``True`` when :meth:`latency`/:meth:`gap` may
      draw from the ``rng`` argument.  Subclasses that ignore it set this
      ``False`` to become shardable.
    """

    #: Lower bound on every latency the model returns (None: unbounded).
    min_latency: float | None = None
    #: Whether latency()/gap() may consume the shared run RNG.
    uses_run_rng: bool = True

    @abstractmethod
    def latency(
        self,
        sender: int,
        receiver: int,
        message: Message,
        send_time: float,
        rng: random.Random,
    ) -> float:
        """Transmission latency for this message, in ``(0, 1]``."""

    def gap(
        self,
        sender: int,
        receiver: int,
        message: Message,
        send_time: float,
        rng: random.Random,
    ) -> float:
        """Minimum spacing after the previous delivery on the same link.

        The paper allows up to one time unit; the default is zero (links as
        fast as FIFO permits).  Adversaries override this to stretch chains.
        """
        return 0.0


def _check_unit_interval(value: float, what: str) -> float:
    if not 0.0 < value <= 1.0:
        raise ConfigurationError(f"{what} must lie in (0, 1], got {value}")
    return value


class ConstantDelay(DelayModel):
    """Every message takes exactly ``delay`` time units.

    ``ConstantDelay(1.0)`` is the worst-case synchronous-looking schedule the
    paper's time-complexity definition measures against.
    """

    uses_run_rng = False

    def __init__(self, delay: float = 1.0) -> None:
        self._delay = _check_unit_interval(delay, "delay")
        self.min_latency = self._delay

    @property
    def delay(self) -> float:
        return self._delay

    def latency(self, sender, receiver, message, send_time, rng):  # noqa: D102
        return self._delay


class UniformDelay(DelayModel):
    """Latency drawn uniformly from ``[low, high] ⊆ (0, 1]`` per message.

    By default each draw consumes the shared run RNG, which keeps the
    model serial-only: per-shard execution cannot reproduce a single
    global draw order.  Declaring ``min_latency=`` opts into sharded
    execution by switching the draws to *per-directed-link* streams,
    each lazily seeded from ``(stream_seed, sender, receiver)``.  A
    link's draws then happen in that link's FIFO send order — an order
    the sharded kernel's digest contract already reproduces exactly —
    so serial and sharded runs see identical latencies no matter how
    links interleave globally.  The declared bound must satisfy
    ``0 < min_latency <= low`` (the kernel uses it as the conservative
    window lookahead, so it may not exceed any latency the model can
    actually return).

    Note the two modes are *different random processes*: the same
    ``(low, high)`` model produces different delays with and without
    ``min_latency=``, so frozen fixtures pin one mode or the other.
    """

    def __init__(
        self,
        low: float = 0.1,
        high: float = 1.0,
        *,
        min_latency: float | None = None,
        stream_seed: int = 0,
    ) -> None:
        self._low = _check_unit_interval(low, "low")
        self._high = _check_unit_interval(high, "high")
        if low > high:
            raise ConfigurationError(f"low={low} exceeds high={high}")
        if min_latency is None:
            # The bound is declared for completeness, but the per-message
            # draw from the shared run RNG keeps this model serial-only.
            self.min_latency = self._low
        else:
            if not 0.0 < min_latency <= self._low:
                raise ConfigurationError(
                    f"min_latency must lie in (0, low={self._low}], "
                    f"got {min_latency}"
                )
            self.min_latency = min_latency
            self.uses_run_rng = False
            self._streams: dict[tuple[int, int], random.Random] = {}
            self._stream_seed = stream_seed

    def latency(self, sender, receiver, message, send_time, rng):  # noqa: D102
        if self.uses_run_rng:
            return rng.uniform(self._low, self._high)
        streams = self._streams
        stream = streams.get((sender, receiver))
        if stream is None:
            stream = streams[(sender, receiver)] = random.Random(
                (self._stream_seed << 40)
                ^ (sender * 1_000_003 + receiver)
            )
        return stream.uniform(self._low, self._high)


class HookDelay(DelayModel):
    """Delegates to caller-supplied callables.

    The Section 5 adversary is implemented as hooks so the lower-bound
    experiment can stretch delays for the moving band ``B_i`` while leaving
    the rest of the network fast.  ``latency_fn`` (and optional ``gap_fn``)
    receive ``(sender, receiver, message, send_time)`` and must return a
    value in ``(0, 1]`` (gap in ``[0, 1]``).

    Hooks never see the run RNG, so a hook model is shardable as soon as
    the caller declares ``min_latency`` — a positive lower bound on every
    value ``latency_fn`` can return (left ``None``, the model stays
    serial-only; the bound is a promise the caller makes, not something
    the kernel can derive from an opaque callable).
    """

    uses_run_rng = False

    def __init__(self, latency_fn, gap_fn=None, *, min_latency=None) -> None:
        self._latency_fn = latency_fn
        self._gap_fn = gap_fn
        if min_latency is not None and min_latency <= 0.0:
            raise ConfigurationError(
                f"min_latency must be positive, got {min_latency}"
            )
        self.min_latency = min_latency

    def latency(self, sender, receiver, message, send_time, rng):  # noqa: D102
        return _check_unit_interval(
            self._latency_fn(sender, receiver, message, send_time), "latency"
        )

    def gap(self, sender, receiver, message, send_time, rng):  # noqa: D102
        if self._gap_fn is None:
            return 0.0
        value = self._gap_fn(sender, receiver, message, send_time)
        if not 0.0 <= value <= 1.0:
            raise ConfigurationError(f"gap must lie in [0, 1], got {value}")
        return value
