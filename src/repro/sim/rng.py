"""Deterministic per-node RNG streams for randomized protocols.

The randomized family (:mod:`repro.protocols.random`) tosses coins, but
the repo's whole value proposition is byte-replayability: the same
``(protocol, topology, seed)`` triple must produce the same digest on
every kernel — serial, ``REPRO_PARALLEL`` delivery, and sharded.  That
rules out one shared run-RNG (draw *order* would depend on scheduler
internals) and module-level entropy (flagged ``uses_rng`` and refused by
the shard kernel outright).

Instead every node gets its own stream, derived as

    stream_seed = blake2b(run_seed || node_id)

so a node's coin flips depend only on the run seed, its identity and how
many times *it* has drawn — never on interleaving.  Both the serial
kernel and every shard derive streams through this one function, which
is what makes sharded runs of ctx-RNG protocols digest-identical to
serial runs (see ``_refuse_unshardable_protocol`` in
:mod:`repro.sim.shard` for the gating that relies on this).

Protocols reach their stream through :meth:`NodeContext.rng`; they must
never import entropy modules directly (the flow analyzer's ``uses_rng``
scan catches that).
"""

from __future__ import annotations

import hashlib
import random

__all__ = ["node_stream", "node_stream_seed"]

#: Domain-separation tag so node streams can never collide with any other
#: blake2b-derived stream family in the repo (per-link fault streams key
#: differently, but cheap insurance beats a subtle future collision).
_DOMAIN = b"repro.node-stream.v1"


def node_stream_seed(run_seed: int, node_id: int) -> int:
    """The seed of node ``node_id``'s private stream under ``run_seed``.

    A 64-bit blake2b digest over the domain tag and both inputs in a
    self-delimiting encoding, so ``(1, 23)`` and ``(12, 3)`` cannot
    alias.  Stable across platforms and Python versions — fixture digests
    depend on it.
    """
    payload = b"%s|%d|%d" % (_DOMAIN, run_seed, node_id)
    digest = hashlib.blake2b(payload, digest_size=8).digest()
    return int.from_bytes(digest, "big")


def node_stream(run_seed: int, node_id: int) -> random.Random:
    """A fresh, independently-seeded ``random.Random`` for one node."""
    return random.Random(node_stream_seed(run_seed, node_id))
