"""The discrete-event simulator: kernel, links, delays, runtime, metrics."""
