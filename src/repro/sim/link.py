"""FIFO link channels.

Section 2: messages on a link "arrive ... in the order sent and are not
lost".  A :class:`Channel` is one *direction* of one link; it remembers the
last scheduled arrival and clamps each new arrival to be no earlier, so FIFO
holds for any delay model (including adversarial ones that would otherwise
reorder).  Ties at the same instant are resolved by the scheduler's sequence
counter, which also preserves send order.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.core.messages import Message
from repro.sim.delays import DelayModel


@dataclass(slots=True)
class Channel:
    """One direction of a bidirectional link."""

    sender: int
    receiver: int
    last_arrival: float = field(default=0.0)
    messages_sent: int = field(default=0)
    #: Fault-layer tallies (always zero without an installed FaultPlan).
    #: ``messages_sent`` counts sends, so a dropped message is still "sent"
    #: — the drop is the delta between sent and delivered.
    messages_dropped: int = field(default=0)
    messages_duplicated: int = field(default=0)

    def arrival_time(
        self,
        message: Message,
        send_time: float,
        delays: DelayModel,
        rng: random.Random,
    ) -> float:
        """Compute (and record) the FIFO-consistent arrival time."""
        latency = delays.latency(self.sender, self.receiver, message, send_time, rng)
        gap = delays.gap(self.sender, self.receiver, message, send_time, rng)
        arrival = max(send_time + latency, self.last_arrival + gap)
        if arrival < self.last_arrival:  # pragma: no cover - defensive
            arrival = self.last_arrival
        self.last_arrival = arrival
        self.messages_sent += 1
        return arrival


class ChannelTable:
    """Lazily materialised channels for a complete graph.

    A complete network has N(N-1) directed channels; most runs touch only a
    small fraction (that is the whole point of message-optimal protocols), so
    channels are created on first use.
    """

    def __init__(self) -> None:
        self._channels: dict[tuple[int, int], Channel] = {}

    def channel(self, sender: int, receiver: int) -> Channel:
        """The directed channel ``sender -> receiver``."""
        key = (sender, receiver)
        found = self._channels.get(key)
        if found is None:
            found = Channel(sender, receiver)
            self._channels[key] = found
        return found

    @property
    def touched(self) -> int:
        """Number of directed channels that carried at least one message."""
        return sum(1 for c in self._channels.values() if c.messages_sent)

    @property
    def max_load(self) -> int:
        """Messages on the busiest directed channel.

        The congestion story of Section 4 in one number: under AG85 a
        hotspot's owner link carries Θ(N) forwarded claims; ℰ's flow
        control caps it.
        """
        return max(
            (c.messages_sent for c in self._channels.values()), default=0
        )
