"""Deterministic link-fault injection.

The paper's model (Section 2) assumes reliable FIFO links; Section 4 relaxes
only *initial site failures*.  Everything beyond that — message loss,
duplication, reordering, transient partitions, mid-run crash-stop — is the
adversary this module lets you script.  A :class:`FaultPlan` is a pure,
seeded *specification*; the network binds it per run, so the same plan plus
the same seed reproduces the same faults byte for byte (the determinism
contract of ``docs/faults.md``).

Design constraints, in order:

* **Determinism.**  Each directed link owns a dedicated RNG stream seeded as
  ``f"{seed}:{src}:{dst}"`` (the same process-stable idiom the fuzzer uses),
  and the per-send draw order is fixed regardless of outcome.  Fault draws
  never touch the network's delay RNG, so installing a plan with all rates
  zero leaves an election byte-identical to a fault-free run.

* **Zero cost when off.**  The network tests ``self._faults is not None``
  once per send — the same discipline as tracing.  No plan, no overhead.

* **FIFO stays the baseline.**  Drops and duplicates are decided *after* the
  FIFO arrival is computed, and jitter is added on top of it without
  advancing the channel's FIFO clock; so jitter yields *bounded* reordering
  (at most ``jitter`` time units past the in-order arrival), the only kind a
  retransmission overlay can mask with finite buffers.

Crash-stop scheduling (``FaultPlan.crashes``) generalises the network's
older ``crash_schedule`` argument: both feed the same mechanism, and the
plan's entries win on conflicts being rejected loudly.
"""

from __future__ import annotations

import random
from collections.abc import Iterable, Mapping
from dataclasses import dataclass, field

from repro.core.errors import SimulationError

#: ``judge`` verdict reasons for a dropped message (trace detail).
DROP_LOSS = "loss"
DROP_PARTITION = "partition"


@dataclass(frozen=True, slots=True)
class LinkFaults:
    """Fault rates for one directed link (or the plan-wide default).

    * ``drop`` — probability a message vanishes in flight;
    * ``duplicate`` — probability the link delivers one extra copy;
    * ``jitter`` — maximum extra delay, uniform in ``[0, jitter]``, added
      *after* the FIFO arrival is fixed: messages may overtake each other by
      at most ``jitter`` time units (bounded reordering).
    """

    drop: float = 0.0
    duplicate: float = 0.0
    jitter: float = 0.0

    def validate(self) -> None:
        """Reject rates outside the model; ``drop=1.0`` is disallowed
        because a link that loses everything is a partition — say so."""
        if not 0.0 <= self.drop < 1.0:
            raise SimulationError(
                f"drop rate must be in [0, 1), got {self.drop} "
                "(use a Partition for a dead link)"
            )
        if not 0.0 <= self.duplicate <= 1.0:
            raise SimulationError(
                f"duplicate rate must be in [0, 1], got {self.duplicate}"
            )
        if self.jitter < 0.0:
            raise SimulationError(f"jitter must be >= 0, got {self.jitter}")

    @property
    def quiet(self) -> bool:
        """True when this spec injects nothing."""
        return not (self.drop or self.duplicate or self.jitter)


@dataclass(frozen=True, slots=True)
class Partition:
    """A transient one-way cut: ``src -> dst`` drops everything sent during
    ``[start, end)``.  Keyed by node *identities* (like channels and delay
    models), not positions.  For a symmetric cut add both directions, or use
    :func:`isolate`."""

    src: int
    dst: int
    start: float
    end: float

    def validate(self) -> None:
        """Reject empty or negative-time windows."""
        if self.start < 0 or self.end <= self.start:
            raise SimulationError(
                f"partition window [{self.start}, {self.end}) is empty "
                "or starts before t=0"
            )


def isolate(
    victim: int, peers: Iterable[int], start: float, end: float
) -> tuple[Partition, ...]:
    """Partitions cutting ``victim`` off from ``peers`` in both directions."""
    cuts: list[Partition] = []
    for peer in peers:
        if peer == victim:
            continue
        cuts.append(Partition(victim, peer, start, end))
        cuts.append(Partition(peer, victim, start, end))
    return tuple(cuts)


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, per-link specification of link faults and crashes.

    ``drop``/``duplicate``/``jitter`` are the plan-wide default rates;
    ``per_link`` overrides them for specific directed links (keyed by
    ``(src_id, dst_id)``).  ``partitions`` are transient one-way cuts and
    ``crashes`` maps node *positions* to crash-stop times (the generalised
    form of the network's ``crash_schedule``).

    The plan itself is immutable and reusable; each run binds it with
    :meth:`bind`, which owns the RNG streams, so two runs from one plan see
    identical fault sequences.
    """

    seed: int = 0
    drop: float = 0.0
    duplicate: float = 0.0
    jitter: float = 0.0
    per_link: Mapping[tuple[int, int], LinkFaults] = field(default_factory=dict)
    partitions: tuple[Partition, ...] = ()
    crashes: Mapping[int, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.default_faults.validate()
        for key, faults in self.per_link.items():
            if len(key) != 2:
                raise SimulationError(f"per_link key {key!r} is not (src, dst)")
            faults.validate()
        for cut in self.partitions:
            cut.validate()
        for position, time in self.crashes.items():
            if time < 0:
                raise SimulationError(
                    f"crash time for position {position} is negative: {time}"
                )

    @property
    def default_faults(self) -> LinkFaults:
        """The plan-wide rates as a :class:`LinkFaults`."""
        return LinkFaults(self.drop, self.duplicate, self.jitter)

    def bind(self) -> "ActiveFaultPlan":
        """Fresh per-run runtime state (RNG streams start from scratch)."""
        return ActiveFaultPlan(self)

    def describe(self) -> str:
        """One-line summary naming only the active dials."""
        parts = [f"seed={self.seed}"]
        if self.drop:
            parts.append(f"drop={self.drop}")
        if self.duplicate:
            parts.append(f"dup={self.duplicate}")
        if self.jitter:
            parts.append(f"jitter={self.jitter}")
        if self.per_link:
            parts.append(f"links={len(self.per_link)}")
        if self.partitions:
            parts.append(f"cuts={len(self.partitions)}")
        if self.crashes:
            parts.append(f"crashes={len(self.crashes)}")
        return f"FaultPlan({', '.join(parts)})"


class _LinkState:
    """Runtime fault state for one directed link."""

    __slots__ = ("rng", "drop", "duplicate", "jitter", "windows")

    def __init__(
        self,
        seed: int,
        src: int,
        dst: int,
        faults: LinkFaults,
        windows: tuple[tuple[float, float], ...],
    ) -> None:
        self.rng = random.Random(f"{seed}:{src}:{dst}")
        self.drop = faults.drop
        self.duplicate = faults.duplicate
        self.jitter = faults.jitter
        self.windows = windows


class ActiveFaultPlan:
    """One run's view of a :class:`FaultPlan`: owns the per-link RNGs.

    The network calls :meth:`judge` once per send; the verdict says whether
    the message survives, how many duplicate copies to schedule, and how much
    jitter to add to each arrival.
    """

    __slots__ = ("plan", "_links", "_windows_by_link")

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._links: dict[tuple[int, int], _LinkState] = {}
        windows: dict[tuple[int, int], list[tuple[float, float]]] = {}
        for cut in plan.partitions:
            windows.setdefault((cut.src, cut.dst), []).append(
                (cut.start, cut.end)
            )
        self._windows_by_link = {
            key: tuple(sorted(spans)) for key, spans in windows.items()
        }

    def _link(self, src: int, dst: int) -> _LinkState:
        key = (src, dst)
        state = self._links.get(key)
        if state is None:
            plan = self.plan
            faults = plan.per_link.get(key) or plan.default_faults
            state = _LinkState(
                plan.seed, src, dst, faults,
                self._windows_by_link.get(key, ()),
            )
            self._links[key] = state
        return state

    def judge(
        self, src: int, dst: int, now: float
    ) -> tuple[int, float, float, str | None]:
        """Decide the fate of one message on ``src -> dst`` sent at ``now``.

        Returns ``(copies, jitter, dup_jitter, reason)``:

        * ``copies`` — 0 (dropped), 1 (delivered) or 2 (duplicated);
        * ``jitter`` — extra delay for the primary copy;
        * ``dup_jitter`` — extra delay for the duplicate (when ``copies=2``);
        * ``reason`` — ``None`` unless dropped ("loss" or "partition").

        Partition checks are time-based and consume no randomness; the RNG
        draw order for the rates is fixed (drop, duplicate, jitter, then the
        duplicate's jitter) so every link stream is reproducible
        independently of outcomes.
        """
        state = self._link(src, dst)
        for start, end in state.windows:
            if start <= now < end:
                return 0, 0.0, 0.0, DROP_PARTITION
        rng = state.rng
        dropped = state.drop > 0.0 and rng.random() < state.drop
        copies = 1
        if state.duplicate > 0.0 and rng.random() < state.duplicate:
            copies = 2
        jitter = dup_jitter = 0.0
        if state.jitter > 0.0:
            jitter = rng.random() * state.jitter
            if copies == 2:
                dup_jitter = rng.random() * state.jitter
        if dropped:
            return 0, 0.0, 0.0, DROP_LOSS
        return copies, jitter, dup_jitter, None
