"""Event primitives for the discrete-event kernel.

The kernel is a classic calendar queue: events are ``(time, tiebreak, seq)``
ordered, where ``seq`` is a global monotone counter.  The counter makes the
order *total* and therefore the whole simulation deterministic: two events at
the same instant always fire in the order they were scheduled.  Determinism
matters here because the benchmarks compare protocols run-for-run and the
property tests shrink counterexamples; a nondeterministic kernel would make
both useless.

Heap entries are *tuples*, not objects: ``(time, key, action, depth,
*payload)``.  Tuple comparison stops at ``key`` (unique), so the action is
never compared, and ``heapq`` sifts entries with C-level tuple comparisons
instead of calling a generated ``__lt__``.  :class:`Event` is a tuple
subclass adding named read access for handlers and tests; the network fast
path pushes plain tuples through :meth:`EventQueue.push_entry` and indexes
them directly.

``key`` packs the ``(tiebreak, seq)`` pair into one integer —
``seq + (tiebreak << 48)`` — so prioritised event classes (timers 1, wake
nudges -1, crashes -2) order ahead of or behind same-instant deliveries
without widening the entry or adding a comparison level to the heap sifts.
The encoding is exact while ``seq`` stays below 2**48 (the event budget caps
it around 5M), and the common case (tiebreak 0) keeps ``key == seq``, a
small int.  Deliveries dominate the heap, so the hot comparisons are the
same float-then-small-int pair the layout always had.

Entry layout (index constants below)::

    0 time      fire time (float)
    1 key       seq + (tiebreak << 48); orders (tiebreak, seq), total
    2 action    callable invoked as ``action(entry)``
    3 depth     causal depth (longest message chain leading here)
    4+          optional payload slots (the delivery fast path packs
                ``far, far_port, message, sender_id`` here)
"""

from __future__ import annotations

import heapq
from operator import itemgetter
from typing import Callable

#: Indexes into a heap entry (see module docstring).
TIME, KEY, ACTION, DEPTH = range(4)

#: Bit position of ``tiebreak`` inside the packed ordering key.  ``seq``
#: occupies the low 48 bits; the kernel's event budget keeps it far below
#: 2**48, so the packing is exact.
TIEBREAK_SHIFT = 48
_SEQ_MASK = (1 << TIEBREAK_SHIFT) - 1


class Event(tuple):
    """A scheduled action, as an ordered tuple with named read access.

    Ordering is by ``(time, tiebreak, seq)`` via the packed key (see the
    module docstring).  ``tiebreak`` lets callers prioritise classes of
    simultaneous events (e.g. deliveries before wake nudges); most callers
    leave it 0.  ``action`` takes the event itself so handlers can read the
    fire time and causal depth.
    """

    __slots__ = ()

    def __new__(
        cls,
        time: float,
        tiebreak: int,
        seq: int,
        action: Callable[["Event"], None],
        depth: int = 0,
    ) -> "Event":
        if tiebreak:
            seq += tiebreak << TIEBREAK_SHIFT
        return tuple.__new__(cls, (time, seq, action, depth))

    time = property(itemgetter(TIME))
    #: The packed ordering key; :attr:`seq` and :attr:`tiebreak` unpack it.
    key = property(itemgetter(KEY))
    action = property(itemgetter(ACTION))
    #: Length of the longest message chain leading to this event.  Used to
    #: report the "ideal time" (causal depth) metric alongside simulated time.
    depth = property(itemgetter(DEPTH))

    @property
    def seq(self) -> int:
        """Scheduling order (the low bits of the packed key)."""
        return self[KEY] & _SEQ_MASK

    @property
    def tiebreak(self) -> int:
        """Class priority at equal times (the high bits of the packed key)."""
        return self[KEY] >> TIEBREAK_SHIFT


class EventQueue:
    """A deterministic min-heap of event entries.

    ``heap`` is the raw underlying list; the scheduler's run loop pops from
    it directly to keep the per-event cost at a few C calls.
    """

    __slots__ = ("heap", "_seq")

    def __init__(self) -> None:
        self.heap: list[tuple] = []
        self._seq = 0

    def __len__(self) -> int:
        return len(self.heap)

    def __bool__(self) -> bool:
        return bool(self.heap)

    def push(
        self,
        time: float,
        action: Callable[[Event], None],
        *,
        tiebreak: int = 0,
        depth: int = 0,
    ) -> Event:
        """Schedule ``action`` at ``time`` and return the created event."""
        event = Event(time, tiebreak, self._seq, action, depth)
        self._seq += 1
        heapq.heappush(self.heap, event)
        return event

    def push_entry(
        self,
        time: float,
        action: Callable[[tuple], None],
        depth: int,
        payload: tuple,
        tiebreak: int = 0,
    ) -> None:
        """Kernel fast path: push a plain-tuple entry carrying ``payload``.

        The payload rides in the entry itself (slots 4+), so the hot send
        path allocates exactly one tuple per message -- no :class:`Event`
        object and no per-message closure.  ``tiebreak`` is positional-after
        -payload so the hot call sites stay four-argument; timers pass 1 so
        that same-instant deliveries (and their acks) beat timeouts.
        """
        key = self._seq
        self._seq = key + 1
        if tiebreak:
            key += tiebreak << TIEBREAK_SHIFT
        heapq.heappush(self.heap, (time, key, action, depth) + payload)

    def pop(self) -> Event:
        """Remove and return the earliest event."""
        return heapq.heappop(self.heap)

    def pop_until(self, horizon: float) -> list[tuple]:
        """Batch-pop every entry with ``time < horizon``, in fire order.

        The sharded kernel's window loop drains all currently-due entries
        in one call instead of interleaving per-event heap peeks with its
        sorted delivery list; entries pushed *after* the drain (a handler
        arming a timer inside the window) still sit on the heap and are
        picked up by the loop's per-event check.  Returns ``[]`` without
        touching the heap when nothing is due — the common case for
        protocols that never set timers.
        """
        heap = self.heap
        if not heap or heap[0][0] >= horizon:
            return []
        heappop = heapq.heappop
        due: list[tuple] = []
        append = due.append
        while heap and heap[0][0] < horizon:
            append(heappop(heap))
        return due

    def peek_time(self) -> float:
        """Time of the earliest pending event (queue must be non-empty)."""
        return self.heap[0][TIME]
