"""Event primitives for the discrete-event kernel.

The kernel is a classic calendar queue: events are ``(time, tiebreak, seq)``
ordered, where ``seq`` is a global monotone counter.  The counter makes the
order *total* and therefore the whole simulation deterministic: two events at
the same instant always fire in the order they were scheduled.  Determinism
matters here because the benchmarks compare protocols run-for-run and the
property tests shrink counterexamples; a nondeterministic kernel would make
both useless.

Heap entries are *tuples*, not objects: ``(time, tiebreak, seq, action,
depth, *payload)``.  Tuple comparison stops at ``seq`` (unique), so the
action is never compared, and ``heapq`` sifts entries with C-level tuple
comparisons instead of calling a generated ``__lt__``.  :class:`Event` is a
tuple subclass adding named read access for handlers and tests; the network
fast path pushes plain tuples through :meth:`EventQueue.push_entry` and
indexes them directly.

Entry layout (index constants below)::

    0 time      fire time (float)
    1 tiebreak  class priority at equal times (deliveries 0, wakes -1, ...)
    2 seq       global monotone counter -- makes the order total
    3 action    callable invoked as ``action(entry)``
    4 depth     causal depth (longest message chain leading here)
    5+          optional payload slots (the delivery fast path packs
                ``far, far_port, message, sender_id`` here)
"""

from __future__ import annotations

import heapq
from operator import itemgetter
from typing import Callable

#: Indexes into a heap entry (see module docstring).
TIME, TIEBREAK, SEQ, ACTION, DEPTH = range(5)


class Event(tuple):
    """A scheduled action, as an ordered tuple with named read access.

    Ordering is by ``(time, tiebreak, seq)``.  ``tiebreak`` lets callers
    prioritise classes of simultaneous events (e.g. deliveries before wake
    nudges); most callers leave it 0.  ``action`` takes the event itself so
    handlers can read the fire time and causal depth.
    """

    __slots__ = ()

    def __new__(
        cls,
        time: float,
        tiebreak: int,
        seq: int,
        action: Callable[["Event"], None],
        depth: int = 0,
    ) -> "Event":
        return tuple.__new__(cls, (time, tiebreak, seq, action, depth))

    time = property(itemgetter(TIME))
    tiebreak = property(itemgetter(TIEBREAK))
    seq = property(itemgetter(SEQ))
    action = property(itemgetter(ACTION))
    #: Length of the longest message chain leading to this event.  Used to
    #: report the "ideal time" (causal depth) metric alongside simulated time.
    depth = property(itemgetter(DEPTH))


class EventQueue:
    """A deterministic min-heap of event entries.

    ``heap`` is the raw underlying list; the scheduler's run loop pops from
    it directly to keep the per-event cost at a few C calls.
    """

    __slots__ = ("heap", "_seq")

    def __init__(self) -> None:
        self.heap: list[tuple] = []
        self._seq = 0

    def __len__(self) -> int:
        return len(self.heap)

    def __bool__(self) -> bool:
        return bool(self.heap)

    def push(
        self,
        time: float,
        action: Callable[[Event], None],
        *,
        tiebreak: int = 0,
        depth: int = 0,
    ) -> Event:
        """Schedule ``action`` at ``time`` and return the created event."""
        event = Event(time, tiebreak, self._seq, action, depth)
        self._seq += 1
        heapq.heappush(self.heap, event)
        return event

    def push_entry(
        self,
        time: float,
        action: Callable[[tuple], None],
        depth: int,
        payload: tuple,
    ) -> None:
        """Kernel fast path: push a plain-tuple entry carrying ``payload``.

        The payload rides in the entry itself (slots 5+), so the hot send
        path allocates exactly one tuple per message -- no :class:`Event`
        object and no per-message closure.
        """
        heapq.heappush(
            self.heap, (time, 0, self._seq, action, depth) + payload
        )
        self._seq += 1

    def pop(self) -> Event:
        """Remove and return the earliest event."""
        return heapq.heappop(self.heap)

    def peek_time(self) -> float:
        """Time of the earliest pending event (queue must be non-empty)."""
        return self.heap[0][TIME]
