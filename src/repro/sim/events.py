"""Event primitives for the discrete-event kernel.

The kernel is a classic calendar queue: events are ``(time, tiebreak, seq)``
ordered, where ``seq`` is a global monotone counter.  The counter makes the
order *total* and therefore the whole simulation deterministic: two events at
the same instant always fire in the order they were scheduled.  Determinism
matters here because the benchmarks compare protocols run-for-run and the
property tests shrink counterexamples; a nondeterministic kernel would make
both useless.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable


@dataclass(frozen=True, slots=True, order=True)
class Event:
    """A scheduled action.

    Ordering is by ``(time, tiebreak, seq)``.  ``tiebreak`` lets callers
    prioritise classes of simultaneous events (e.g. deliveries before wake
    nudges); most callers leave it 0.  ``action`` takes the event itself so
    handlers can read the fire time and causal depth.
    """

    time: float
    tiebreak: int
    seq: int
    action: Callable[["Event"], None] = field(compare=False)
    #: Length of the longest message chain leading to this event.  Used to
    #: report the "ideal time" (causal depth) metric alongside simulated time.
    depth: int = field(compare=False, default=0)


class EventQueue:
    """A deterministic min-heap of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._seq = 0

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def push(
        self,
        time: float,
        action: Callable[[Event], None],
        *,
        tiebreak: int = 0,
        depth: int = 0,
    ) -> Event:
        """Schedule ``action`` at ``time`` and return the created event."""
        event = Event(time, tiebreak, self._seq, action, depth)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event:
        """Remove and return the earliest event."""
        return heapq.heappop(self._heap)

    def peek_time(self) -> float:
        """Time of the earliest pending event (queue must be non-empty)."""
        return self._heap[0].time
