"""The discrete-event scheduler.

A thin, deterministic loop over :class:`~repro.sim.events.EventQueue` with a
virtual clock and a hard event budget.  The budget turns protocol livelocks
into loud :class:`~repro.core.errors.LivelockError` failures instead of hung
test runs.

The run loop is the kernel's single hottest frame: it binds the heap and the
pop to locals, indexes entries positionally (see the entry layout in
:mod:`repro.sim.events`), and keeps the event counter in a local that is
flushed back on exit.
"""

from __future__ import annotations

import heapq
from typing import Callable

from repro.core.errors import LivelockError, SimulationError
from repro.sim.events import Event, EventQueue


class Scheduler:
    """Runs events in virtual-time order.

    The clock only moves forward.  Scheduling into the past is a kernel bug
    and raises :class:`SimulationError` immediately rather than silently
    reordering history.
    """

    def __init__(self, *, max_events: int = 5_000_000) -> None:
        self._queue = EventQueue()
        self._now = 0.0
        self._max_events = max_events
        self._processed = 0
        self._running = False

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events fired so far (for budget accounting)."""
        return self._processed

    @property
    def pending(self) -> int:
        """Number of events still queued."""
        return len(self._queue)

    @property
    def max_events(self) -> int:
        """The current event budget (see :meth:`set_max_events`)."""
        return self._max_events

    def set_max_events(self, budget: int) -> None:
        """Re-arm the livelock budget mid-run.

        Multi-scheduler runs (the sharded kernel) share ONE global budget:
        before each synchronization window the coordinator grants every
        shard ``events_processed + remaining_global``, so no single shard
        can burn more than the whole run has left.  Without this, k shards
        each carrying the full budget could overrun the serial limit k×
        before any of them raised.
        """
        if budget < self._processed:
            raise SimulationError(
                f"event budget {budget} is below the {self._processed} "
                "events already processed"
            )
        self._max_events = budget

    def advance_clock(self, time: float) -> None:
        """Move the virtual clock forward (window dispatch path).

        The sharded kernel dispatches window events from a sorted list
        rather than through :meth:`run`; it still owns this scheduler for
        timers and the clock, so the clock must follow dispatch.  Moving
        backwards is the same kernel bug it is everywhere else.
        """
        if time < self._now:
            raise SimulationError(
                f"attempt to move the clock backwards to t={time} "
                f"(now={self._now})"
            )
        self._now = time

    def consume_budget(self, count: int) -> None:
        """Account ``count`` externally dispatched events against the budget.

        Raises :class:`LivelockError` exactly like :meth:`run` does when
        the budget is exhausted; used by the sharded window loop to keep
        ``events_processed`` truthful for events it dispatched itself.
        """
        self._processed += count
        if self._processed > self._max_events:
            raise LivelockError(
                f"event budget of {self._max_events} exhausted at "
                f"t={self._now}; the protocol is livelocked"
            )

    def schedule_at(
        self,
        time: float,
        action: Callable[[Event], None],
        *,
        tiebreak: int = 0,
        depth: int = 0,
    ) -> Event:
        """Schedule ``action`` at absolute virtual time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"attempt to schedule an event at t={time} in the past "
                f"(now={self._now})"
            )
        return self._queue.push(time, action, tiebreak=tiebreak, depth=depth)

    def schedule_in(
        self,
        delay: float,
        action: Callable[[Event], None],
        *,
        tiebreak: int = 0,
        depth: int = 0,
    ) -> Event:
        """Schedule ``action`` after a non-negative ``delay``."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.schedule_at(
            self._now + delay, action, tiebreak=tiebreak, depth=depth
        )

    def schedule_payload(
        self,
        time: float,
        action: Callable[[tuple], None],
        depth: int,
        payload: tuple,
        tiebreak: int = 0,
    ) -> None:
        """Fast path: schedule ``action`` with ``payload`` packed in the entry.

        Used by the network's send path; one tuple allocation per message,
        no :class:`Event` wrapper, no closure.  ``action`` receives the raw
        entry and reads the payload from slots 4+.
        """
        if time < self._now:
            raise SimulationError(
                f"attempt to schedule an event at t={time} in the past "
                f"(now={self._now})"
            )
        self._queue.push_entry(time, action, depth, payload, tiebreak)

    def pop_due(self, horizon: float) -> list[tuple]:
        """Batch-pop every pending entry with ``time < horizon``, in order.

        The sharded window loop owns its own dispatch (it merges these
        entries with the window's delivery list), so unlike :meth:`run`
        this neither advances the clock nor touches the budget — the
        caller accounts for what it dispatches via :meth:`advance_clock`
        and :meth:`consume_budget`.
        """
        return self._queue.pop_until(horizon)

    def run(self, *, until: float | None = None) -> None:
        """Process events until the queue drains (or past ``until``).

        When ``until`` is given and the simulation pauses early (later
        events remain, or the queue drained before the horizon), the clock
        advances to ``until`` so ``now`` reflects the full simulated window
        rather than the last processed event.

        Raises :class:`LivelockError` when the event budget is exhausted,
        which in practice means a protocol is cycling messages forever.
        """
        if self._running:
            raise SimulationError("scheduler re-entered while running")
        self._running = True
        heap = self._queue.heap
        heappop = heapq.heappop
        max_events = self._max_events
        processed = self._processed
        try:
            if until is None:
                while heap:
                    entry = heappop(heap)
                    self._now = entry[0]
                    processed += 1
                    if processed > max_events:
                        raise LivelockError(
                            f"event budget of {max_events} exhausted at "
                            f"t={self._now}; the protocol is livelocked"
                        )
                    entry[2](entry)
            else:
                while heap and heap[0][0] <= until:
                    entry = heappop(heap)
                    self._now = entry[0]
                    processed += 1
                    if processed > max_events:
                        raise LivelockError(
                            f"event budget of {max_events} exhausted at "
                            f"t={self._now}; the protocol is livelocked"
                        )
                    entry[2](entry)
        finally:
            self._processed = processed
            self._running = False
        if until is not None and self._now < until:
            # The horizon was simulated in full: quiescence timestamps must
            # read ``until`` even though no event fired exactly there.
            self._now = min(until, heap[0][0]) if heap else until
