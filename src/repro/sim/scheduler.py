"""The discrete-event scheduler.

A thin, deterministic loop over :class:`~repro.sim.events.EventQueue` with a
virtual clock and a hard event budget.  The budget turns protocol livelocks
into loud :class:`~repro.core.errors.LivelockError` failures instead of hung
test runs.
"""

from __future__ import annotations

from typing import Callable

from repro.core.errors import LivelockError, SimulationError
from repro.sim.events import Event, EventQueue


class Scheduler:
    """Runs events in virtual-time order.

    The clock only moves forward.  Scheduling into the past is a kernel bug
    and raises :class:`SimulationError` immediately rather than silently
    reordering history.
    """

    def __init__(self, *, max_events: int = 5_000_000) -> None:
        self._queue = EventQueue()
        self._now = 0.0
        self._max_events = max_events
        self._processed = 0
        self._running = False

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events fired so far (for budget accounting)."""
        return self._processed

    @property
    def pending(self) -> int:
        """Number of events still queued."""
        return len(self._queue)

    def schedule_at(
        self,
        time: float,
        action: Callable[[Event], None],
        *,
        tiebreak: int = 0,
        depth: int = 0,
    ) -> Event:
        """Schedule ``action`` at absolute virtual time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"attempt to schedule an event at t={time} in the past "
                f"(now={self._now})"
            )
        return self._queue.push(time, action, tiebreak=tiebreak, depth=depth)

    def schedule_in(
        self,
        delay: float,
        action: Callable[[Event], None],
        *,
        tiebreak: int = 0,
        depth: int = 0,
    ) -> Event:
        """Schedule ``action`` after a non-negative ``delay``."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.schedule_at(
            self._now + delay, action, tiebreak=tiebreak, depth=depth
        )

    def run(self, *, until: float | None = None) -> None:
        """Process events until the queue drains (or past ``until``).

        Raises :class:`LivelockError` when the event budget is exhausted,
        which in practice means a protocol is cycling messages forever.
        """
        if self._running:
            raise SimulationError("scheduler re-entered while running")
        self._running = True
        try:
            while self._queue:
                if until is not None and self._queue.peek_time() > until:
                    break
                event = self._queue.pop()
                self._now = event.time
                self._processed += 1
                if self._processed > self._max_events:
                    raise LivelockError(
                        f"event budget of {self._max_events} exhausted at "
                        f"t={self._now}; the protocol is livelocked"
                    )
                event.action(event)
        finally:
            self._running = False
