"""Synchronous (round-based) execution view.

The paper twice contrasts its asynchronous bounds with the synchronous
world: AG85's synchronous protocol elects in O(log N) rounds, while
Corollary 5.1 pins asynchronous message-optimal election at Ω(N/log N)
time, "a loss in speed by a factor of N/(log N)²".

A synchronous network is the special case of the Section 2 model where
every message takes exactly one time unit and all base nodes wake together
at t = 0 — lock-step rounds.  :func:`run_synchronous` runs a protocol in
that regime, *verifies* the execution really was lock-step (every delivery
on an integer boundary), and reports the round count, which for protocol B
is the paper's synchronous O(log N) benchmark.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.errors import SimulationError
from repro.core.protocol import ElectionProtocol
from repro.core.results import ElectionResult
from repro.sim.delays import ConstantDelay
from repro.sim.network import Network


@dataclass(frozen=True)
class SynchronousResult:
    """An election result plus its round accounting."""

    result: ElectionResult
    #: rounds until the leader declared (= election time under unit delays).
    rounds: int

    @property
    def messages_total(self) -> int:
        return self.result.messages_total


def run_synchronous(
    protocol: ElectionProtocol, topology, *, trace: bool = False
) -> SynchronousResult:
    """Run ``protocol`` in lock-step rounds and verify the lock-step.

    All nodes wake spontaneously at t=0 and every message takes exactly one
    unit, so sends happen at integer instants and deliveries at the next
    integer — the classic synchronous model.  Raises
    :class:`SimulationError` if any event lands off-grid (which would mean
    the unit-delay schedule failed to be synchronous, e.g. a delay model
    leak).
    """
    network = Network(
        protocol, topology, delays=ConstantDelay(1.0), trace=True
    )
    result = network.run()
    for event in result.trace.events:
        if event.kind == "deliver" and not math.isclose(
            event.time, round(event.time)
        ):
            raise SimulationError(
                f"non-integral delivery at t={event.time}: the run was not "
                "synchronous"
            )
    if not trace:
        # Keep the result lightweight unless the caller wants the trace.
        import dataclasses

        from repro.sim.tracing import Tracer

        result = dataclasses.replace(result, trace=Tracer())
    rounds = int(round(result.election_time))
    return SynchronousResult(result, rounds)
