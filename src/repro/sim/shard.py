"""Sharded simulation kernel: conservative time-window synchronization.

The serial kernel (:mod:`repro.sim.network`) interprets one global event
heap; beyond ~10⁵ nodes that single loop is the bottleneck.  This module
partitions the node set across *shards* — each with its own
:class:`~repro.sim.scheduler.Scheduler`, channel table and metrics — and
runs them under **conservative time-window synchronization**:

* The *lookahead* ``L`` is the delay model's declared ``min_latency``.
  Every message sent at time ``t`` arrives no earlier than ``t + L``
  (the FIFO clamp and fault jitter only push arrivals later), so events
  inside a window ``[T, T + L)`` can never affect that same window.
* Each shard therefore executes its window events independently, buffering
  every send — intra- and inter-shard alike — instead of scheduling it.
* At the window barrier the coordinator globally orders the buffered
  sends, assigns each a global sequence key, and routes the batches to the
  destination shards as **packed integer/float arrays** (the fast lane;
  nested or tuple-carrying messages ride a pickled slow lane).

**Digest contract.**  A sharded run must be indistinguishable from the
serial run in every deterministic result field
(``tests/sim/determinism_cases.fingerprint``).  The serial kernel's total
event order is ``(time, tiebreak, seq)`` where ``seq`` is the global
scheduling order; the coordinator reconstructs exactly that order from
per-send *merge keys*:

* an event dispatched from a globally-keyed entry has rank
  ``(time, key)``;
* a timer fired at ``t`` set by an event of rank ``R`` as its ``i``-th
  timer has rank ``(t, TIMER_MARK, R, i)`` — ``TIMER_MARK`` exceeds every
  delivery key and is negative for none, so ranks of any two *distinct*
  events always compare without reaching ragged positions;
* the ``j``-th send of an event of rank ``R`` carries merge key
  ``R + (j,)``.

Sorting one window's sends by merge key reproduces the serial scheduling
order of those sends; assigning consecutive global keys in that order (the
counter persists across windows) reproduces the serial delivery order at
every destination.  Wake nudges and crashes get their global keys up
front, in the same plane order as the serial kernel (crashes < wakes <
deliveries < timers at equal times).

What is *not* supported sharded: delay models that consume the shared run
RNG (``UniformDelay`` — a global draw order cannot be reproduced
per-shard), models with no declared positive ``min_latency``, tracing, and
``until`` horizons.  Fault plans work unchanged: their per-directed-link
RNG streams are keyed by ``(seed, src, dst)`` and every link is owned by
exactly one (sender-side) shard, so draws are independent of execution
order by construction.

The livelock budget is **global**: before each window every shard is
granted only what remains of the whole run's ``max_events``, and the
coordinator re-checks the aggregate at each barrier — k shards can never
overrun the serial budget k×.
"""

from __future__ import annotations

import heapq
import os
import random
from array import array
from collections import Counter
from collections.abc import Callable, Mapping
from dataclasses import dataclass, fields as _dataclass_fields
from itertools import repeat
from time import perf_counter
from typing import Any

from repro.core import errors as _errors
from repro.core.errors import (
    ConfigurationError,
    LivelockError,
    ProtocolViolation,
    SimulationError,
)
from repro.core.messages import (
    MAX_INT_FIELDS,
    TYPE_TAG_BITS,
    Message,
    _word_bits,
    message_bits,
)
from repro.core.node import Node, NodeContext
from repro.core.protocol import ElectionProtocol
from repro.core.results import ElectionResult
from repro.harness.parallel import (
    ShmExchange,
    configured_processes,
    fork_context,
)
from repro.sim.delays import ConstantDelay, DelayModel
from repro.sim.events import TIEBREAK_SHIFT
from repro.sim.faults import FaultPlan
from repro.sim.link import Channel, ChannelTable
from repro.sim.metrics import MetricsCollector
from repro.sim.network import (
    SendPath,
    WakeupFactory,
    WakeupSchedule,
    merge_crash_schedule,
    resolve_wakeup,
    validate_failure_config,
)
from repro.sim.rng import node_stream
from repro.sim.scheduler import Scheduler
from repro.sim.tracing import Tracer
from repro.topology.complete import CompleteTopology

#: Rank marker for timer-sourced events; above every delivery key (< 2**48).
TIMER_MARK = 1 << TIEBREAK_SHIFT
#: Global key planes for the setup entries, mirroring the serial kernel's
#: tiebreaks (wake -1, crash -2).
_WAKE_BASE = -(1 << TIEBREAK_SHIFT)
_CRASH_BASE = -(2 << TIEBREAK_SHIFT)

#: 2-bit field tags in the packed fast lane.
_TAG_INT, _TAG_TRUE, _TAG_FALSE, _TAG_NONE = 0, 1, 2, 3
#: Fast-lane integer-array slots per record before the message fields.
_REC_HEAD = 9
#: Largest magnitude packed verbatim; wider ints take the slow lane.
_INT_LIMIT = 1 << 62

#: The engines a shard can run its window loop on (see ``_shard_class``).
ENGINES = ("interp", "vector")

# numpy is an optional accelerator for the vector engine's columnar decode;
# the pure-Python batch loop below it is byte-identical.  ``REPRO_NO_NUMPY``
# (any non-empty value) forces the fallback — the CI no-numpy leg and the
# fallback-equality tests use it; tests may also monkeypatch ``_np``.
try:
    import numpy as _np
except Exception:  # pragma: no cover - exercised by the no-numpy CI leg
    _np = None
if os.environ.get("REPRO_NO_NUMPY"):
    _np = None


# ---------------------------------------------------------------------------
# The packed-array message codec (the inter-shard fast lane).
# ---------------------------------------------------------------------------


class MessageCodec:
    """Packs flat protocol messages into integer lanes.

    A message is *flat* when every dataclass field is an ``int`` (not
    ``bool``), ``True``, ``False`` or ``None`` — which covers every hot
    protocol message in the library.  Flat messages cross shard boundaries
    as ``(type_id, tagword, int fields...)`` inside one ``array('q')``;
    everything else (overlay envelopes with nested messages, tuple fields)
    is relayed object-wise on the slow lane with identical semantics.

    The registry is built once in the coordinator **before** forking, so
    every worker inherits the same ``type_id`` assignment; ids are an
    encoding detail and never influence results.
    """

    def __init__(self) -> None:
        classes: list[type] = []
        seen: set[type] = set()
        stack: list[type] = [Message]
        while stack:
            for sub in stack.pop().__subclasses__():
                if sub not in seen:
                    seen.add(sub)
                    classes.append(sub)
                    stack.append(sub)
        classes.sort(key=lambda cls: (cls.__module__, cls.__qualname__))
        self._classes = classes
        self._type_ids = {cls: i for i, cls in enumerate(classes)}
        self._field_names = [
            tuple(f.name for f in _dataclass_fields(cls)) for cls in classes
        ]
        self._cache: dict[tuple, Message] = {}

    def pack(self, message: Message) -> tuple[int, int, list[int]] | None:
        """``(type_id, tagword, int fields)``, or None for the slow lane."""
        type_id = self._type_ids.get(type(message))
        if type_id is None:
            return None
        names = self._field_names[type_id]
        if len(names) > 30:  # tagword is 2 bits per field in one int
            return None
        tags = 0
        ints: list[int] = []
        shift = 0
        for name in names:
            value = getattr(message, name)
            if value is None:
                tags |= _TAG_NONE << shift
            elif value is True:
                tags |= _TAG_TRUE << shift
            elif value is False:
                tags |= _TAG_FALSE << shift
            elif type(value) is int and -_INT_LIMIT < value < _INT_LIMIT:
                ints.append(value)
            else:
                return None
            shift += 2
        return type_id, tags, ints

    def unpack(self, type_id: int, tags: int, ints: tuple[int, ...]) -> Message:
        """Rebuild (and memoise) the message for a packed record.

        Messages are immutable values, so destinations may share one
        instance across deliveries — the serial kernel already delivers
        the sender's single object to every recipient of a broadcast.
        """
        key = (type_id, tags, ints)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        names = self._field_names[type_id]
        values: list[Any] = []
        next_int = iter(ints).__next__
        shift = 0
        for _ in names:
            tag = (tags >> shift) & 3
            if tag == _TAG_INT:
                values.append(next_int())
            elif tag == _TAG_TRUE:
                values.append(True)
            elif tag == _TAG_FALSE:
                values.append(False)
            else:
                values.append(None)
            shift += 2
        message = self._classes[type_id](*values)
        if len(self._cache) < 4096:
            self._cache[key] = message
        return message

    def vector_tables(self) -> "_VectorTables":
        """The compiled per-type helpers the vector engine dispatches with.

        Built lazily (forked workers compile their own copy from the
        inherited registry — function objects would not survive a pickle
        anyway) and cached on the codec.
        """
        tables = getattr(self, "_vector_tables", None)
        if tables is None:
            tables = self._vector_tables = _VectorTables(self)
        return tables


def _compile_packer(cls: type, names: tuple[str, ...]):
    """Exec-compile one class's pack function (None: always slow lane).

    The generated function unrolls :meth:`MessageCodec.pack`'s field loop
    into straight-line attribute reads with literal tag shifts — same
    verdicts, same ``(tags, ints)`` for every input, no per-field loop or
    ``getattr`` dispatch.  SNIPPETS.md Snippet 3 (migen) is the grounding:
    compile the state machine's hot interpretation away.
    """
    if len(names) > 30:  # tagword is 2 bits per field in one int
        return None
    lines = [
        "def _pack(m, _LIM=_LIM):",
        "    tags = 0",
        "    ints = []",
        "    ap = ints.append",
    ]
    for i, name in enumerate(names):
        shift = 2 * i
        lines += [
            f"    v = m.{name}",
            "    if type(v) is int:",
            "        if -_LIM < v < _LIM:",
            "            ap(v)",
            "        else:",
            "            return None",
            "    elif v is None:",
            f"        tags |= {_TAG_NONE << shift}",
            "    elif v is True:",
            f"        tags |= {_TAG_TRUE << shift}",
            "    elif v is False:",
            f"        tags |= {_TAG_FALSE << shift}",
            "    else:",
            "        return None",
        ]
    lines.append("    return tags, ints")
    namespace: dict[str, Any] = {"_LIM": _INT_LIMIT}
    exec("\n".join(lines), namespace)  # noqa: S102 - trusted codegen
    return namespace["_pack"]


class _VectorTables:
    """Compiled per-type helpers shared by every :class:`_VectorShard`.

    ``pack_fns`` maps message classes to ``(type_id, compiled packer)``;
    ``builders`` compiles, per ``(type_id, tagword)``, a constructor call
    with the tag-constant fields (None/True/False) baked in as literals so
    decode only feeds it the int fields; ``bits`` memoises the O(log N)
    audit per ``(type_id, tagword)`` — for a *flat* message the bit count
    depends on the field values only through the tagword.
    """

    __slots__ = ("classes", "field_names", "pack_fns", "builders", "bits")

    def __init__(self, codec: MessageCodec) -> None:
        self.classes = codec._classes
        self.field_names = codec._field_names
        self.pack_fns: dict[type, tuple[int, Any]] = {}
        for type_id, (cls, names) in enumerate(
            zip(codec._classes, codec._field_names)
        ):
            fn = _compile_packer(cls, names)
            if fn is not None:
                self.pack_fns[cls] = (type_id, fn)
        self.builders: dict[tuple[int, int], Any] = {}
        self.bits: dict[tuple[int, int], int] = {}

    def builder(self, type_id: int, tags: int):
        """The compiled ``fields -> message`` constructor for one tagword."""
        key = (type_id, tags)
        fn = self.builders.get(key)
        if fn is None:
            values = []
            next_int = 0
            for i in range(len(self.field_names[type_id])):
                tag = (tags >> (2 * i)) & 3
                if tag == _TAG_INT:
                    values.append(f"f[{next_int}]")
                    next_int += 1
                elif tag == _TAG_TRUE:
                    values.append("True")
                elif tag == _TAG_FALSE:
                    values.append("False")
                else:
                    values.append("None")
            source = f"def _build(f, _cls=_cls):\n    return _cls({', '.join(values)})"
            namespace: dict[str, Any] = {"_cls": self.classes[type_id]}
            exec(source, namespace)  # noqa: S102 - trusted codegen
            fn = self.builders[key] = namespace["_build"]
        return fn


def _compile_send(shard: "_VectorShard", cls: type):
    """Compile the fully-fused fast-path send for one message class.

    The vector engine's deepest application of the compile-don't-interpret
    idea: for an all-int flat message the *entire* send pipeline — port
    check, O(log N) bit audit, per-type tally, wiring lookup, FIFO clamp
    and record packing — reduces to straight-line code whose per-run
    constants (``n``, shard count, port count, constant latency, the
    audited bit size, the packed record head) are baked in as literals.
    One compiled frame per send replaces five interpreted ones.

    Field values that fall outside the fast envelope (wide ints, bools,
    ``None``), timer-sourced ranks, fault plans and invalid ports all fall
    through to :meth:`_VectorShard._transmit_general`, whose side effects
    (and exceptions) are identical to the interp engine's.
    """
    tables = shard._tables
    entry = tables.pack_fns.get(cls)
    type_id = shard.codec._type_ids.get(cls)
    names = tables.field_names[type_id] if type_id is not None else ()
    if entry is None or len(names) > MAX_INT_FIELDS:
        # Unpackable or audit-ineligible classes stay on the general path.
        return _VectorShard._transmit_general
    # The per-class tally lives in a one-slot list baked into the compiled
    # function (folded into ``_type_counts`` by ``finish``), replacing a
    # dict get+set per send with one indexed increment.
    cell = shard._class_cells.setdefault(cls, [0])
    cfg = shard.cfg
    n = cfg.topology.n
    bits = TYPE_TAG_BITS + _word_bits(n) * len(names)
    reads = [f"    v{i} = m.{name}" for i, name in enumerate(names)]
    guards = [
        f"type(v{i}) is int and -_LIM < v{i} < _LIM"
        for i in range(len(names))
    ]
    cond = "\n            and ".join(
        [
            "self._faults is None",
            "ce is not None",
            f"0 <= port < {cfg.topology.num_ports}",
        ]
        + guards
    )
    if getattr(cfg.topology, "_cyclic", False):
        wiring = [
            f"        far = position + port + 1",
            f"        if far >= {n}:",
            f"            far -= {n}",
            f"        far_port = {n - 2} - port",
        ]
    else:
        wiring = [
            "        topology = self.topology",
            "        far = topology.neighbor(position, port)",
            "        far_port = topology.reverse_port(position, port)",
        ]
    const_latency = (
        cfg.delays.delay
        if type(cfg.delays) is ConstantDelay
        and type(cfg.delays).gap is DelayModel.gap
        else None
    )
    if const_latency is not None:
        arrival = [
            f"        arrival = self.scheduler._now + {const_latency!r}",
            "        last = channel.last_arrival",
            "        if arrival < last:",
            "            arrival = last",
            "        channel.last_arrival = arrival",
            "        channel.messages_sent += 1",
        ]
    else:
        arrival = [
            "        arrival = channel.arrival_time(",
            "            m, self.scheduler._now, self.delays, self.rng",
            "        )",
        ]
    record = ", ".join(
        ["ce[1]", "idx", "far", "far_port", "self._current_depth + 1",
         "sender_id", str(type_id), "0", str(len(names))]
        + [f"v{i}" for i in range(len(names))]
    )
    lines = [
        "def _send(self, position, port, m, _LIM=_LIM, _cnt=_cnt):",
        "    ce = self._current_entry",
        *reads,
        f"    if ({cond}):",
        *wiring,
        f"        self._messages_total += 1",
        f"        self._bits_total += {bits}",
        "        _cnt[0] += 1",
        "        ids = self._ids",
        "        sender_id = ids[position]",
        "        far_id = ids[far]",
        "        link = (sender_id, far_id)",
        "        channel = self._chan_map.get(link)",
        "        if channel is None:",
        "            # Inline the lazy table's creating lookup (complete",
        "            # graphs touch most channels exactly once).",
        "            channel = self._chan_map[link] = _Channel(",
        "                sender_id, far_id",
        "            )",
        *arrival,
        "        idx = self._send_seq",
        "        self._send_seq = idx + 1",
        f"        dest = far * {cfg.shards} // {n}",
        "        outl = self._outl",
        "        buf = outl[dest]",
        "        if buf is None:",
        "            buf = outl[dest] = _OutBuffer()",
        "        buf.tap(ce[0])",
        "        buf.tap(arrival)",
        "        buf.oap(len(buf.ints))",
        f"        buf.iex(({record}))",
        "        return",
        "    self._transmit_general(position, port, m)",
    ]
    namespace: dict[str, Any] = {
        "_LIM": _INT_LIMIT,
        "_cnt": cell,
        "_Channel": Channel,
        "_OutBuffer": _OutBuffer,
    }
    exec("\n".join(lines), namespace)  # noqa: S102 - trusted codegen
    return namespace["_send"]


class _OutBuffer:
    """One window's buffered sends from one shard to one destination shard."""

    __slots__ = ("times", "ints", "offs", "slow", "tap", "iex", "oap")

    def __init__(self) -> None:
        #: Fast lane, two doubles per record: (source time, arrival time).
        self.times = array("d")
        #: Fast lane, variable stride: ``src_key, send_idx, dest_pos,
        #: far_port, depth, sender_id, type_id, tagword, nfields, fields...``
        self.ints = array("q")
        #: Record start offsets into ``ints`` — the side array that lets
        #: the router and the vector engine address the variable-stride
        #: records columnarly instead of walking them one by one.
        self.offs = array("q")
        #: Slow lane: ``(merge_key, arrival, dest_pos, far_port, depth,
        #: sender_id, message)`` tuples.
        self.slow: list[tuple] = []
        # Pre-bound mutators for the vector engine's fused send: appending
        # through these skips two attribute walks per lane per send.
        self.tap = self.times.append
        self.iex = self.ints.extend
        self.oap = self.offs.append


# ---------------------------------------------------------------------------
# The run configuration (inherited by forked workers, never pickled).
# ---------------------------------------------------------------------------


@dataclass
class _RunConfig:
    protocol: ElectionProtocol
    topology: CompleteTopology
    delays: DelayModel
    failed_positions: frozenset[int]
    crash_schedule: dict[int, float]
    faults: FaultPlan | None
    seed: int
    max_events: int
    shards: int
    collect_snapshots: bool
    #: Window-loop implementation, one of :data:`ENGINES`.
    engine: str
    codec: MessageCodec
    #: Per-shard initial entries: ``(time, global_key, position)``.
    wakes: list[list[tuple[float, int, int]]]
    crashes: list[list[tuple[float, int, int]]]


def _shard_bounds(n: int, shards: int, index: int) -> tuple[int, int]:
    """Positions owned by shard ``index``: ``shard_of(p) = p * shards // n``."""
    lo = (index * n + shards - 1) // shards
    hi = ((index + 1) * n + shards - 1) // shards
    return lo, hi


class _ShardContext(NodeContext):
    """The capability handle handed to one node of one shard.

    Mirrors the serial ``_BoundContext`` exactly, except that sends are
    buffered at the window barrier instead of scheduled, and tracing is a
    no-op (sharded runs refuse ``trace=True`` up front).
    """

    def __init__(self, shard: "_Shard", position: int) -> None:
        topology = shard.topology
        self._shard = shard
        self._position = position
        self.node_id = topology.id_at(position)
        self.n = topology.n
        self.num_ports = topology.num_ports
        self.has_sense_of_direction = topology.sense_of_direction
        self._rng: random.Random | None = None

    def send(self, port: int, message: Message) -> None:  # noqa: D102
        self._shard._transmit(self._position, port, message)

    def port_label(self, port: int) -> int | None:  # noqa: D102
        return self._shard.topology.label(self._position, port)

    def port_with_label(self, distance: int) -> int:  # noqa: D102
        return self._shard.topology.port_with_label(self._position, distance)

    def now(self) -> float:  # noqa: D102
        return self._shard.scheduler.now

    def declare_leader(self) -> None:  # noqa: D102
        self._shard._on_leader_declared(self._position)

    def set_timer(self, delay: float, callback: Callable[[], None]) -> None:
        """Arm a one-shot timer; see :meth:`NodeContext.set_timer`."""
        self._shard._schedule_timer(self._position, delay, callback)

    def count(self, metric: str, delta: int = 1) -> None:  # noqa: D102
        self._shard.metrics.bump(metric, delta)

    def rng(self) -> random.Random:
        """This node's ``(run_seed, node_id)``-derived stream (lazy).

        Same derivation as the serial kernel's ``_BoundContext.rng`` —
        a node's draws depend only on the run seed, its id and its own
        draw count, so sharded runs of ctx-RNG protocols stay
        digest-identical to serial runs.
        """
        stream = self._rng
        if stream is None:
            seed = self._shard.cfg.seed
            stream = self._rng = node_stream(seed, self.node_id)
        return stream

    def trace(self, kind: str, **detail: Any) -> None:  # noqa: D102
        pass


class _VectorContext(_ShardContext):
    """The vector engine's context: sends dispatch straight to the
    per-class compiled function, skipping the ``_transmit`` trampoline
    frame the interp engine pays on every send.

    (A monomorphic inline cache — binding the first class's compiled
    function over this method per instance — was tried and reverted:
    election nodes are heavily polymorphic senders, so the class guard
    failed on ~3/4 of sends and the re-dispatch cost more than the saved
    frame.)
    """

    def send(self, port: int, message: Message) -> None:  # noqa: D102
        shard = self._shard
        cls = type(message)
        fn = shard._send_fns.get(cls)
        if fn is None:
            fn = shard._send_fns[cls] = _compile_send(shard, cls)
        fn(shard, self._position, port, message)


class _Shard(SendPath):
    """One shard's runtime: nodes, scheduler (timers), channels, metrics.

    The send pipeline itself (port check, bit audit, FIFO arrival, fault
    verdicts) is :class:`SendPath`, shared verbatim with the serial kernel;
    this class binds its :meth:`_dispatch_send` hook to the window buffers.
    """

    #: Context class handed to nodes; the vector engine swaps in one whose
    #: ``send`` goes straight to the compiled per-class path.
    _context_cls: type[_ShardContext] = _ShardContext

    def __init__(self, cfg: _RunConfig, index: int) -> None:
        self.cfg = cfg
        self.index = index
        self.topology = cfg.topology
        self.delays = cfg.delays
        self.scheduler = Scheduler(max_events=cfg.max_events)
        self.metrics = MetricsCollector()
        self.channels = ChannelTable()
        self.codec = cfg.codec
        self.failed_positions = cfg.failed_positions
        self._crashed: set[int] = set()
        self._has_failures = bool(cfg.failed_positions) or bool(
            cfg.crash_schedule
        )
        self._faults = cfg.faults.bind() if cfg.faults is not None else None
        # Shardable delay models draw from per-link streams (or none at
        # all), never from this run-RNG stand-in.
        self.rng = random.Random(0)
        self._ids = cfg.topology.ids
        self._num_ports = cfg.topology.num_ports
        self._n = cfg.topology.n
        self._shards = cfg.shards
        self._messages_total = 0
        self._bits_total = 0
        self._type_counts: dict[str, int] = {}
        self._max_depth = 0
        self._dropped = 0
        self._duplicated = 0
        self._jittered = 0
        self._channel_of = self.channels.channel
        self._const_latency = (
            cfg.delays.delay
            if type(cfg.delays) is ConstantDelay
            and type(cfg.delays).gap is DelayModel.gap
            else None
        )
        self._current_depth = 0
        self._current_rank: tuple = (0.0, 0)
        self._send_seq = 0
        self._timer_seq = 0
        self._leader: tuple[int, float, int] | None = None
        self._last_time = 0.0
        self._busy = 0.0
        self._out: dict[int, _OutBuffer] = {}

        # Freeze ONE bound method per dispatch handler: entries carry these
        # in slot 2, and the vector engine's inlined dispatch recognises
        # deliveries by identity (a fresh ``self._deliver_entry`` access
        # would bind a new object every time and never match ``is``).
        self._deliver_entry = self._deliver_entry
        self._timer_entry = self._timer_entry
        self._wake_entry = self._wake_entry
        self._crash_entry = self._crash_entry

        self.lo, self.hi = _shard_bounds(self._n, cfg.shards, index)
        protocol = cfg.protocol
        context_cls = self._context_cls
        self.nodes: dict[int, Node] = {
            position: protocol.create_node(context_cls(self, position))
            for position in range(self.lo, self.hi)
        }
        #: The same nodes as a dense list (index ``position - lo``); the
        #: vector engine's dispatch loop indexes it instead of the dict.
        self._node_list: list[Node] = [
            self.nodes[position] for position in range(self.lo, self.hi)
        ]
        #: Globally-keyed entries waiting for their window, serial layout:
        #: ``(time, key, action, depth, *payload)``.
        self.future: list[tuple] = [
            (time, key, self._wake_entry, 0, position)
            for time, key, position in cfg.wakes[index]
        ] + [
            (time, key, self._crash_entry, 0, position)
            for time, key, position in cfg.crashes[index]
        ]

    # -- the send path (SendPath pipeline, buffered dispatch) --------------

    def _dispatch_send(
        self,
        arrival: float,
        far: int,
        far_port: int,
        message: Message,
        sender_id: int,
    ) -> None:
        """Buffer one send at the window barrier instead of scheduling it."""
        depth = self._current_depth + 1
        rank = self._current_rank
        idx = self._send_seq
        self._send_seq = idx + 1
        dest_shard = far * self._shards // self._n
        buf = self._out.get(dest_shard)
        if buf is None:
            buf = self._out[dest_shard] = _OutBuffer()
        packed = self.codec.pack(message) if len(rank) == 2 else None
        if packed is not None:
            type_id, tags, field_ints = packed
            buf.times.append(rank[0])
            buf.times.append(arrival)
            buf.offs.append(len(buf.ints))
            buf.ints.extend(
                (
                    rank[1],
                    idx,
                    far,
                    far_port,
                    depth,
                    sender_id,
                    type_id,
                    tags,
                    len(field_ints),
                )
            )
            if field_ints:
                buf.ints.extend(field_ints)
        else:
            buf.slow.append(
                (
                    rank + (idx,),
                    arrival,
                    far,
                    far_port,
                    depth,
                    sender_id,
                    message,
                )
            )

    def _schedule_timer(
        self, position: int, delay: float, callback: Callable[[], None]
    ) -> None:
        if delay < 0:
            raise SimulationError(f"negative timer delay {delay}")
        fire = self.scheduler.now + delay
        rank = (fire, TIMER_MARK, self._current_rank, self._timer_seq)
        self._timer_seq += 1
        self.scheduler.schedule_payload(
            fire,
            self._timer_entry,
            self._current_depth,
            (position, callback, rank),
            1,
        )

    # -- dispatch handlers (mirror the serial kernel's) --------------------

    def _wake_entry(self, entry: tuple) -> None:
        position = entry[4]
        node = self.nodes[position]
        if position not in self._crashed and not node.awake:
            self.metrics.on_wake(self.scheduler.now)
            node.wake(spontaneous=True)

    def _crash_entry(self, entry: tuple) -> None:
        self._crashed.add(entry[4])

    def _timer_entry(self, entry: tuple) -> None:
        position = entry[4]
        if self._has_failures and (
            position in self.failed_positions or position in self._crashed
        ):
            return
        self._current_depth = entry[3]
        self._current_rank = entry[6]
        entry[5]()

    def _deliver_entry(self, entry: tuple) -> None:
        depth = entry[3]
        position = entry[4]
        if depth > self._max_depth:
            self._max_depth = depth
        if self._has_failures and (
            position in self.failed_positions or position in self._crashed
        ):
            return
        node = self.nodes[position]
        if not node.awake:
            self.metrics.on_wake(self.scheduler.now)
        self._current_depth = depth
        node.receive(entry[5], entry[6])

    def _on_leader_declared(self, position: int) -> None:
        if self._leader is not None and self._leader[0] != position:
            first = self.topology.id_at(self._leader[0])
            second = self.topology.id_at(position)
            raise ProtocolViolation(
                f"{self.cfg.protocol.name}: node {second} declared leader at "
                f"t={self.scheduler.now} but node {first} already had"
            )
        if self._leader is None:
            self._leader = (
                position,
                self.scheduler.now,
                self._current_depth,
            )

    # -- the window loop ---------------------------------------------------

    def _decode_incoming(self, incoming: list[tuple | None]) -> None:
        future = self.future
        deliver = self._deliver_entry
        unpack = self.codec.unpack
        for batch in incoming:
            if batch is None:
                continue
            times, ints, offs, fast_keys, slow, slow_keys = batch
            for r, key in enumerate(fast_keys):
                offset = offs[r]
                nfields = ints[offset + 8]
                message = unpack(
                    ints[offset + 6],
                    ints[offset + 7],
                    tuple(ints[offset + _REC_HEAD : offset + _REC_HEAD + nfields]),
                )
                future.append(
                    (
                        times[2 * r + 1],
                        key,
                        deliver,
                        ints[offset + 4],
                        ints[offset + 2],
                        ints[offset + 3],
                        message,
                        ints[offset + 5],
                    )
                )
            for record, key in zip(slow, slow_keys):
                future.append(
                    (
                        record[1],
                        key,
                        deliver,
                        record[4],
                        record[2],
                        record[3],
                        record[6],
                        record[5],
                    )
                )

    def run_window(
        self,
        start: float,
        end: float,
        budget: int,
        incoming: list[tuple | None],
    ) -> tuple[dict[int, tuple], dict[str, Any]]:
        """Execute every owned event with time in ``[start, end)``.

        ``budget`` is the whole run's remaining event allowance — the
        global livelock budget, not a per-shard one.  Returns the buffered
        outgoing sends (keyed by destination shard) and window stats.
        """
        t0 = perf_counter()
        self._decode_incoming(incoming)
        scheduler = self.scheduler
        scheduler.set_max_events(scheduler.events_processed + budget)
        future = self.future
        if future:
            due = [e for e in future if e[0] < end]
            if len(due) == len(future):
                self.future = []
            elif due:
                self.future = [e for e in future if e[0] >= end]
        else:
            due = []
        # Already-armed timers join the window's sorted batch up front
        # (entry tuples carry the timer tiebreak in their key, so one sort
        # interleaves them exactly as the serial heap would); only timers
        # armed *during* this window still arrive through the heap check
        # inside the loop.
        timers = scheduler.pop_due(end)
        if timers:
            due.extend(timers)
        due.sort()
        self._reset_out()
        processed = self._dispatch(due, end, budget)
        heap = scheduler._queue.heap  # timers only; deliveries stay in lists
        if processed:
            self._last_time = scheduler.now
            scheduler.consume_budget(processed)
        self._busy += perf_counter() - t0
        next_time = None
        if self.future:
            next_time = min(e[0] for e in self.future)
        if heap and (next_time is None or heap[0][0] < next_time):
            next_time = heap[0][0]
        out = self._collect_out()
        stats = {
            "processed": processed,
            "next_time": next_time,
            "last_time": self._last_time,
            "leader": self._leader,
        }
        return out, stats

    def _reset_out(self) -> None:
        """Clear the window's outgoing buffers (subclass hook)."""
        self._out = {}

    def _collect_out(self) -> dict[int, tuple]:
        """Drain the window's buffers into wire tuples (subclass hook)."""
        out = {
            dest: (buf.times, buf.ints, buf.offs, buf.slow)
            for dest, buf in self._out.items()
        }
        self._out = {}
        return out

    def _dispatch(self, due: list[tuple], end: float, budget: int) -> int:
        """Fire the window's sorted ``due`` list, merged with heap timers.

        Timers armed *during* the window sit on the heap; the per-entry
        peek interleaves them into the exact ``(time, key)`` order the
        serial heap would have produced.  Returns the number of events
        fired (the coordinator's budget accounting needs it).
        """
        scheduler = self.scheduler
        heap = scheduler._queue.heap
        heappop = heapq.heappop
        processed = 0
        i = 0
        ndue = len(due)
        while True:
            if i < ndue:
                entry = due[i]
                if heap and heap[0][0] < end and heap[0] < entry:
                    entry = heappop(heap)
                else:
                    i += 1
            elif heap and heap[0][0] < end:
                entry = heappop(heap)
            else:
                break
            scheduler._now = entry[0]
            processed += 1
            if processed > budget:
                raise LivelockError(
                    f"event budget of {self.cfg.max_events} exhausted at "
                    f"t={entry[0]}; the protocol is livelocked"
                )
            self._send_seq = 0
            self._timer_seq = 0
            self._current_rank = (entry[0], entry[1])
            self._current_depth = 0
            entry[2](entry)
        return processed

    def finish(self) -> dict[str, Any]:
        """Final fold of this shard's accounting, for the coordinator."""
        metrics = self.metrics
        return {
            "messages_total": self._messages_total,
            "bits_total": self._bits_total,
            "type_counts": self._type_counts,
            "max_depth": self._max_depth,
            "dropped": self._dropped,
            "duplicated": self._duplicated,
            "jittered": self._jittered,
            "retransmissions": metrics.retransmissions,
            "duplicates_suppressed": metrics.duplicates_suppressed,
            "packets_abandoned": metrics.packets_abandoned,
            "first_wake": metrics.first_wake_time,
            "last_wake": metrics.last_wake_time,
            "leader": self._leader,
            "processed": self.scheduler.events_processed,
            "busy": self._busy,
            "last_time": self._last_time,
            "max_channel_load": self.channels.max_load,
            "base_positions": [
                position
                for position in range(self.lo, self.hi)
                if self.nodes[position].is_base
            ],
            "crashed": sorted(self._crashed),
            "snapshots": (
                [
                    (position, self.nodes[position].snapshot())
                    for position in range(self.lo, self.hi)
                ]
                if self.cfg.collect_snapshots
                else None
            ),
        }


class _VectorShard(_Shard):
    """The vector engine: columnar decode plus a compiled, fused send path.

    Same window loop, same dispatch order, same buffers as the interp
    engine — the engine changes *how* a window's batch is decoded and how
    a send is packed, never *what* is produced, so its results are
    byte-identical to the interp engine (and therefore to the serial
    kernel's heap order).  Three mechanisms carry the speedup:

    * **Columnar decode.**  Incoming fast-lane batches are gathered into
      per-field columns (numpy fancy-indexing over the ``offs`` side
      array when numpy is importable, list comprehensions otherwise) and
      zipped straight into entry tuples, instead of per-record offset
      walking and tuple assembly.
    * **Grouped message building.**  Records share one compiled
      constructor per ``(type_id, tagword)`` group (tag-constant fields
      baked in as literals), fed through the codec's existing value memo.
    * **Fused send path.**  One compiled per-class packer replaces the
      pack loop, and the O(log N) bit audit is memoised per
      ``(type_id, tagword)`` — sound because a *flat* message's bit size
      depends on its field values only through the tagword.

    Dispatch itself stays strictly per-event in global merge order: the
    digest contract (and mid-window timer interleaving) forbids applying
    handlers out of order, so batching ends at the entry list.
    """

    _context_cls = _VectorContext

    def __init__(self, cfg: _RunConfig, index: int) -> None:
        super().__init__(cfg, index)
        #: One-slot per-class tally cells baked into compiled send
        #: functions; folded into ``_type_counts`` by :meth:`finish`.
        self._class_cells: dict[type, list[int]] = {}
        tables = cfg.codec.vector_tables()
        self._tables = tables
        self._pack_fns = tables.pack_fns
        self._bits_memo = tables.bits
        #: Fast-lane sends tallied per *class* (folded to type names in
        #: :meth:`finish`); slow-lane and faulty sends still land in
        #: ``_type_counts`` via the shared pipeline.
        self._class_counts: dict[type, int] = {}
        # Sense-of-direction wiring is arithmetic; inlining it drops two
        # method calls from every fast-lane send.  Same for first-level
        # access to the lazily-built channel dict (misses fall back to the
        # table's creating lookup).
        self._cyclic = getattr(cfg.topology, "_cyclic", False)
        self._chan_map = self.channels._channels
        #: Per-class compiled send functions, built on first send of each
        #: class (a worker only pays compilation for the types its
        #: protocol actually uses).
        self._send_fns: dict[type, Any] = {}
        #: The entry being dispatched, when (and only when) its ``[0:2]``
        #: is the send rank — i.e. any handler except a timer callback.
        #: Compiled sends read the rank straight off it, which saves the
        #: interp loop's per-event ``(time, key)`` tuple; ``None`` routes
        #: sends to the general path, which falls back to
        #: ``_current_rank`` exactly as the interp engine does.
        self._current_entry: tuple | None = None
        #: The window's outgoing buffers as a dense per-destination list
        #: (one index per shard) instead of the interp engine's dict.
        self._outl: list[_OutBuffer | None] = [None] * self._shards

    def _transmit(self, position: int, port: int, message: Message) -> None:
        self._send_poly(position, port, message)

    def _send_poly(self, position: int, port: int, message: Message) -> None:
        """Dispatch a send to its class's compiled function."""
        cls = type(message)
        fn = self._send_fns.get(cls)
        if fn is None:
            fn = self._send_fns[cls] = _compile_send(self, cls)
        fn(self, position, port, message)

    def _transmit_general(
        self, position: int, port: int, message: Message
    ) -> None:
        if self._faults is not None:
            self._transmit_faulty(position, port, message)
            return
        ce = self._current_entry
        entry = self._pack_fns.get(type(message))
        packed = (
            entry[1](message) if entry is not None and ce is not None else None
        )
        if packed is None:
            # Slow lane (wide ints, non-flat fields) or timer-sourced rank:
            # the shared pipeline audits and buffers it object-wise.
            SendPath._transmit(self, position, port, message)
            return
        if not 0 <= port < self._num_ports:
            raise SimulationError(
                f"node {self._ids[position]} used invalid port {port}"
            )
        type_id = entry[0]
        tags, field_ints = packed
        bits_key = (type_id, tags)
        bits = self._bits_memo.get(bits_key)
        if bits is None:
            # Only memoise successful audits so an oversized message keeps
            # raising MessageSizeError on every send, like the interp path.
            bits = message_bits(message, self._n)
            self._bits_memo[bits_key] = bits
        self._messages_total += 1
        self._bits_total += bits
        counts = self._class_counts
        cls = type(message)
        counts[cls] = counts.get(cls, 0) + 1
        if self._cyclic:
            n = self._n
            far = position + port + 1
            if far >= n:
                far -= n
            far_port = n - 2 - port
        else:
            topology = self.topology
            far = topology.neighbor(position, port)
            far_port = topology.reverse_port(position, port)
        ids = self._ids
        sender_id = ids[position]
        now = self.scheduler._now
        link = (sender_id, ids[far])
        channel = self._chan_map.get(link)
        if channel is None:
            channel = self._channel_of(*link)
        latency = self._const_latency
        if latency is not None:
            arrival = now + latency
            if arrival < channel.last_arrival:
                arrival = channel.last_arrival
            channel.last_arrival = arrival
            channel.messages_sent += 1
        else:
            arrival = channel.arrival_time(message, now, self.delays, self.rng)
        depth = self._current_depth + 1
        idx = self._send_seq
        self._send_seq = idx + 1
        dest_shard = far * self._shards // self._n
        outl = self._outl
        buf = outl[dest_shard]
        if buf is None:
            buf = outl[dest_shard] = _OutBuffer()
        buf.tap(ce[0])
        buf.tap(arrival)
        buf.oap(len(buf.ints))
        buf.iex(
            (
                ce[1],
                idx,
                far,
                far_port,
                depth,
                sender_id,
                type_id,
                tags,
                len(field_ints),
            )
        )
        if field_ints:
            buf.iex(field_ints)

    # -- rank plumbing for the slow/faulty lanes ---------------------------
    #
    # The vector loop publishes the dispatched entry instead of building a
    # ``(time, key)`` rank tuple per event; the shared SendPath/slow-lane
    # code still expects ``_current_rank``, so the handful of non-fast
    # paths reconstruct it on demand.

    def _dispatch_send(
        self,
        arrival: float,
        far: int,
        far_port: int,
        message: Message,
        sender_id: int,
    ) -> None:
        ce = self._current_entry
        if ce is not None:
            self._current_rank = (ce[0], ce[1])
        super()._dispatch_send(arrival, far, far_port, message, sender_id)

    def _schedule_timer(
        self, position: int, delay: float, callback: Callable[[], None]
    ) -> None:
        ce = self._current_entry
        if ce is not None:
            self._current_rank = (ce[0], ce[1])
        super()._schedule_timer(position, delay, callback)

    def _timer_entry(self, entry: tuple) -> None:
        # Timer callbacks send under the timer's own 4-tuple rank; clearing
        # the entry routes their sends to the rank-aware general path.
        self._current_entry = None
        super()._timer_entry(entry)

    def _reset_out(self) -> None:
        self._out = {}
        self._outl = [None] * self._shards

    def _collect_out(self) -> dict[int, tuple]:
        # Fast-lane records live in the dense list; the slow lane (via the
        # shared ``_dispatch_send``) still lands in ``_out`` dict buffers.
        # A destination never has both: every vector-side path that buffers
        # fast records uses ``_outl`` exclusively.
        out = {
            dest: (buf.times, buf.ints, buf.offs, buf.slow)
            for dest, buf in enumerate(self._outl)
            if buf is not None
        }
        for dest, buf in self._out.items():
            have = out.get(dest)
            if have is None:
                out[dest] = (buf.times, buf.ints, buf.offs, buf.slow)
            else:
                have[3].extend(buf.slow)
        self._out = {}
        self._outl = [None] * self._shards
        return out

    def _dispatch(self, due: list[tuple], end: float, budget: int) -> int:
        """The base merge loop with the delivery handler inlined.

        Identical order and side effects; the common case (a failure-free
        run delivering a message to an awake node) fires without the
        ``_deliver_entry`` and ``Node.receive`` frames.  Runs with failure
        configs keep the base loop — the inlined body omits the
        failed/crashed guards.
        """
        if self._has_failures:
            return super()._dispatch(due, end, budget)
        scheduler = self.scheduler
        heap = scheduler._queue.heap
        heappop = heapq.heappop
        deliver = self._deliver_entry
        nodes = self._node_list
        lo = self.lo
        on_wake = self.metrics.on_wake
        processed = 0
        i = 0
        ndue = len(due)
        while True:
            if i < ndue:
                entry = due[i]
                if heap and heap[0][0] < end and heap[0] < entry:
                    entry = heappop(heap)
                else:
                    i += 1
            elif heap and heap[0][0] < end:
                entry = heappop(heap)
            else:
                break
            t = entry[0]
            scheduler._now = t
            processed += 1
            if processed > budget:
                raise LivelockError(
                    f"event budget of {self.cfg.max_events} exhausted at "
                    f"t={t}; the protocol is livelocked"
                )
            self._send_seq = 0
            self._timer_seq = 0
            self._current_entry = entry
            if entry[2] is deliver:
                depth = entry[3]
                if depth > self._max_depth:
                    self._max_depth = depth
                self._current_depth = depth
                node = nodes[entry[4] - lo]
                if node.awake:
                    node.on_message(entry[5], entry[6])
                else:
                    on_wake(t)
                    node.receive(entry[5], entry[6])
            else:
                self._current_depth = 0
                entry[2](entry)
        self._current_entry = None
        return processed

    def _decode_incoming(self, incoming: list[tuple | None]) -> None:
        future = self.future
        deliver = self._deliver_entry
        tables = self._tables
        builders = tables.builders
        make_builder = tables.builder
        cache = self.codec._cache
        np = _np
        for batch in incoming:
            if batch is None:
                continue
            times, ints, offs, fast_keys, slow, slow_keys = batch
            nrec = len(offs)
            if nrec and np is not None and nrec >= 16:
                # Group-ordered columnar decode.  The window loop sorts
                # ``due`` by ``(time, key)`` before dispatch and treats
                # ``future`` as an unordered pool, so entries may be
                # appended in any order — which frees the decode to emit
                # them one ``(type_id, tagword)`` group at a time, with
                # every per-field gather a single numpy fancy-index.
                ivec = np.frombuffer(ints, dtype=np.int64)
                ovec = np.frombuffer(offs, dtype=np.int64)
                arrivals = np.frombuffer(times, dtype=np.float64)[1::2]
                keys = np.frombuffer(fast_keys, dtype=np.int64)
                tids = ivec[ovec + 6]
                tagws = ivec[ovec + 7]
                tid0 = tids[0]
                if (tids == tid0).all() and (tagws == tagws[0]).all():
                    # Homogeneous batch (one message class, one tagword —
                    # common for broadcast-heavy windows): skip the sort.
                    order = None
                    tid_s = tids
                    tag_s = tagws
                    starts = [0, nrec]
                else:
                    order = np.lexsort((tagws, tids))
                    tid_s = tids[order]
                    tag_s = tagws[order]
                    cuts = np.nonzero(
                        (tid_s[1:] != tid_s[:-1]) | (tag_s[1:] != tag_s[:-1])
                    )[0]
                    starts = [0, *(cuts + 1).tolist(), nrec]
                for g in range(len(starts) - 1):
                    a, b = starts[g], starts[g + 1]
                    if order is None:
                        o_g = ovec
                        arr_g = arrivals
                        key_g = keys
                    else:
                        idx = order[a:b]
                        o_g = ovec[idx]
                        arr_g = arrivals[idx]
                        key_g = keys[idx]
                    group = (int(tid_s[a]), int(tag_s[a]))
                    build = builders.get(group)
                    if build is None:
                        build = make_builder(*group)
                    nf = int(ivec[o_g[0] + 8])
                    if nf:
                        cols = [
                            ivec[o_g + (_REC_HEAD + j)].tolist()
                            for j in range(nf)
                        ]
                        msgs = map(build, zip(*cols))
                    else:
                        # Field-less records share one immutable instance,
                        # exactly like the codec's value memo would.
                        msgs = repeat(build(()), b - a)
                    future.extend(
                        zip(
                            arr_g.tolist(),
                            key_g.tolist(),
                            repeat(deliver),
                            ivec[o_g + 4].tolist(),
                            ivec[o_g + 2].tolist(),
                            ivec[o_g + 3].tolist(),
                            msgs,
                            ivec[o_g + 5].tolist(),
                        )
                    )
            elif nrec:
                arrivals = times[1::2]
                messages: list[Message | None] = [None] * nrec
                for r in range(nrec):
                    o = offs[r]
                    f = o + _REC_HEAD
                    key = (ints[o + 6], ints[o + 7], tuple(ints[f : f + ints[o + 8]]))
                    m = cache.get(key)
                    if m is None:
                        group = (key[0], key[1])
                        build = builders.get(group)
                        if build is None:
                            build = make_builder(*group)
                        m = build(key[2])
                        if len(cache) < 4096:
                            cache[key] = m
                    messages[r] = m
                future.extend(
                    zip(
                        arrivals,
                        fast_keys,
                        repeat(deliver),
                        [ints[o + 4] for o in offs],
                        [ints[o + 2] for o in offs],
                        [ints[o + 3] for o in offs],
                        messages,
                        [ints[o + 5] for o in offs],
                    )
                )
            for record, key in zip(slow, slow_keys):
                future.append(
                    (
                        record[1],
                        key,
                        deliver,
                        record[4],
                        record[2],
                        record[3],
                        record[6],
                        record[5],
                    )
                )

    def finish(self) -> dict[str, Any]:
        counts = self._type_counts
        for cls, count in self._class_counts.items():
            name = cls.__name__
            counts[name] = counts.get(name, 0) + count
        for cls, cell in self._class_cells.items():
            if cell[0]:
                name = cls.__name__
                counts[name] = counts.get(name, 0) + cell[0]
        return super().finish()


def _shard_class(engine: str) -> type[_Shard]:
    """Map an engine name to its shard implementation."""
    return _VectorShard if engine == "vector" else _Shard


# ---------------------------------------------------------------------------
# Worker transport: in-process handles and forked pipe workers.
# ---------------------------------------------------------------------------


class _LocalHandle:
    """Drives one shard in-process (the REPRO_PARALLEL=0 / 1-CPU mode)."""

    def __init__(self, cfg: _RunConfig, index: int) -> None:
        self._shard = _shard_class(cfg.engine)(cfg, index)

    def window(self, start, end, budget, incoming, parity) -> None:
        self._reply = self._shard.run_window(start, end, budget, incoming)

    def collect(self):
        return self._reply

    def finish(self) -> dict[str, Any]:
        return self._shard.finish()

    def close(self) -> None:
        pass


def _stash_out(
    exchange: ShmExchange, index: int, parity: int, out: dict[int, tuple]
) -> dict[int, tuple]:
    """Move each fast batch into shared memory; keep overflows on the pipe.

    Returns the pipe-bound ``out`` dict: batches written to the pair's
    segment are replaced by a ``("shm", n_fast, ints_len, slow)`` marker
    (the slow lane always rides the pipe); fast batches that do not fit
    the segment stay in full, so capacity never affects correctness.
    """
    wired: dict[int, tuple] = {}
    for dest, batch in out.items():
        times, ints, offs, slow = batch
        if offs and exchange.try_write(index, dest, parity, times, ints, offs):
            wired[dest] = ("shm", len(offs), len(ints), slow)
        else:
            wired[dest] = batch
    return wired


def _resolve_in(
    exchange: ShmExchange, src: int, index: int, batch: tuple | None
) -> tuple | None:
    """Expand a routed ``("shm", ...)`` marker into decode-ready views.

    The fast arrays come straight out of the ``src -> index`` segment as
    typed memoryviews (the decoder only indexes and iterates them, so no
    copy is ever made); the merge keys were stamped into the same segment
    by the coordinator during routing.
    """
    if batch is None or batch[0] != "shm":
        return batch
    _tag, parity, slow, slow_keys = batch
    n_fast, ints_len = exchange.header(src, index, parity)
    times, ints, offs = exchange.fast_views(src, index, parity, n_fast, ints_len)
    keys = exchange.keys_view(src, index, parity, n_fast)
    return (times, ints, offs, keys, slow, slow_keys)


def _worker_main(
    conn, cfg: _RunConfig, index: int, exchange: ShmExchange | None = None
) -> None:
    """Forked worker loop: build the shard post-fork, serve window ops.

    ``exchange`` (inherited through the fork, never pickled) carries the
    fast-lane batches when the coordinator managed to create the shared
    segments; ``None`` means everything rides the pipe.
    """
    try:
        shard = _shard_class(cfg.engine)(cfg, index)
        while True:
            op = conn.recv()
            if op[0] == "window":
                incoming = op[4]
                if exchange is not None:
                    incoming = [
                        _resolve_in(exchange, src, index, batch)
                        for src, batch in enumerate(incoming)
                    ]
                out, stats = shard.run_window(op[1], op[2], op[3], incoming)
                if exchange is not None:
                    out = _stash_out(exchange, index, op[5], out)
                conn.send(("done", out, stats))
            elif op[0] == "finish":
                conn.send(("result", shard.finish()))
                return
            else:
                return
    except BaseException as exc:  # relayed and re-raised by the parent
        import traceback

        try:
            conn.send(
                ("error", type(exc).__name__, str(exc), traceback.format_exc())
            )
        except Exception:
            pass
    finally:
        conn.close()


class _ForkHandle:
    """Drives one shard in a forked worker over a pipe.

    When a :class:`ShmExchange` is supplied the pipe carries only control
    messages, slow-lane records, and overflow batches; the packed fast
    lanes move through the shared segments without pickling.
    """

    def __init__(
        self,
        context,
        cfg: _RunConfig,
        index: int,
        exchange: ShmExchange | None = None,
    ) -> None:
        self._conn, child = context.Pipe()
        self._process = context.Process(
            target=_worker_main, args=(child, cfg, index, exchange), daemon=True
        )
        self._process.start()
        child.close()

    def _recv(self):
        try:
            reply = self._conn.recv()
        except EOFError:
            raise SimulationError(
                "shard worker exited unexpectedly (killed or crashed hard)"
            ) from None
        if reply[0] == "error":
            _, name, message, tb = reply
            exc_type = getattr(_errors, name, None)
            if exc_type is None or not (
                isinstance(exc_type, type) and issubclass(exc_type, BaseException)
            ):
                raise SimulationError(f"shard worker failed: {message}\n{tb}")
            raise exc_type(message)
        return reply

    def window(self, start, end, budget, incoming, parity) -> None:
        self._conn.send(("window", start, end, budget, incoming, parity))

    def collect(self):
        reply = self._recv()
        return reply[1], reply[2]

    def finish(self) -> dict[str, Any]:
        self._conn.send(("finish",))
        return self._recv()[1]

    def close(self) -> None:
        try:
            self._conn.close()
        except Exception:
            pass
        if self._process.is_alive():
            self._process.terminate()
        self._process.join(timeout=5)


# ---------------------------------------------------------------------------
# The coordinator.
# ---------------------------------------------------------------------------


def _refuse_unshardable_protocol(protocol: ElectionProtocol) -> None:
    """Refuse protocols whose flow-derived capability breaks sharding.

    The digest contract ("sharded == serial, bit for bit") holds because
    every event is a pure function of the seeded schedule.  A protocol
    *implementation* that arms wall-clock-shaped timers couples its
    behaviour to the window partition (a timer races the window barrier
    differently at different shard counts), and module-level entropy
    (``random``/``secrets``/``uuid``) escapes the seeded streams
    entirely — so both are refused up front, per the capability table the
    flow analyzer derives (``uses_timers``/``uses_rng``).

    Overlay layers are unwrapped via ``.election`` and judged on their
    *own* implementation modules: the framework's ``ReliableDelivery``
    overlay uses timers internally, but those live in ``repro.core`` and
    are vetted with the kernel itself (its rank machinery orders timer
    events deterministically), so wrapping a shardable election keeps it
    shardable.

    ``uses_ctx_rng`` (the randomized family's seeded per-node streams,
    :mod:`repro.sim.rng`) is deliberately *not* refused: a node's coin
    sequence depends only on ``(run_seed, node_id)`` and its own draw
    count, all of which the window schedule reproduces exactly, so
    ctx-RNG protocols keep the serial digest — asserted by the phase-5
    cells of ``check --all`` and tests/sim/test_shard.py.
    """
    from repro.lint.capabilities import capability_for, implementation_modules

    layer: object | None = protocol
    seen: set[int] = set()
    while layer is not None and id(layer) not in seen:
        seen.add(id(layer))
        if implementation_modules(type(layer)):
            capability = capability_for(type(layer))
            if capability.uses_timers:
                raise ConfigurationError(
                    f"protocol {capability.protocol!r} arms timers in its "
                    "implementation modules (uses_timers per the flow-"
                    "derived capability table); sharded execution cannot "
                    "guarantee the serial digest for implementation-level "
                    "timers — run it on the serial kernel"
                )
            if capability.uses_rng:
                raise ConfigurationError(
                    f"protocol {capability.protocol!r} imports entropy "
                    "modules (uses_rng per the flow-derived capability "
                    "table); sharded execution requires behaviour to be a "
                    "function of the seeded schedule alone"
                )
        layer = getattr(layer, "election", None)


class ShardedNetwork:
    """One runnable sharded election (digest-identical to :class:`Network`).

    ``workers=None`` auto-selects: forked shard workers when
    ``REPRO_PARALLEL`` permits, ``fork`` is available and the host has
    more than one CPU; in-process shards otherwise.  ``workers=0`` forces
    in-process execution, any positive value forces one forked worker per
    shard.  Both modes run the identical window/merge pipeline, so their
    results are equal by construction.

    After :meth:`run`, :attr:`stats` holds the kernel-level numbers the
    benchmarks publish (per-shard busy seconds and event counts, window
    count, wall time).
    """

    def __init__(
        self,
        protocol: ElectionProtocol,
        topology: CompleteTopology,
        *,
        shards: int,
        workers: int | None = None,
        engine: str | None = None,
        delays: DelayModel | None = None,
        wakeup: WakeupSchedule | WakeupFactory | None = None,
        failed_positions: frozenset[int] | set[int] = frozenset(),
        crash_schedule: Mapping[int, float] | None = None,
        faults: FaultPlan | None = None,
        seed: int = 0,
        max_events: int = 5_000_000,
        collect_snapshots: bool = True,
    ) -> None:
        protocol.validate(topology)
        if not isinstance(shards, int) or not 1 <= shards <= topology.n:
            raise ConfigurationError(
                f"shards must be an integer in [1, n={topology.n}], "
                f"got {shards!r}"
            )
        # ``None`` auto-selects the vector engine: it is digest-identical
        # by contract and works with or without numpy (the pure-Python
        # batch loop is the fallback), so there is nothing to detect
        # beyond letting the import probe above pick the decode path.
        if engine is None:
            engine = "vector"
        if engine not in ENGINES:
            raise ConfigurationError(
                f"unknown engine {engine!r}; expected one of {ENGINES}"
            )
        self.engine = engine
        delays = delays if delays is not None else ConstantDelay(1.0)
        if delays.uses_run_rng:
            raise ConfigurationError(
                f"{type(delays).__name__} consumes the shared run RNG; "
                "sharded execution cannot reproduce a global draw order "
                "(use ConstantDelay, a HookDelay with min_latency, or "
                "UniformDelay(min_latency=...) for per-link streams)"
            )
        lookahead = delays.min_latency
        if lookahead is None or lookahead <= 0.0:
            raise ConfigurationError(
                f"{type(delays).__name__} declares no positive min_latency; "
                "conservative windows need a strictly positive lookahead"
            )
        _refuse_unshardable_protocol(protocol)
        self.protocol = protocol
        self.topology = topology
        self.lookahead = float(lookahead)
        self.shards = shards
        self.max_events = max_events
        failed = frozenset(failed_positions)
        crashes = merge_crash_schedule(crash_schedule, faults)
        validate_failure_config(topology.n, failed, crashes)

        rng = random.Random(seed)
        schedule = resolve_wakeup(wakeup, topology, failed, rng)
        n = topology.n
        wakes: list[list[tuple[float, int, int]]] = [[] for _ in range(shards)]
        for i, (position, time) in enumerate(schedule.items()):
            wakes[position * shards // n].append((time, _WAKE_BASE + i, position))
        crash_entries: list[list[tuple[float, int, int]]] = [
            [] for _ in range(shards)
        ]
        for j, (position, time) in enumerate(crashes.items()):
            crash_entries[position * shards // n].append(
                (time, _CRASH_BASE + j, position)
            )
        self._initial_min = min(
            min((t for t, _k, _p in entries), default=float("inf"))
            for entries in (
                [w + c for w, c in zip(wakes, crash_entries)]
            )
        )
        self._cfg = _RunConfig(
            protocol=protocol,
            topology=topology,
            delays=delays,
            failed_positions=failed,
            crash_schedule=crashes,
            faults=faults,
            seed=seed,
            max_events=max_events,
            shards=shards,
            collect_snapshots=collect_snapshots,
            engine=engine,
            codec=MessageCodec(),
            wakes=wakes,
            crashes=crash_entries,
        )
        if workers is None:
            env = configured_processes()
            forked = (
                env != 0
                and (env or os.cpu_count() or 1) > 1
                and fork_context() is not None
            )
        else:
            forked = workers > 0 and fork_context() is not None
        self._forked = forked
        self._exchange: ShmExchange | None = None
        self._ran = False
        self.stats: dict[str, Any] = {}

    # -- the barrier loop --------------------------------------------------

    def run(self, *, require_leader: bool = True) -> ElectionResult:
        """Drive every shard window-by-window to global quiescence."""
        if self._ran:
            raise SimulationError(
                "a ShardedNetwork instance can only run once"
            )
        self._ran = True
        wall0 = perf_counter()
        k = self.shards
        cfg = self._cfg
        if self._forked:
            context = fork_context()
            # Segments must exist before the fork so every worker inherits
            # the mappings; ``None`` (no /dev/shm, REPRO_SHM=0, ...) simply
            # keeps the whole exchange on the pipes.
            self._exchange = ShmExchange.create(k)
            handles: list[Any] = [
                _ForkHandle(context, cfg, i, self._exchange) for i in range(k)
            ]
        else:
            handles = [_LocalHandle(cfg, i) for i in range(k)]
        try:
            finals = self._drive(handles)
        finally:
            for handle in handles:
                handle.close()
            if self._exchange is not None:
                self._exchange.close()
                self._exchange = None
        result = self._build_result(finals)
        self.stats["wall_seconds"] = perf_counter() - wall0
        if require_leader:
            if cfg.collect_snapshots:
                result.verify()
            elif result.leader_id is None:
                raise SimulationError(
                    "no leader elected (snapshots were not collected, so "
                    "only the leader check ran)"
                )
        return result

    def _drive(self, handles: list[Any]) -> list[dict[str, Any]]:
        k = self.shards
        lookahead = self.lookahead
        max_events = self.max_events
        global_seq = 0
        total_processed = 0
        windows = 0
        leader: tuple[int, float, int] | None = None
        leader_shard = -1
        #: pending_in[dest][src]: batch routed but not yet delivered.
        pending_in: list[list[tuple | None]] = [
            [None] * k for _ in range(k)
        ]
        next_times: list[float | None] = [
            self._initial_min if self._initial_min != float("inf") else None
        ] * k
        incoming_min = float("inf")

        while True:
            start = incoming_min
            for t in next_times:
                if t is not None and t < start:
                    start = t
            if start == float("inf"):
                break
            end = start + lookahead
            budget = max_events - total_processed
            parity = windows & 1
            windows += 1
            for index, handle in enumerate(handles):
                handle.window(start, end, budget, pending_in[index], parity)
            pending_in = [[None] * k for _ in range(k)]
            outs: list[dict[int, tuple]] = []
            for index, handle in enumerate(handles):
                out, stats = handle.collect()
                outs.append(out)
                total_processed += stats["processed"]
                next_times[index] = stats["next_time"]
                reported = stats["leader"]
                if reported is not None:
                    if leader is None:
                        leader, leader_shard = reported, index
                    elif leader_shard != index:
                        self._raise_leader_conflict(leader, reported)
            if total_processed > max_events:
                raise LivelockError(
                    f"event budget of {max_events} exhausted at t={start}; "
                    f"the protocol is livelocked (aggregate across "
                    f"{k} shard schedulers)"
                )
            incoming_min, global_seq = self._route(
                outs, pending_in, global_seq, parity
            )

        finals = [handle.finish() for handle in handles]
        self.stats.update(
            {
                "shards": k,
                "engine": self.engine,
                "forked": self._forked,
                "transport": (
                    "shm"
                    if self._exchange is not None
                    else ("pipes" if self._forked else "local")
                ),
                "windows": windows,
                "events_total": total_processed,
                "events_per_shard": [f["processed"] for f in finals],
                "busy_per_shard": [f["busy"] for f in finals],
            }
        )
        return finals

    def _route(
        self,
        outs: list[dict[int, tuple]],
        pending_in: list[list[tuple | None]],
        global_seq: int,
        parity: int,
    ) -> tuple[float, int]:
        """Globally order one window's sends and route them to their shards.

        Returns the earliest routed arrival time and the advanced global
        sequence counter.  The sort key is each record's merge key (see the
        module docstring); assigning consecutive keys in sorted order
        reproduces the serial kernel's scheduling order for these sends.

        A batch may arrive as a ``("shm", n_fast, ints_len, slow)`` marker:
        its fast arrays live in the pair's shared segment for this window's
        ``parity`` and are read here through memoryview casts; the assigned
        merge keys are stamped back into the same segment, so the routed
        entry sent down the pipe is just a tiny ``("shm", parity, slow,
        slow_keys)`` marker.  The merge-key ordering is source-agnostic --
        shm and pipe batches interleave in the one global sort.
        """
        items: list[tuple] = []
        routed: dict[tuple[int, int], tuple] = {}
        exchange = self._exchange
        incoming_min = float("inf")
        for src, out in enumerate(outs):
            for dest, batch in out.items():
                shm = batch[0] == "shm"
                if shm:
                    _tag, n_fast, ints_len, slow = batch
                    times, ints, offs = exchange.fast_views(
                        src, dest, parity, n_fast, ints_len
                    )
                else:
                    times, ints, offs, slow = batch
                    n_fast = len(offs)
                fast_keys = [0] * n_fast
                slow_keys = [0] * len(slow)
                routed[(src, dest)] = (
                    shm, times, ints, offs, slow, fast_keys, slow_keys,
                )
                if n_fast:
                    arrival = min(times[1::2])
                    if arrival < incoming_min:
                        incoming_min = arrival
                    for r in range(n_fast):
                        offset = offs[r]
                        items.append(
                            (
                                (times[2 * r], ints[offset], ints[offset + 1]),
                                src,
                                dest,
                                0,
                                r,
                            )
                        )
                for r, record in enumerate(slow):
                    items.append((record[0], src, dest, 1, r))
                    if record[1] < incoming_min:
                        incoming_min = record[1]
        items.sort()
        for _mkey, src, dest, lane, r in items:
            batch = routed[(src, dest)]
            (batch[5] if lane == 0 else batch[6])[r] = global_seq
            global_seq += 1
        for (src, dest), batch in routed.items():
            shm, times, ints, offs, slow, fast_keys, slow_keys = batch
            if shm:
                exchange.write_keys(src, dest, parity, fast_keys)
                pending_in[dest][src] = ("shm", parity, slow, slow_keys)
            else:
                pending_in[dest][src] = (
                    times,
                    ints,
                    offs,
                    array("q", fast_keys),
                    slow,
                    slow_keys,
                )
        return incoming_min, global_seq

    def _raise_leader_conflict(
        self, first: tuple[int, float, int], second: tuple[int, float, int]
    ) -> None:
        if first[1] > second[1]:
            first, second = second, first
        first_id = self.topology.id_at(first[0])
        second_id = self.topology.id_at(second[0])
        raise ProtocolViolation(
            f"{self.protocol.name}: node {second_id} declared leader at "
            f"t={second[1]} but node {first_id} already had"
        )

    # -- result assembly ---------------------------------------------------

    def _build_result(self, finals: list[dict[str, Any]]) -> ElectionResult:
        by_type: Counter = Counter()
        for final in finals:
            by_type.update(final["type_counts"])
        first_wakes = [
            f["first_wake"] for f in finals if f["first_wake"] is not None
        ]
        last_wakes = [
            f["last_wake"] for f in finals if f["last_wake"] is not None
        ]
        first_wake = min(first_wakes) if first_wakes else None
        last_wake = max(last_wakes) if last_wakes else None
        leaders = [f["leader"] for f in finals if f["leader"] is not None]
        if len(leaders) > 1:
            self._raise_leader_conflict(leaders[0], leaders[1])
        leader = leaders[0] if leaders else None
        leader_position = leader[0] if leader else None
        elected_at = leader[1] if leader else None
        election_depth = leader[2] if leader else None
        election_time = (
            elected_at - first_wake
            if elected_at is not None and first_wake is not None
            else float("inf")
        )
        base_positions = tuple(
            position for final in finals for position in final["base_positions"]
        )
        snapshots: tuple = ()
        if self._cfg.collect_snapshots:
            snapshots = tuple(
                snapshot
                for final in finals
                for _position, snapshot in final["snapshots"]
            )
        quiescent_at = max(final["last_time"] for final in finals)
        crashed = sorted(
            position for final in finals for position in final["crashed"]
        )
        metrics_sums = {
            name: sum(final[name] for final in finals)
            for name in (
                "messages_total",
                "bits_total",
                "dropped",
                "duplicated",
                "jittered",
                "retransmissions",
                "duplicates_suppressed",
                "packets_abandoned",
            )
        }
        return ElectionResult(
            n=self.topology.n,
            protocol=self.protocol.describe(),
            leader_id=(
                self.topology.id_at(leader_position)
                if leader_position is not None
                else None
            ),
            leader_position=leader_position,
            elected_at=elected_at,
            election_time=election_time,
            election_depth=election_depth,
            messages_total=metrics_sums["messages_total"],
            bits_total=metrics_sums["bits_total"],
            messages_by_type=dict(by_type),
            max_depth=max(final["max_depth"] for final in finals),
            quiescent_at=quiescent_at,
            first_wake_time=first_wake,
            last_wake_time=last_wake,
            base_positions=base_positions,
            failed_positions=tuple(sorted(self._cfg.failed_positions)),
            node_snapshots=snapshots,
            trace=Tracer(enabled=False),
            crashed_positions=tuple(crashed),
            max_channel_load=max(
                final["max_channel_load"] for final in finals
            ),
            messages_dropped=metrics_sums["dropped"],
            messages_duplicated=metrics_sums["duplicated"],
            messages_jittered=metrics_sums["jittered"],
            retransmissions=metrics_sums["retransmissions"],
            duplicates_suppressed=metrics_sums["duplicates_suppressed"],
            packets_abandoned=metrics_sums["packets_abandoned"],
        )

    @property
    def aggregate_events_per_sec(self) -> float:
        """Sum of per-shard busy-time event rates (see docs/performance.md).

        The capacity metric BENCH_kernel.json publishes: each shard's
        events divided by the wall seconds it spent *processing* (window
        barriers and coordinator time excluded), summed over shards.  On a
        multi-core host this is the deliverable aggregate rate; on a
        single-core container it is the projected one (shards time-slice,
        so per-shard busy rates are unaffected by contention).
        """
        events = self.stats.get("events_per_shard") or []
        busy = self.stats.get("busy_per_shard") or []
        return sum(
            e / b for e, b in zip(events, busy) if b > 0.0
        )


def run_sharded_election(
    protocol: ElectionProtocol,
    topology: CompleteTopology,
    *,
    shards: int,
    workers: int | None = None,
    engine: str | None = None,
    delays: DelayModel | None = None,
    wakeup: WakeupSchedule | WakeupFactory | None = None,
    failed_positions: frozenset[int] | set[int] = frozenset(),
    crash_schedule: Mapping[int, float] | None = None,
    faults: FaultPlan | None = None,
    seed: int = 0,
    max_events: int = 5_000_000,
    collect_snapshots: bool = True,
    require_leader: bool = True,
) -> ElectionResult:
    """One-shot convenience wrapper: build a :class:`ShardedNetwork`, run it.

    The keyword signature mirrors :func:`repro.sim.network.run_election`
    minus the serial-only options (``trace``, ``until``) and plus the
    sharding controls.
    """
    network = ShardedNetwork(
        protocol,
        topology,
        shards=shards,
        workers=workers,
        engine=engine,
        delays=delays,
        wakeup=wakeup,
        failed_positions=failed_positions,
        crash_schedule=crash_schedule,
        faults=faults,
        seed=seed,
        max_events=max_events,
        collect_snapshots=collect_snapshots,
    )
    return network.run(require_leader=require_leader)
