"""Sharded simulation kernel: conservative time-window synchronization.

The serial kernel (:mod:`repro.sim.network`) interprets one global event
heap; beyond ~10⁵ nodes that single loop is the bottleneck.  This module
partitions the node set across *shards* — each with its own
:class:`~repro.sim.scheduler.Scheduler`, channel table and metrics — and
runs them under **conservative time-window synchronization**:

* The *lookahead* ``L`` is the delay model's declared ``min_latency``.
  Every message sent at time ``t`` arrives no earlier than ``t + L``
  (the FIFO clamp and fault jitter only push arrivals later), so events
  inside a window ``[T, T + L)`` can never affect that same window.
* Each shard therefore executes its window events independently, buffering
  every send — intra- and inter-shard alike — instead of scheduling it.
* At the window barrier the coordinator globally orders the buffered
  sends, assigns each a global sequence key, and routes the batches to the
  destination shards as **packed integer/float arrays** (the fast lane;
  nested or tuple-carrying messages ride a pickled slow lane).

**Digest contract.**  A sharded run must be indistinguishable from the
serial run in every deterministic result field
(``tests/sim/determinism_cases.fingerprint``).  The serial kernel's total
event order is ``(time, tiebreak, seq)`` where ``seq`` is the global
scheduling order; the coordinator reconstructs exactly that order from
per-send *merge keys*:

* an event dispatched from a globally-keyed entry has rank
  ``(time, key)``;
* a timer fired at ``t`` set by an event of rank ``R`` as its ``i``-th
  timer has rank ``(t, TIMER_MARK, R, i)`` — ``TIMER_MARK`` exceeds every
  delivery key and is negative for none, so ranks of any two *distinct*
  events always compare without reaching ragged positions;
* the ``j``-th send of an event of rank ``R`` carries merge key
  ``R + (j,)``.

Sorting one window's sends by merge key reproduces the serial scheduling
order of those sends; assigning consecutive global keys in that order (the
counter persists across windows) reproduces the serial delivery order at
every destination.  Wake nudges and crashes get their global keys up
front, in the same plane order as the serial kernel (crashes < wakes <
deliveries < timers at equal times).

What is *not* supported sharded: delay models that consume the shared run
RNG (``UniformDelay`` — a global draw order cannot be reproduced
per-shard), models with no declared positive ``min_latency``, tracing, and
``until`` horizons.  Fault plans work unchanged: their per-directed-link
RNG streams are keyed by ``(seed, src, dst)`` and every link is owned by
exactly one (sender-side) shard, so draws are independent of execution
order by construction.

The livelock budget is **global**: before each window every shard is
granted only what remains of the whole run's ``max_events``, and the
coordinator re-checks the aggregate at each barrier — k shards can never
overrun the serial budget k×.
"""

from __future__ import annotations

import heapq
import os
import random
from array import array
from collections import Counter
from collections.abc import Callable, Mapping
from dataclasses import dataclass, fields as _dataclass_fields
from time import perf_counter
from typing import Any

from repro.core import errors as _errors
from repro.core.errors import (
    ConfigurationError,
    LivelockError,
    ProtocolViolation,
    SimulationError,
)
from repro.core.messages import Message, message_bits
from repro.core.node import Node, NodeContext
from repro.core.protocol import ElectionProtocol
from repro.core.results import ElectionResult
from repro.harness.parallel import configured_processes, fork_context
from repro.sim.delays import ConstantDelay, DelayModel
from repro.sim.events import TIEBREAK_SHIFT
from repro.sim.faults import FaultPlan
from repro.sim.link import ChannelTable
from repro.sim.metrics import MetricsCollector
from repro.sim.network import (
    WakeupFactory,
    WakeupSchedule,
    merge_crash_schedule,
    resolve_wakeup,
    validate_failure_config,
)
from repro.sim.scheduler import Scheduler
from repro.sim.tracing import Tracer
from repro.topology.complete import CompleteTopology

#: Rank marker for timer-sourced events; above every delivery key (< 2**48).
TIMER_MARK = 1 << TIEBREAK_SHIFT
#: Global key planes for the setup entries, mirroring the serial kernel's
#: tiebreaks (wake -1, crash -2).
_WAKE_BASE = -(1 << TIEBREAK_SHIFT)
_CRASH_BASE = -(2 << TIEBREAK_SHIFT)

#: 2-bit field tags in the packed fast lane.
_TAG_INT, _TAG_TRUE, _TAG_FALSE, _TAG_NONE = 0, 1, 2, 3
#: Fast-lane integer-array slots per record before the message fields.
_REC_HEAD = 9
#: Largest magnitude packed verbatim; wider ints take the slow lane.
_INT_LIMIT = 1 << 62


# ---------------------------------------------------------------------------
# The packed-array message codec (the inter-shard fast lane).
# ---------------------------------------------------------------------------


class MessageCodec:
    """Packs flat protocol messages into integer lanes.

    A message is *flat* when every dataclass field is an ``int`` (not
    ``bool``), ``True``, ``False`` or ``None`` — which covers every hot
    protocol message in the library.  Flat messages cross shard boundaries
    as ``(type_id, tagword, int fields...)`` inside one ``array('q')``;
    everything else (overlay envelopes with nested messages, tuple fields)
    is relayed object-wise on the slow lane with identical semantics.

    The registry is built once in the coordinator **before** forking, so
    every worker inherits the same ``type_id`` assignment; ids are an
    encoding detail and never influence results.
    """

    def __init__(self) -> None:
        classes: list[type] = []
        seen: set[type] = set()
        stack: list[type] = [Message]
        while stack:
            for sub in stack.pop().__subclasses__():
                if sub not in seen:
                    seen.add(sub)
                    classes.append(sub)
                    stack.append(sub)
        classes.sort(key=lambda cls: (cls.__module__, cls.__qualname__))
        self._classes = classes
        self._type_ids = {cls: i for i, cls in enumerate(classes)}
        self._field_names = [
            tuple(f.name for f in _dataclass_fields(cls)) for cls in classes
        ]
        self._cache: dict[tuple, Message] = {}

    def pack(self, message: Message) -> tuple[int, int, list[int]] | None:
        """``(type_id, tagword, int fields)``, or None for the slow lane."""
        type_id = self._type_ids.get(type(message))
        if type_id is None:
            return None
        names = self._field_names[type_id]
        if len(names) > 30:  # tagword is 2 bits per field in one int
            return None
        tags = 0
        ints: list[int] = []
        shift = 0
        for name in names:
            value = getattr(message, name)
            if value is None:
                tags |= _TAG_NONE << shift
            elif value is True:
                tags |= _TAG_TRUE << shift
            elif value is False:
                tags |= _TAG_FALSE << shift
            elif type(value) is int and -_INT_LIMIT < value < _INT_LIMIT:
                ints.append(value)
            else:
                return None
            shift += 2
        return type_id, tags, ints

    def unpack(self, type_id: int, tags: int, ints: tuple[int, ...]) -> Message:
        """Rebuild (and memoise) the message for a packed record.

        Messages are immutable values, so destinations may share one
        instance across deliveries — the serial kernel already delivers
        the sender's single object to every recipient of a broadcast.
        """
        key = (type_id, tags, ints)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        names = self._field_names[type_id]
        values: list[Any] = []
        next_int = iter(ints).__next__
        shift = 0
        for _ in names:
            tag = (tags >> shift) & 3
            if tag == _TAG_INT:
                values.append(next_int())
            elif tag == _TAG_TRUE:
                values.append(True)
            elif tag == _TAG_FALSE:
                values.append(False)
            else:
                values.append(None)
            shift += 2
        message = self._classes[type_id](*values)
        if len(self._cache) < 4096:
            self._cache[key] = message
        return message


class _OutBuffer:
    """One window's buffered sends from one shard to one destination shard."""

    __slots__ = ("times", "ints", "slow")

    def __init__(self) -> None:
        #: Fast lane, two doubles per record: (source time, arrival time).
        self.times = array("d")
        #: Fast lane, variable stride: ``src_key, send_idx, dest_pos,
        #: far_port, depth, sender_id, type_id, tagword, nfields, fields...``
        self.ints = array("q")
        #: Slow lane: ``(merge_key, arrival, dest_pos, far_port, depth,
        #: sender_id, message)`` tuples.
        self.slow: list[tuple] = []


# ---------------------------------------------------------------------------
# The run configuration (inherited by forked workers, never pickled).
# ---------------------------------------------------------------------------


@dataclass
class _RunConfig:
    protocol: ElectionProtocol
    topology: CompleteTopology
    delays: DelayModel
    failed_positions: frozenset[int]
    crash_schedule: dict[int, float]
    faults: FaultPlan | None
    seed: int
    max_events: int
    shards: int
    collect_snapshots: bool
    codec: MessageCodec
    #: Per-shard initial entries: ``(time, global_key, position)``.
    wakes: list[list[tuple[float, int, int]]]
    crashes: list[list[tuple[float, int, int]]]


def _shard_bounds(n: int, shards: int, index: int) -> tuple[int, int]:
    """Positions owned by shard ``index``: ``shard_of(p) = p * shards // n``."""
    lo = (index * n + shards - 1) // shards
    hi = ((index + 1) * n + shards - 1) // shards
    return lo, hi


class _ShardContext(NodeContext):
    """The capability handle handed to one node of one shard.

    Mirrors the serial ``_BoundContext`` exactly, except that sends are
    buffered at the window barrier instead of scheduled, and tracing is a
    no-op (sharded runs refuse ``trace=True`` up front).
    """

    def __init__(self, shard: "_Shard", position: int) -> None:
        topology = shard.topology
        self._shard = shard
        self._position = position
        self.node_id = topology.id_at(position)
        self.n = topology.n
        self.num_ports = topology.num_ports
        self.has_sense_of_direction = topology.sense_of_direction

    def send(self, port: int, message: Message) -> None:  # noqa: D102
        self._shard._transmit(self._position, port, message)

    def port_label(self, port: int) -> int | None:  # noqa: D102
        return self._shard.topology.label(self._position, port)

    def port_with_label(self, distance: int) -> int:  # noqa: D102
        return self._shard.topology.port_with_label(self._position, distance)

    def now(self) -> float:  # noqa: D102
        return self._shard.scheduler.now

    def declare_leader(self) -> None:  # noqa: D102
        self._shard._on_leader_declared(self._position)

    def set_timer(self, delay: float, callback: Callable[[], None]) -> None:
        """Arm a one-shot timer; see :meth:`NodeContext.set_timer`."""
        self._shard._schedule_timer(self._position, delay, callback)

    def count(self, metric: str, delta: int = 1) -> None:  # noqa: D102
        self._shard.metrics.bump(metric, delta)

    def trace(self, kind: str, **detail: Any) -> None:  # noqa: D102
        pass


class _Shard:
    """One shard's runtime: nodes, scheduler (timers), channels, metrics."""

    def __init__(self, cfg: _RunConfig, index: int) -> None:
        self.cfg = cfg
        self.index = index
        self.topology = cfg.topology
        self.scheduler = Scheduler(max_events=cfg.max_events)
        self.metrics = MetricsCollector()
        self.channels = ChannelTable()
        self.codec = cfg.codec
        self.failed_positions = cfg.failed_positions
        self._crashed: set[int] = set()
        self._has_failures = bool(cfg.failed_positions) or bool(
            cfg.crash_schedule
        )
        self._faults = cfg.faults.bind() if cfg.faults is not None else None
        # Never consumed: shardable delay models ignore the rng argument.
        self._rng = random.Random(0)
        self._ids = cfg.topology.ids
        self._num_ports = cfg.topology.num_ports
        self._n = cfg.topology.n
        self._shards = cfg.shards
        self._messages_total = 0
        self._bits_total = 0
        self._type_counts: dict[str, int] = {}
        self._max_depth = 0
        self._dropped = 0
        self._duplicated = 0
        self._jittered = 0
        self._channel_of = self.channels.channel
        self._const_latency = (
            cfg.delays.delay
            if type(cfg.delays) is ConstantDelay
            and type(cfg.delays).gap is DelayModel.gap
            else None
        )
        self._current_depth = 0
        self._current_rank: tuple = (0.0, 0)
        self._send_seq = 0
        self._timer_seq = 0
        self._leader: tuple[int, float, int] | None = None
        self._last_time = 0.0
        self._busy = 0.0
        self._out: dict[int, _OutBuffer] = {}

        self.lo, self.hi = _shard_bounds(self._n, cfg.shards, index)
        protocol = cfg.protocol
        self.nodes: dict[int, Node] = {
            position: protocol.create_node(_ShardContext(self, position))
            for position in range(self.lo, self.hi)
        }
        #: Globally-keyed entries waiting for their window, serial layout:
        #: ``(time, key, action, depth, *payload)``.
        self.future: list[tuple] = [
            (time, key, self._wake_entry, 0, position)
            for time, key, position in cfg.wakes[index]
        ] + [
            (time, key, self._crash_entry, 0, position)
            for time, key, position in cfg.crashes[index]
        ]

    # -- the send path (mirrors Network._transmit, buffered) ---------------

    def _emit(
        self,
        arrival: float,
        dest_pos: int,
        far_port: int,
        message: Message,
        sender_id: int,
    ) -> None:
        depth = self._current_depth + 1
        rank = self._current_rank
        idx = self._send_seq
        self._send_seq = idx + 1
        dest_shard = dest_pos * self._shards // self._n
        buf = self._out.get(dest_shard)
        if buf is None:
            buf = self._out[dest_shard] = _OutBuffer()
        packed = self.codec.pack(message) if len(rank) == 2 else None
        if packed is not None:
            type_id, tags, field_ints = packed
            buf.times.append(rank[0])
            buf.times.append(arrival)
            buf.ints.extend(
                (
                    rank[1],
                    idx,
                    dest_pos,
                    far_port,
                    depth,
                    sender_id,
                    type_id,
                    tags,
                    len(field_ints),
                )
            )
            if field_ints:
                buf.ints.extend(field_ints)
        else:
            buf.slow.append(
                (
                    rank + (idx,),
                    arrival,
                    dest_pos,
                    far_port,
                    depth,
                    sender_id,
                    message,
                )
            )

    def _transmit(self, position: int, port: int, message: Message) -> None:
        if self._faults is not None:
            self._transmit_faulty(position, port, message)
            return
        if not 0 <= port < self._num_ports:
            raise SimulationError(
                f"node {self._ids[position]} used invalid port {port}"
            )
        bits = message_bits(message, self._n)
        self._messages_total += 1
        self._bits_total += bits
        type_name = message.type_name
        counts = self._type_counts
        counts[type_name] = counts.get(type_name, 0) + 1
        topology = self.topology
        far = topology.neighbor(position, port)
        far_port = topology.reverse_port(position, port)
        sender_id = self._ids[position]
        now = self.scheduler.now
        channel = self._channel_of(sender_id, self._ids[far])
        latency = self._const_latency
        if latency is not None:
            arrival = now + latency
            if arrival < channel.last_arrival:
                arrival = channel.last_arrival
            channel.last_arrival = arrival
            channel.messages_sent += 1
        else:
            arrival = channel.arrival_time(
                message, now, self.cfg.delays, self._rng
            )
        self._emit(arrival, far, far_port, message, sender_id)

    def _transmit_faulty(
        self, position: int, port: int, message: Message
    ) -> None:
        if not 0 <= port < self._num_ports:
            raise SimulationError(
                f"node {self._ids[position]} used invalid port {port}"
            )
        bits = message_bits(message, self._n)
        self._messages_total += 1
        self._bits_total += bits
        type_name = message.type_name
        counts = self._type_counts
        counts[type_name] = counts.get(type_name, 0) + 1
        topology = self.topology
        far = topology.neighbor(position, port)
        far_port = topology.reverse_port(position, port)
        sender_id = self._ids[position]
        receiver_id = self._ids[far]
        now = self.scheduler.now
        channel = self._channel_of(sender_id, receiver_id)
        arrival = channel.arrival_time(message, now, self.cfg.delays, self._rng)
        copies, jitter, dup_jitter, _reason = self._faults.judge(
            sender_id, receiver_id, now
        )
        if copies == 0:
            self._dropped += 1
            channel.messages_dropped += 1
            return
        if jitter > 0.0:
            self._jittered += 1
        self._emit(arrival + jitter, far, far_port, message, sender_id)
        if copies == 2:
            self._duplicated += 1
            channel.messages_duplicated += 1
            self._emit(arrival + dup_jitter, far, far_port, message, sender_id)

    def _schedule_timer(
        self, position: int, delay: float, callback: Callable[[], None]
    ) -> None:
        if delay < 0:
            raise SimulationError(f"negative timer delay {delay}")
        fire = self.scheduler.now + delay
        rank = (fire, TIMER_MARK, self._current_rank, self._timer_seq)
        self._timer_seq += 1
        self.scheduler.schedule_payload(
            fire,
            self._timer_entry,
            self._current_depth,
            (position, callback, rank),
            1,
        )

    # -- dispatch handlers (mirror the serial kernel's) --------------------

    def _wake_entry(self, entry: tuple) -> None:
        position = entry[4]
        node = self.nodes[position]
        if position not in self._crashed and not node.awake:
            self.metrics.on_wake(self.scheduler.now)
            node.wake(spontaneous=True)

    def _crash_entry(self, entry: tuple) -> None:
        self._crashed.add(entry[4])

    def _timer_entry(self, entry: tuple) -> None:
        position = entry[4]
        if self._has_failures and (
            position in self.failed_positions or position in self._crashed
        ):
            return
        self._current_depth = entry[3]
        self._current_rank = entry[6]
        entry[5]()

    def _deliver_entry(self, entry: tuple) -> None:
        depth = entry[3]
        position = entry[4]
        if depth > self._max_depth:
            self._max_depth = depth
        if self._has_failures and (
            position in self.failed_positions or position in self._crashed
        ):
            return
        node = self.nodes[position]
        if not node.awake:
            self.metrics.on_wake(self.scheduler.now)
        self._current_depth = depth
        node.receive(entry[5], entry[6])

    def _on_leader_declared(self, position: int) -> None:
        if self._leader is not None and self._leader[0] != position:
            first = self.topology.id_at(self._leader[0])
            second = self.topology.id_at(position)
            raise ProtocolViolation(
                f"{self.cfg.protocol.name}: node {second} declared leader at "
                f"t={self.scheduler.now} but node {first} already had"
            )
        if self._leader is None:
            self._leader = (
                position,
                self.scheduler.now,
                self._current_depth,
            )

    # -- the window loop ---------------------------------------------------

    def _decode_incoming(self, incoming: list[tuple | None]) -> None:
        future = self.future
        deliver = self._deliver_entry
        unpack = self.codec.unpack
        for batch in incoming:
            if batch is None:
                continue
            times, ints, fast_keys, slow, slow_keys = batch
            offset = 0
            for r, key in enumerate(fast_keys):
                nfields = ints[offset + 8]
                message = unpack(
                    ints[offset + 6],
                    ints[offset + 7],
                    tuple(ints[offset + _REC_HEAD : offset + _REC_HEAD + nfields]),
                )
                future.append(
                    (
                        times[2 * r + 1],
                        key,
                        deliver,
                        ints[offset + 4],
                        ints[offset + 2],
                        ints[offset + 3],
                        message,
                        ints[offset + 5],
                    )
                )
                offset += _REC_HEAD + nfields
            for record, key in zip(slow, slow_keys):
                future.append(
                    (
                        record[1],
                        key,
                        deliver,
                        record[4],
                        record[2],
                        record[3],
                        record[6],
                        record[5],
                    )
                )

    def run_window(
        self,
        start: float,
        end: float,
        budget: int,
        incoming: list[tuple | None],
    ) -> tuple[dict[int, tuple], dict[str, Any]]:
        """Execute every owned event with time in ``[start, end)``.

        ``budget`` is the whole run's remaining event allowance — the
        global livelock budget, not a per-shard one.  Returns the buffered
        outgoing sends (keyed by destination shard) and window stats.
        """
        t0 = perf_counter()
        self._decode_incoming(incoming)
        scheduler = self.scheduler
        scheduler.set_max_events(scheduler.events_processed + budget)
        future = self.future
        if future:
            due = [e for e in future if e[0] < end]
            if len(due) == len(future):
                self.future = []
            elif due:
                self.future = [e for e in future if e[0] >= end]
            due.sort()
        else:
            due = []
        self._out = {}
        heap = scheduler._queue.heap  # timers only; deliveries stay in lists
        heappop = heapq.heappop
        processed = 0
        i = 0
        ndue = len(due)
        while True:
            if i < ndue:
                entry = due[i]
                if heap and heap[0][0] < end and heap[0] < entry:
                    entry = heappop(heap)
                else:
                    i += 1
            elif heap and heap[0][0] < end:
                entry = heappop(heap)
            else:
                break
            scheduler._now = entry[0]
            processed += 1
            if processed > budget:
                raise LivelockError(
                    f"event budget of {self.cfg.max_events} exhausted at "
                    f"t={entry[0]}; the protocol is livelocked"
                )
            self._send_seq = 0
            self._timer_seq = 0
            self._current_rank = (entry[0], entry[1])
            self._current_depth = 0
            entry[2](entry)
        if processed:
            self._last_time = scheduler.now
            scheduler.consume_budget(processed)
        self._busy += perf_counter() - t0
        next_time = None
        if self.future:
            next_time = min(e[0] for e in self.future)
        if heap and (next_time is None or heap[0][0] < next_time):
            next_time = heap[0][0]
        out = {
            dest: (buf.times, buf.ints, buf.slow)
            for dest, buf in self._out.items()
        }
        self._out = {}
        stats = {
            "processed": processed,
            "next_time": next_time,
            "last_time": self._last_time,
            "leader": self._leader,
        }
        return out, stats

    def finish(self) -> dict[str, Any]:
        """Final fold of this shard's accounting, for the coordinator."""
        metrics = self.metrics
        return {
            "messages_total": self._messages_total,
            "bits_total": self._bits_total,
            "type_counts": self._type_counts,
            "max_depth": self._max_depth,
            "dropped": self._dropped,
            "duplicated": self._duplicated,
            "jittered": self._jittered,
            "retransmissions": metrics.retransmissions,
            "duplicates_suppressed": metrics.duplicates_suppressed,
            "packets_abandoned": metrics.packets_abandoned,
            "first_wake": metrics.first_wake_time,
            "last_wake": metrics.last_wake_time,
            "leader": self._leader,
            "processed": self.scheduler.events_processed,
            "busy": self._busy,
            "last_time": self._last_time,
            "max_channel_load": self.channels.max_load,
            "base_positions": [
                position
                for position in range(self.lo, self.hi)
                if self.nodes[position].is_base
            ],
            "crashed": sorted(self._crashed),
            "snapshots": (
                [
                    (position, self.nodes[position].snapshot())
                    for position in range(self.lo, self.hi)
                ]
                if self.cfg.collect_snapshots
                else None
            ),
        }


# ---------------------------------------------------------------------------
# Worker transport: in-process handles and forked pipe workers.
# ---------------------------------------------------------------------------


class _LocalHandle:
    """Drives one shard in-process (the REPRO_PARALLEL=0 / 1-CPU mode)."""

    def __init__(self, cfg: _RunConfig, index: int) -> None:
        self._shard = _Shard(cfg, index)

    def window(self, start, end, budget, incoming) -> None:
        self._reply = self._shard.run_window(start, end, budget, incoming)

    def collect(self):
        return self._reply

    def finish(self) -> dict[str, Any]:
        return self._shard.finish()

    def close(self) -> None:
        pass


def _worker_main(conn, cfg: _RunConfig, index: int) -> None:
    """Forked worker loop: build the shard post-fork, serve window ops."""
    try:
        shard = _Shard(cfg, index)
        while True:
            op = conn.recv()
            if op[0] == "window":
                conn.send(("done",) + shard.run_window(op[1], op[2], op[3], op[4]))
            elif op[0] == "finish":
                conn.send(("result", shard.finish()))
                return
            else:
                return
    except BaseException as exc:  # relayed and re-raised by the parent
        import traceback

        try:
            conn.send(
                ("error", type(exc).__name__, str(exc), traceback.format_exc())
            )
        except Exception:
            pass
    finally:
        conn.close()


class _ForkHandle:
    """Drives one shard in a forked worker over a pipe."""

    def __init__(self, context, cfg: _RunConfig, index: int) -> None:
        self._conn, child = context.Pipe()
        self._process = context.Process(
            target=_worker_main, args=(child, cfg, index), daemon=True
        )
        self._process.start()
        child.close()

    def _recv(self):
        try:
            reply = self._conn.recv()
        except EOFError:
            raise SimulationError(
                "shard worker exited unexpectedly (killed or crashed hard)"
            ) from None
        if reply[0] == "error":
            _, name, message, tb = reply
            exc_type = getattr(_errors, name, None)
            if exc_type is None or not (
                isinstance(exc_type, type) and issubclass(exc_type, BaseException)
            ):
                raise SimulationError(f"shard worker failed: {message}\n{tb}")
            raise exc_type(message)
        return reply

    def window(self, start, end, budget, incoming) -> None:
        self._conn.send(("window", start, end, budget, incoming))

    def collect(self):
        reply = self._recv()
        return reply[1], reply[2]

    def finish(self) -> dict[str, Any]:
        self._conn.send(("finish",))
        return self._recv()[1]

    def close(self) -> None:
        try:
            self._conn.close()
        except Exception:
            pass
        if self._process.is_alive():
            self._process.terminate()
        self._process.join(timeout=5)


# ---------------------------------------------------------------------------
# The coordinator.
# ---------------------------------------------------------------------------


class ShardedNetwork:
    """One runnable sharded election (digest-identical to :class:`Network`).

    ``workers=None`` auto-selects: forked shard workers when
    ``REPRO_PARALLEL`` permits, ``fork`` is available and the host has
    more than one CPU; in-process shards otherwise.  ``workers=0`` forces
    in-process execution, any positive value forces one forked worker per
    shard.  Both modes run the identical window/merge pipeline, so their
    results are equal by construction.

    After :meth:`run`, :attr:`stats` holds the kernel-level numbers the
    benchmarks publish (per-shard busy seconds and event counts, window
    count, wall time).
    """

    def __init__(
        self,
        protocol: ElectionProtocol,
        topology: CompleteTopology,
        *,
        shards: int,
        workers: int | None = None,
        delays: DelayModel | None = None,
        wakeup: WakeupSchedule | WakeupFactory | None = None,
        failed_positions: frozenset[int] | set[int] = frozenset(),
        crash_schedule: Mapping[int, float] | None = None,
        faults: FaultPlan | None = None,
        seed: int = 0,
        max_events: int = 5_000_000,
        collect_snapshots: bool = True,
    ) -> None:
        protocol.validate(topology)
        if not isinstance(shards, int) or not 1 <= shards <= topology.n:
            raise ConfigurationError(
                f"shards must be an integer in [1, n={topology.n}], "
                f"got {shards!r}"
            )
        delays = delays if delays is not None else ConstantDelay(1.0)
        if delays.uses_run_rng:
            raise ConfigurationError(
                f"{type(delays).__name__} consumes the shared run RNG; "
                "sharded execution cannot reproduce a global draw order "
                "(use ConstantDelay or a HookDelay with min_latency)"
            )
        lookahead = delays.min_latency
        if lookahead is None or lookahead <= 0.0:
            raise ConfigurationError(
                f"{type(delays).__name__} declares no positive min_latency; "
                "conservative windows need a strictly positive lookahead"
            )
        self.protocol = protocol
        self.topology = topology
        self.lookahead = float(lookahead)
        self.shards = shards
        self.max_events = max_events
        failed = frozenset(failed_positions)
        crashes = merge_crash_schedule(crash_schedule, faults)
        validate_failure_config(topology.n, failed, crashes)

        rng = random.Random(seed)
        schedule = resolve_wakeup(wakeup, topology, failed, rng)
        n = topology.n
        wakes: list[list[tuple[float, int, int]]] = [[] for _ in range(shards)]
        for i, (position, time) in enumerate(schedule.items()):
            wakes[position * shards // n].append((time, _WAKE_BASE + i, position))
        crash_entries: list[list[tuple[float, int, int]]] = [
            [] for _ in range(shards)
        ]
        for j, (position, time) in enumerate(crashes.items()):
            crash_entries[position * shards // n].append(
                (time, _CRASH_BASE + j, position)
            )
        self._initial_min = min(
            min((t for t, _k, _p in entries), default=float("inf"))
            for entries in (
                [w + c for w, c in zip(wakes, crash_entries)]
            )
        )
        self._cfg = _RunConfig(
            protocol=protocol,
            topology=topology,
            delays=delays,
            failed_positions=failed,
            crash_schedule=crashes,
            faults=faults,
            seed=seed,
            max_events=max_events,
            shards=shards,
            collect_snapshots=collect_snapshots,
            codec=MessageCodec(),
            wakes=wakes,
            crashes=crash_entries,
        )
        if workers is None:
            env = configured_processes()
            forked = (
                env != 0
                and (env or os.cpu_count() or 1) > 1
                and fork_context() is not None
            )
        else:
            forked = workers > 0 and fork_context() is not None
        self._forked = forked
        self._ran = False
        self.stats: dict[str, Any] = {}

    # -- the barrier loop --------------------------------------------------

    def run(self, *, require_leader: bool = True) -> ElectionResult:
        """Drive every shard window-by-window to global quiescence."""
        if self._ran:
            raise SimulationError(
                "a ShardedNetwork instance can only run once"
            )
        self._ran = True
        wall0 = perf_counter()
        k = self.shards
        cfg = self._cfg
        if self._forked:
            context = fork_context()
            handles: list[Any] = [
                _ForkHandle(context, cfg, i) for i in range(k)
            ]
        else:
            handles = [_LocalHandle(cfg, i) for i in range(k)]
        try:
            finals = self._drive(handles)
        finally:
            for handle in handles:
                handle.close()
        result = self._build_result(finals)
        self.stats["wall_seconds"] = perf_counter() - wall0
        if require_leader:
            if cfg.collect_snapshots:
                result.verify()
            elif result.leader_id is None:
                raise SimulationError(
                    "no leader elected (snapshots were not collected, so "
                    "only the leader check ran)"
                )
        return result

    def _drive(self, handles: list[Any]) -> list[dict[str, Any]]:
        k = self.shards
        lookahead = self.lookahead
        max_events = self.max_events
        global_seq = 0
        total_processed = 0
        windows = 0
        leader: tuple[int, float, int] | None = None
        leader_shard = -1
        #: pending_in[dest][src]: batch routed but not yet delivered.
        pending_in: list[list[tuple | None]] = [
            [None] * k for _ in range(k)
        ]
        next_times: list[float | None] = [
            self._initial_min if self._initial_min != float("inf") else None
        ] * k
        incoming_min = float("inf")

        while True:
            start = incoming_min
            for t in next_times:
                if t is not None and t < start:
                    start = t
            if start == float("inf"):
                break
            end = start + lookahead
            budget = max_events - total_processed
            windows += 1
            for index, handle in enumerate(handles):
                handle.window(start, end, budget, pending_in[index])
            pending_in = [[None] * k for _ in range(k)]
            outs: list[dict[int, tuple]] = []
            for index, handle in enumerate(handles):
                out, stats = handle.collect()
                outs.append(out)
                total_processed += stats["processed"]
                next_times[index] = stats["next_time"]
                reported = stats["leader"]
                if reported is not None:
                    if leader is None:
                        leader, leader_shard = reported, index
                    elif leader_shard != index:
                        self._raise_leader_conflict(leader, reported)
            if total_processed > max_events:
                raise LivelockError(
                    f"event budget of {max_events} exhausted at t={start}; "
                    f"the protocol is livelocked (aggregate across "
                    f"{k} shard schedulers)"
                )
            incoming_min, global_seq = self._route(
                outs, pending_in, global_seq
            )

        finals = [handle.finish() for handle in handles]
        self.stats.update(
            {
                "shards": k,
                "forked": self._forked,
                "windows": windows,
                "events_total": total_processed,
                "events_per_shard": [f["processed"] for f in finals],
                "busy_per_shard": [f["busy"] for f in finals],
            }
        )
        return finals

    def _route(
        self,
        outs: list[dict[int, tuple]],
        pending_in: list[list[tuple | None]],
        global_seq: int,
    ) -> tuple[float, int]:
        """Globally order one window's sends and route them to their shards.

        Returns the earliest routed arrival time and the advanced global
        sequence counter.  The sort key is each record's merge key (see the
        module docstring); assigning consecutive keys in sorted order
        reproduces the serial kernel's scheduling order for these sends.
        """
        items: list[tuple] = []
        routed: dict[tuple[int, int], tuple] = {}
        incoming_min = float("inf")
        for src, out in enumerate(outs):
            for dest, (times, ints, slow) in out.items():
                n_fast = len(times) // 2
                fast_keys = [0] * n_fast
                slow_keys = [0] * len(slow)
                routed[(src, dest)] = (times, ints, slow, fast_keys, slow_keys)
                offset = 0
                for r in range(n_fast):
                    items.append(
                        (
                            (times[2 * r], ints[offset], ints[offset + 1]),
                            src,
                            dest,
                            0,
                            r,
                        )
                    )
                    arrival = times[2 * r + 1]
                    if arrival < incoming_min:
                        incoming_min = arrival
                    offset += _REC_HEAD + ints[offset + 8]
                for r, record in enumerate(slow):
                    items.append((record[0], src, dest, 1, r))
                    if record[1] < incoming_min:
                        incoming_min = record[1]
        items.sort()
        for _mkey, src, dest, lane, r in items:
            batch = routed[(src, dest)]
            (batch[3] if lane == 0 else batch[4])[r] = global_seq
            global_seq += 1
        for (src, dest), batch in routed.items():
            times, ints, slow, fast_keys, slow_keys = batch
            pending_in[dest][src] = (
                times,
                ints,
                array("q", fast_keys),
                slow,
                slow_keys,
            )
        return incoming_min, global_seq

    def _raise_leader_conflict(
        self, first: tuple[int, float, int], second: tuple[int, float, int]
    ) -> None:
        if first[1] > second[1]:
            first, second = second, first
        first_id = self.topology.id_at(first[0])
        second_id = self.topology.id_at(second[0])
        raise ProtocolViolation(
            f"{self.protocol.name}: node {second_id} declared leader at "
            f"t={second[1]} but node {first_id} already had"
        )

    # -- result assembly ---------------------------------------------------

    def _build_result(self, finals: list[dict[str, Any]]) -> ElectionResult:
        by_type: Counter = Counter()
        for final in finals:
            by_type.update(final["type_counts"])
        first_wakes = [
            f["first_wake"] for f in finals if f["first_wake"] is not None
        ]
        last_wakes = [
            f["last_wake"] for f in finals if f["last_wake"] is not None
        ]
        first_wake = min(first_wakes) if first_wakes else None
        last_wake = max(last_wakes) if last_wakes else None
        leaders = [f["leader"] for f in finals if f["leader"] is not None]
        if len(leaders) > 1:
            self._raise_leader_conflict(leaders[0], leaders[1])
        leader = leaders[0] if leaders else None
        leader_position = leader[0] if leader else None
        elected_at = leader[1] if leader else None
        election_depth = leader[2] if leader else None
        election_time = (
            elected_at - first_wake
            if elected_at is not None and first_wake is not None
            else float("inf")
        )
        base_positions = tuple(
            position for final in finals for position in final["base_positions"]
        )
        snapshots: tuple = ()
        if self._cfg.collect_snapshots:
            snapshots = tuple(
                snapshot
                for final in finals
                for _position, snapshot in final["snapshots"]
            )
        quiescent_at = max(final["last_time"] for final in finals)
        crashed = sorted(
            position for final in finals for position in final["crashed"]
        )
        metrics_sums = {
            name: sum(final[name] for final in finals)
            for name in (
                "messages_total",
                "bits_total",
                "dropped",
                "duplicated",
                "jittered",
                "retransmissions",
                "duplicates_suppressed",
                "packets_abandoned",
            )
        }
        return ElectionResult(
            n=self.topology.n,
            protocol=self.protocol.describe(),
            leader_id=(
                self.topology.id_at(leader_position)
                if leader_position is not None
                else None
            ),
            leader_position=leader_position,
            elected_at=elected_at,
            election_time=election_time,
            election_depth=election_depth,
            messages_total=metrics_sums["messages_total"],
            bits_total=metrics_sums["bits_total"],
            messages_by_type=dict(by_type),
            max_depth=max(final["max_depth"] for final in finals),
            quiescent_at=quiescent_at,
            first_wake_time=first_wake,
            last_wake_time=last_wake,
            base_positions=base_positions,
            failed_positions=tuple(sorted(self._cfg.failed_positions)),
            node_snapshots=snapshots,
            trace=Tracer(enabled=False),
            crashed_positions=tuple(crashed),
            max_channel_load=max(
                final["max_channel_load"] for final in finals
            ),
            messages_dropped=metrics_sums["dropped"],
            messages_duplicated=metrics_sums["duplicated"],
            messages_jittered=metrics_sums["jittered"],
            retransmissions=metrics_sums["retransmissions"],
            duplicates_suppressed=metrics_sums["duplicates_suppressed"],
            packets_abandoned=metrics_sums["packets_abandoned"],
        )

    @property
    def aggregate_events_per_sec(self) -> float:
        """Sum of per-shard busy-time event rates (see docs/performance.md).

        The capacity metric BENCH_kernel.json publishes: each shard's
        events divided by the wall seconds it spent *processing* (window
        barriers and coordinator time excluded), summed over shards.  On a
        multi-core host this is the deliverable aggregate rate; on a
        single-core container it is the projected one (shards time-slice,
        so per-shard busy rates are unaffected by contention).
        """
        events = self.stats.get("events_per_shard") or []
        busy = self.stats.get("busy_per_shard") or []
        return sum(
            e / b for e, b in zip(events, busy) if b > 0.0
        )


def run_sharded_election(
    protocol: ElectionProtocol,
    topology: CompleteTopology,
    *,
    shards: int,
    workers: int | None = None,
    delays: DelayModel | None = None,
    wakeup: WakeupSchedule | WakeupFactory | None = None,
    failed_positions: frozenset[int] | set[int] = frozenset(),
    crash_schedule: Mapping[int, float] | None = None,
    faults: FaultPlan | None = None,
    seed: int = 0,
    max_events: int = 5_000_000,
    collect_snapshots: bool = True,
    require_leader: bool = True,
) -> ElectionResult:
    """One-shot convenience wrapper: build a :class:`ShardedNetwork`, run it.

    The keyword signature mirrors :func:`repro.sim.network.run_election`
    minus the serial-only options (``trace``, ``until``) and plus the
    sharding controls.
    """
    network = ShardedNetwork(
        protocol,
        topology,
        shards=shards,
        workers=workers,
        delays=delays,
        wakeup=wakeup,
        failed_positions=failed_positions,
        crash_schedule=crash_schedule,
        faults=faults,
        seed=seed,
        max_events=max_events,
        collect_snapshots=collect_snapshots,
    )
    return network.run(require_leader=require_leader)
