"""Command-line interface: ``python -m repro``.

Subcommands::

    python -m repro list
    python -m repro run --protocol C --n 64 [--no-sense] [--seed 7]
    python -m repro replay --protocol A --n 8 [--messages]
    python -m repro scenario --protocol G --name chain --n 64
    python -m repro report [--quick] [--output EXPERIMENTS.md]

Kept deliberately thin: each subcommand is a few lines over the public API,
so it doubles as living documentation.
"""

from __future__ import annotations

import argparse
import sys

from repro import (
    complete_with_sense_of_direction,
    complete_without_sense,
    protocol_class,
    registered_protocols,
    run_election,
)
from repro.analysis.tables import render_table


def _cmd_list(args: argparse.Namespace) -> int:
    rows = []
    for name, cls in sorted(registered_protocols().items()):
        doc = (cls.__doc__ or "").strip().splitlines()[0]
        needs = "yes" if cls.needs_sense_of_direction else "no"
        rows.append((name, needs, doc))
    print(render_table(("protocol", "sense of direction", "summary"), rows))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    cls = protocol_class(args.protocol)
    if cls.needs_sense_of_direction or not args.no_sense:
        topology = complete_with_sense_of_direction(args.n)
    else:
        topology = complete_without_sense(args.n, seed=args.seed)
    result = run_election(cls(), topology, seed=args.seed)
    print(result.summary())
    rows = sorted(result.messages_by_type.items())
    print(render_table(("message type", "count"), rows))
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    from repro.analysis.replay import render_replay
    from repro.sim.network import Network

    cls = protocol_class(args.protocol)
    if cls.needs_sense_of_direction or not args.no_sense:
        topology = complete_with_sense_of_direction(args.n)
    else:
        topology = complete_without_sense(args.n, seed=args.seed)
    network = Network(cls(), topology, seed=args.seed, trace=True)
    result = network.run()
    print(render_replay(result, include_messages=args.messages))
    return 0


def _cmd_scenario(args: argparse.Namespace) -> int:
    from repro.harness.scenarios import SCENARIOS, run_scenario

    if args.name not in SCENARIOS:
        print(f"unknown scenario {args.name!r}; available:")
        for scenario in SCENARIOS.values():
            print(f"  {scenario.name:18s} {scenario.description}")
        return 2
    cls = protocol_class(args.protocol)
    result = run_scenario(cls(), args.name, args.n, seed=args.seed)
    print(f"scenario {args.name!r}: {SCENARIOS[args.name].description}")
    print(result.summary())
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list registered protocols")

    run_parser = sub.add_parser("run", help="run one election")
    run_parser.add_argument("--protocol", default="C")
    run_parser.add_argument("--n", type=int, default=64)
    run_parser.add_argument("--seed", type=int, default=0)
    run_parser.add_argument(
        "--no-sense", action="store_true",
        help="run on an unlabeled network (protocols that allow it)",
    )

    replay_parser = sub.add_parser(
        "replay", help="run a traced election and narrate it"
    )
    replay_parser.add_argument("--protocol", default="A")
    replay_parser.add_argument("--n", type=int, default=8)
    replay_parser.add_argument("--seed", type=int, default=0)
    replay_parser.add_argument("--no-sense", action="store_true")
    replay_parser.add_argument(
        "--messages", action="store_true", help="list every send/deliver"
    )

    scenario_parser = sub.add_parser(
        "scenario", help="run a protocol inside a named adversarial scenario"
    )
    scenario_parser.add_argument("--protocol", default="G")
    scenario_parser.add_argument("--name", default="chain")
    scenario_parser.add_argument("--n", type=int, default=64)
    scenario_parser.add_argument("--seed", type=int, default=0)

    report_parser = sub.add_parser(
        "report", help="regenerate EXPERIMENTS.md (see repro.harness.report)"
    )
    report_parser.add_argument("--quick", action="store_true")
    report_parser.add_argument("--output", default="EXPERIMENTS.md")

    args = parser.parse_args(argv)
    if args.command == "list":
        return _cmd_list(args)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "replay":
        return _cmd_replay(args)
    if args.command == "scenario":
        return _cmd_scenario(args)
    if args.command == "report":
        from repro.harness.report import main as report_main

        forwarded = ["--output", args.output]
        if args.quick:
            forwarded.append("--quick")
        return report_main(forwarded)
    parser.error(f"unknown command {args.command}")
    return 2


if __name__ == "__main__":
    sys.exit(main())
