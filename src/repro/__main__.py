"""Command-line interface: ``python -m repro``.

Subcommands::

    python -m repro list
    python -m repro run --protocol C --n 64 [--no-sense] [--seed 7]
    python -m repro run --protocol C --n 4096 --shards 8 [--shard-workers 0]
    python -m repro run --protocol C --n 4096 --shards 8 --engine vector
    python -m repro replay --protocol A --n 8 [--messages]
    python -m repro scenario --protocol G --name chain --n 64
    python -m repro report [--quick] [--output EXPERIMENTS.md]
    python -m repro verify --protocol A --n 4 [--max-states M] [--no-por]
    python -m repro verify --protocol A --n 6 --workers 4 [--symmetry census]
    python -m repro verify --protocol A --n 8 --fuzz 200 [--save-trace T.json]
    python -m repro verify --replay T.json [--shrink]
    python -m repro verify --stat [--confidence 0.99] [--trials 600]
    python -m repro lint [--format json|sarif] [--select/--ignore RPL0xx] [paths]
    python -m repro lint --flow [paths]
    python -m repro lint --capabilities [--check]
    python -m repro analyze [--protocol A] [--n 64] [--format json]
    python -m repro matrix --spec specs.toml [--outdir OUT] [--strict]
    python -m repro check --all [--quick] [--outdir OUT] [--spec FILE]
    python -m repro trends --baseline ci_baseline/ --current .

Kept deliberately thin: each subcommand is a few lines over the public API,
so it doubles as living documentation.
"""

from __future__ import annotations

import argparse
import sys

from repro import (
    complete_with_sense_of_direction,
    complete_without_sense,
    protocol_class,
    registered_protocols,
    run_election,
)
from repro.analysis.tables import render_table


def _cmd_list(args: argparse.Namespace) -> int:
    rows = []
    for name, cls in sorted(registered_protocols().items()):
        doc = (cls.__doc__ or "").strip().splitlines()[0]
        needs = "yes" if cls.needs_sense_of_direction else "no"
        rows.append((name, needs, doc))
    print(render_table(("protocol", "sense of direction", "summary"), rows))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    cls = protocol_class(args.protocol)
    if cls.needs_sense_of_direction or not args.no_sense:
        topology = complete_with_sense_of_direction(args.n)
    else:
        topology = complete_without_sense(args.n, seed=args.seed)
    if args.shards:
        from repro.sim.shard import run_sharded_election

        result = run_sharded_election(
            cls(), topology, seed=args.seed,
            shards=args.shards, workers=args.shard_workers,
            engine=args.engine,
        )
    else:
        result = run_election(cls(), topology, seed=args.seed)
    print(result.summary())
    rows = sorted(result.messages_by_type.items())
    print(render_table(("message type", "count"), rows))
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    from repro.analysis.replay import render_replay
    from repro.sim.network import Network

    cls = protocol_class(args.protocol)
    if cls.needs_sense_of_direction or not args.no_sense:
        topology = complete_with_sense_of_direction(args.n)
    else:
        topology = complete_without_sense(args.n, seed=args.seed)
    network = Network(cls(), topology, seed=args.seed, trace=True)
    result = network.run()
    print(render_replay(result, include_messages=args.messages))
    return 0


def _cmd_scenario(args: argparse.Namespace) -> int:
    from repro.harness.scenarios import SCENARIOS, run_scenario

    if args.name not in SCENARIOS:
        print(f"unknown scenario {args.name!r}; available:")
        for scenario in SCENARIOS.values():
            print(f"  {scenario.name:18s} {scenario.description}")
        return 2
    cls = protocol_class(args.protocol)
    result = run_scenario(cls(), args.name, args.n, seed=args.seed)
    print(f"scenario {args.name!r}: {SCENARIOS[args.name].description}")
    print(result.summary())
    return 0


def _verify_topology(args: argparse.Namespace):
    cls = protocol_class(args.protocol)
    if cls.needs_sense_of_direction or not args.no_sense:
        return cls(), complete_with_sense_of_direction(args.n)
    return cls(), complete_without_sense(args.n, seed=args.seed)


def _cmd_verify(args: argparse.Namespace) -> int:
    from repro.analysis.replay import render_schedule
    from repro.core.errors import ConfigurationError, ProtocolViolation
    from repro.verification import (
        explore_protocol,
        fuzz_protocol,
        load_trace,
        replay_trace,
        save_trace,
        shrink_trace,
    )

    if args.stat:
        from repro.verification.stat import verify_stat

        try:
            report = verify_stat(
                args.stat_protocols,
                ns=tuple(args.stat_ns),
                trials=args.trials,
                confidence=args.confidence,
                target=args.target,
            )
        except (ConfigurationError, ValueError) as error:
            print(f"refused: {error}", file=sys.stderr)
            return 2
        print(report.render())
        return 0 if report.passed else 1

    if args.replay is not None:
        trace = load_trace(args.replay)
        if args.shrink:
            trace = shrink_trace(trace)
            print(f"shrunk to {len(trace.choices)} choices")
        outcome = replay_trace(trace, record_log=True)
        print(render_schedule(trace, outcome))
        return 0 if outcome.ok else 1

    protocol, topology = _verify_topology(args)
    if args.fuzz:
        report = fuzz_protocol(
            protocol, topology, schedules=args.fuzz, seed=args.seed,
            fault_budget=args.fault_budget,
        )
        print(report)
        if report.ok:
            return 0
        violation = report.violations[0]
        print(f"{violation.kind} violation: {violation.message}")
        trace = shrink_trace(violation.trace, protocol)
        print(
            f"shrunk from {len(violation.trace.choices)} to "
            f"{len(trace.choices)} choices"
        )
        if args.save_trace:
            print(f"trace saved to {save_trace(trace, args.save_trace)}")
        outcome = replay_trace(trace, protocol, record_log=True)
        print(render_schedule(trace, outcome))
        return 1

    workers = args.workers
    if workers is None:
        from repro.harness.parallel import configured_processes

        workers = configured_processes()  # REPRO_PARALLEL, like run_sweep
    try:
        report = explore_protocol(
            protocol, topology,
            max_states=args.max_states, por=not args.no_por,
            symmetry=args.symmetry, workers=workers,
        )
    except ProtocolViolation as violation:
        print(f"VIOLATION: {violation}")
        return 1
    except ConfigurationError as error:
        print(f"refused: {error}", file=sys.stderr)
        return 2
    print(report)
    if report.canonical_states is not None:
        print(
            f"{report.canonical_states} canonical states modulo the "
            "topology's relabelling group"
        )
    return 0


def _cmd_matrix(args: argparse.Namespace) -> int:
    from repro.core.errors import ConfigurationError
    from repro.matrix import load_specs, run_matrix
    from repro.matrix.spec import curated_specs, expand_specs

    try:
        specs = load_specs(args.spec) if args.spec else curated_specs()
        if args.strict:
            expand_specs(specs, filter=False)  # raise on any illegal cell
    except ConfigurationError as error:
        print(f"refused: {error}", file=sys.stderr)
        return 2
    report = run_matrix(specs, outdir=args.outdir)
    print(report.render())
    return 0 if report.passed else 1


def _cmd_check(args: argparse.Namespace) -> int:
    from repro.core.errors import ConfigurationError
    from repro.matrix import check_all, load_specs

    if not args.all:
        print("nothing to check: pass --all", file=sys.stderr)
        return 2
    try:
        specs = load_specs(args.spec) if args.spec else None
        report = check_all(specs, quick=args.quick, outdir=args.outdir)
    except ConfigurationError as error:
        print(f"refused: {error}", file=sys.stderr)
        return 2
    print(report.render())
    return 0 if report.passed else 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list registered protocols")

    run_parser = sub.add_parser("run", help="run one election")
    run_parser.add_argument("--protocol", default="C")
    run_parser.add_argument("--n", type=int, default=64)
    run_parser.add_argument("--seed", type=int, default=0)
    run_parser.add_argument(
        "--no-sense", action="store_true",
        help="run on an unlabeled network (protocols that allow it)",
    )
    run_parser.add_argument(
        "--shards", type=int, default=0, metavar="K",
        help="run on the sharded kernel with K shards (digest-identical "
        "to serial; see docs/performance.md); 0 = the serial kernel",
    )
    run_parser.add_argument(
        "--shard-workers", type=int, default=None, metavar="W",
        help="with --shards: 0 forces in-process shards, any positive "
        "value forces one forked worker per shard (default: auto, "
        "honouring REPRO_PARALLEL)",
    )
    run_parser.add_argument(
        "--engine", choices=("interp", "vector"), default=None,
        help="with --shards: per-window delivery engine (default: vector, "
        "the batched engine — digest-identical to interp, numpy-"
        "accelerated when numpy is importable)",
    )

    replay_parser = sub.add_parser(
        "replay", help="run a traced election and narrate it"
    )
    replay_parser.add_argument("--protocol", default="A")
    replay_parser.add_argument("--n", type=int, default=8)
    replay_parser.add_argument("--seed", type=int, default=0)
    replay_parser.add_argument("--no-sense", action="store_true")
    replay_parser.add_argument(
        "--messages", action="store_true", help="list every send/deliver"
    )

    scenario_parser = sub.add_parser(
        "scenario", help="run a protocol inside a named adversarial scenario"
    )
    scenario_parser.add_argument("--protocol", default="G")
    scenario_parser.add_argument("--name", default="chain")
    scenario_parser.add_argument("--n", type=int, default=64)
    scenario_parser.add_argument("--seed", type=int, default=0)

    report_parser = sub.add_parser(
        "report", help="regenerate EXPERIMENTS.md (see repro.harness.report)"
    )
    report_parser.add_argument("--quick", action="store_true")
    report_parser.add_argument("--output", default="EXPERIMENTS.md")

    verify_parser = sub.add_parser(
        "verify",
        help="model-check a protocol: exhaustive exploration, schedule "
        "fuzzing, or trace replay",
    )
    verify_parser.add_argument("--protocol", default="A")
    verify_parser.add_argument("--n", type=int, default=3)
    verify_parser.add_argument("--seed", type=int, default=0)
    verify_parser.add_argument("--no-sense", action="store_true")
    verify_parser.add_argument(
        "--max-states", type=int, default=200_000,
        help="state budget for exhaustive exploration",
    )
    verify_parser.add_argument(
        "--no-por", action="store_true",
        help="disable partial-order reduction (cross-validation mode)",
    )
    verify_parser.add_argument(
        "--workers", type=int, default=None, metavar="K",
        help="fan exhaustive exploration across K fork workers "
        "(default: REPRO_PARALLEL, as for experiment sweeps; "
        "0 or 1 = serial)",
    )
    verify_parser.add_argument(
        "--symmetry", choices=("census", "prune", "prune-unsound"),
        default=None,
        help="count states modulo the topology's relabelling group "
        "(census), memoise on orbit representatives (prune — refused "
        "unless the linter-derived capability table proves the protocol "
        "equivariant), or memoise without the gate (prune-unsound — a "
        "bug-hunting mode, see docs/verification.md)",
    )
    verify_parser.add_argument(
        "--fuzz", type=int, default=0, metavar="K",
        help="fuzz K adversarial schedules instead of exploring exhaustively",
    )
    verify_parser.add_argument(
        "--fault-budget", type=int, default=0, metavar="K",
        help="with --fuzz: also cycle the message-loss adversary families, "
        "each allowed K drops per schedule (safety/validity still checked; "
        "lossy runs owe no liveness)",
    )
    verify_parser.add_argument(
        "--save-trace", default=None, metavar="PATH",
        help="with --fuzz: write the shrunk violating trace to PATH",
    )
    verify_parser.add_argument(
        "--replay", default=None, metavar="PATH",
        help="replay a saved schedule trace file instead of checking",
    )
    verify_parser.add_argument(
        "--stat", action="store_true",
        help="Monte-Carlo statistical model checking for the randomized "
        "family: seeded trials folded into exact Clopper-Pearson lower "
        "confidence bounds on election safety and the whp message bound "
        "(see docs/randomized.md)",
    )
    verify_parser.add_argument(
        "--trials", type=int, default=600, metavar="T",
        help="with --stat: trials per (protocol, N) stratum (>= 459 "
        "needed for a 0.99 LCB at zero failures; default 600)",
    )
    verify_parser.add_argument(
        "--confidence", type=float, default=0.99,
        help="with --stat: one-sided confidence level (default 0.99)",
    )
    verify_parser.add_argument(
        "--target", type=float, default=0.99,
        help="with --stat: required lower confidence bound on the "
        "success probability (default 0.99)",
    )
    verify_parser.add_argument(
        "--stat-ns", type=int, nargs="+", default=[64, 256], metavar="N",
        help="with --stat: stratum sizes (default: 64 256, the sublinear "
        "regime — below 64 the referee sample saturates)",
    )
    verify_parser.add_argument(
        "--stat-protocols", nargs="+", default=None, metavar="P",
        help="with --stat: protocols to sample (default: every "
        "registered protocol the flow analysis marks uses_ctx_rng)",
    )
    verify_parser.add_argument(
        "--shrink", action="store_true",
        help="with --replay: shrink the trace before replaying",
    )

    sub.add_parser(
        "lint",
        help="static protocol-contract checks (purity, message hygiene, "
        "equivariance, flow, accounting); see docs/lint.md",
        add_help=False,
    )

    sub.add_parser(
        "analyze",
        help="derive static per-activation message bounds and check them "
        "against the paper's complexity table; see docs/lint.md",
        add_help=False,
    )

    matrix_parser = sub.add_parser(
        "matrix",
        help="expand and sweep a declarative scenario-spec file "
        "(see docs/matrix.md)",
    )
    matrix_parser.add_argument(
        "--spec", default=None, metavar="FILE",
        help="spec file (.toml or .csv; default: the curated slice)",
    )
    matrix_parser.add_argument(
        "--outdir", default=None, metavar="DIR",
        help="write per-cell config_used.json/result.json and the "
        "aggregate report under DIR",
    )
    matrix_parser.add_argument(
        "--strict", action="store_true",
        help="error on any structurally-illegal cell instead of "
        "filtering it",
    )

    check_parser = sub.add_parser(
        "check",
        help="cross-check the curated matrix against the exhaustive "
        "checker, the schedule fuzzer, and the reliable-delivery "
        "contract (see docs/matrix.md)",
    )
    check_parser.add_argument(
        "--all", action="store_true",
        help="run every phase (required; reserved for future slices)",
    )
    check_parser.add_argument(
        "--quick", action="store_true",
        help="trim sizes and schedule counts, keep every row",
    )
    check_parser.add_argument("--spec", default=None, metavar="FILE")
    check_parser.add_argument("--outdir", default=None, metavar="DIR")

    sub.add_parser(
        "trends",
        help="compare committed BENCH snapshots against a baseline "
        "(the CI regression gate; see docs/matrix.md)",
        add_help=False,
    )

    args, extra = parser.parse_known_args(argv)
    if args.command == "lint":
        from repro.lint.cli import main as lint_main

        return lint_main(extra)
    if args.command == "analyze":
        from repro.lint.flow.cli import main as analyze_main

        return analyze_main(extra)
    if args.command == "trends":
        from repro.matrix.trends import main as trends_main

        return trends_main(extra)
    if extra:
        parser.error(f"unrecognized arguments: {' '.join(extra)}")
    if args.command == "list":
        return _cmd_list(args)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "replay":
        return _cmd_replay(args)
    if args.command == "scenario":
        return _cmd_scenario(args)
    if args.command == "verify":
        return _cmd_verify(args)
    if args.command == "matrix":
        return _cmd_matrix(args)
    if args.command == "check":
        return _cmd_check(args)
    if args.command == "report":
        from repro.harness.report import main as report_main

        forwarded = ["--output", args.output]
        if args.quick:
            forwarded.append("--quick")
        return report_main(forwarded)
    parser.error(f"unknown command {args.command}")
    return 2


if __name__ == "__main__":
    sys.exit(main())
