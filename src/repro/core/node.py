"""The node framework protocols are written against.

A protocol implements a :class:`Node` subclass with two entry points:

* :meth:`Node.on_wake` — called exactly once, when the node first wakes.
  ``spontaneous=True`` means the node is a *base node* (it woke by itself
  and may start the protocol); ``spontaneous=False`` means it was woken by
  an arriving message and, per the paper, "is not allowed to become a base
  node".
* :meth:`Node.on_message` — called for each delivered message with the
  local port it arrived on.

Nodes interact with the world only through their :class:`NodeContext` — a
capability handle the runtime injects.  Nodes never see positions, other
nodes' objects, or the clock beyond ``now()``; with sense of direction they
additionally see port labels.  This keeps protocol code honest about the
information model the paper assumes.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Any, Callable

if TYPE_CHECKING:
    import random

from repro.core.errors import SimulationError
from repro.core.messages import Message


class NodeContext(ABC):
    """Runtime capabilities granted to one node."""

    node_id: int
    n: int
    num_ports: int
    has_sense_of_direction: bool

    @abstractmethod
    def send(self, port: int, message: Message) -> None:
        """Transmit ``message`` over ``port`` (FIFO, reliable, async)."""

    @abstractmethod
    def port_label(self, port: int) -> int | None:
        """Distance label of ``port`` (None without sense of direction)."""

    @abstractmethod
    def port_with_label(self, distance: int) -> int:
        """Port labeled ``distance`` (sense-of-direction networks only)."""

    @abstractmethod
    def now(self) -> float:
        """Current virtual time (protocols use it only for traces)."""

    @abstractmethod
    def declare_leader(self) -> None:
        """Announce that this node elected itself leader."""

    @abstractmethod
    def trace(self, kind: str, **detail: Any) -> None:
        """Record a trace event attributed to this node."""

    # -- optional capabilities (concrete defaults, not abstract: the
    # lock-step verification world, white-box test contexts and app
    # wrappers implement NodeContext too, and most have no clock) ---------

    def set_timer(self, delay: float, callback: Callable[[], None]) -> None:
        """Arm a one-shot timer firing ``callback`` after ``delay``.

        Paper-model protocols must NOT use timers — the asynchronous model
        has no timeouts (that is the whole point of Section 4's redundancy
        window).  The hook exists for infrastructure layered *under* a
        protocol, like the reliable-delivery overlay's retransmission
        timers.  Contexts without a clock refuse it loudly.
        """
        raise SimulationError(
            f"{type(self).__name__} does not support timers; "
            "set_timer is only available under the timed simulator"
        )

    def count(self, metric: str, delta: int = 1) -> None:
        """Bump a runtime metric counter (no-op outside the simulator).

        Used by overlays for bookkeeping (retransmissions, suppressed
        duplicates) that should surface in :class:`MetricsCollector`
        without being protocol messages.
        """

    def rng(self) -> "random.Random":
        """This node's private, deterministically-seeded coin stream.

        Randomized protocols draw *only* from here — never from the
        ``random`` module directly (the flow analyzer flags that as
        ``uses_rng`` and the kernels refuse it).  The stream is derived
        from ``(run_seed, node_id)`` via :mod:`repro.sim.rng`, so a
        node's flips depend only on the run seed, its identity and its
        own draw count — which is what keeps randomized runs
        byte-replayable and digest-identical across kernels.

        Contexts without a run seed (the lock-step verification world,
        white-box test stubs) refuse it loudly; exhaustive exploration
        of coin flips is unsound anyway — use ``verify --stat``.
        """
        raise SimulationError(
            f"{type(self).__name__} does not provide per-node RNG streams; "
            "ctx.rng() is only available under the seeded simulator "
            "(statistical properties are checked via `verify --stat`)"
        )


class Node(ABC):
    """Base class for one protocol instance at one node.

    The runtime drives nodes through :meth:`wake` and :meth:`receive`;
    subclasses implement :meth:`on_wake` / :meth:`on_message`.
    """

    def __init__(self, ctx: NodeContext) -> None:
        self.ctx = ctx
        self.awake = False
        self.is_base = False
        self.is_leader = False

    # -- runtime entry points (do not override) ----------------------------

    def wake(self, spontaneous: bool) -> None:
        """Idempotent wake-up; dispatches :meth:`on_wake` exactly once."""
        if self.awake:
            return
        self.awake = True
        self.is_base = spontaneous
        self.ctx.trace("wake", spontaneous=spontaneous)
        self.on_wake(spontaneous)

    def receive(self, port: int, message: Message) -> None:
        """Deliver one message, waking the node first if it was passive."""
        if not self.awake:
            self.wake(spontaneous=False)
        self.on_message(port, message)

    # -- protocol hooks ------------------------------------------------------

    @abstractmethod
    def on_wake(self, spontaneous: bool) -> None:
        """React to waking up (start the protocol iff ``spontaneous``)."""

    @abstractmethod
    def on_message(self, port: int, message: Message) -> None:
        """React to one delivered message."""

    # -- helpers -------------------------------------------------------------

    def become_leader(self) -> None:
        """Declare this node the leader (records it with the runtime)."""
        self.is_leader = True
        self.ctx.trace("leader")
        self.ctx.declare_leader()

    def snapshot(self) -> dict[str, Any]:
        """A summary of final node state for results and assertions.

        Subclasses extend the dict with protocol-specific fields (level,
        owner, phase, ...).
        """
        return {
            "id": self.ctx.node_id,
            "awake": self.awake,
            "is_base": self.is_base,
            "is_leader": self.is_leader,
        }
