"""Reliable FIFO delivery over lossy links — an overlay, not a protocol.

The paper's protocols assume reliable FIFO links (Section 2).  When the
simulator injects link faults (:mod:`repro.sim.faults`), that assumption
breaks — unless the protocol runs *over* this overlay, which rebuilds
reliable FIFO semantics per directed link with the classic ARQ toolkit:

* **sequence numbers** — every payload gets the next per-port sequence
  number, carried in a :class:`Packet` envelope;
* **cumulative acks** — the receiver acks its in-order high-water mark on
  every packet arrival (so a lost ack is repaired by the next arrival);
* **timeout + retransmit** — a single per-node timer retransmits the oldest
  unacked packet per port, with capped exponential backoff;
* **duplicate suppression** — re-delivered sequence numbers (link
  duplication or retransmission overshoot) are counted and dropped;
* **reorder buffering** — out-of-order arrivals wait until the gap fills,
  so the inner protocol observes exactly the fault-free FIFO sequence.

The wrapping mirrors :mod:`repro.apps.wrapper`: :class:`ReliableDelivery`
composes over any unmodified :class:`ElectionProtocol` factory, and the
inner node talks to a :class:`_ReliableContext` whose ``send`` diverts
through the ARQ machinery.  The envelope is audited by the usual
O(log N)-bit model (a nested message is charged at full size), so the
overlay's cost is visible, not hidden: roughly 2× messages (acks) plus
retransmissions, all tallied via ``ctx.count`` into the run's metrics.

Liveness boundary: retransmission cannot reach a crashed or initially
failed node.  After ``max_retries`` unanswered attempts on a port the
overlay *abandons* it (counting ``packets_abandoned``) so the run reaches
quiescence instead of livelocking; the inner protocol then simply never
hears back — exactly the black-hole behaviour the fault-tolerant protocol's
redundancy window is designed to survive.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:
    import random

from repro.core.errors import ConfigurationError
from repro.core.messages import Message
from repro.core.node import Node, NodeContext
from repro.core.protocol import ElectionProtocol


@dataclass(frozen=True, slots=True)
class Packet(Message):
    """Envelope for one protocol message: per-port sequence + payload."""

    seq: int
    payload: Message


@dataclass(frozen=True, slots=True)
class Ack(Message):
    """Cumulative acknowledgement: all sequence numbers <= ``ack`` arrived."""

    ack: int


class _ReliableContext(NodeContext):
    """Pass-through context diverting the inner protocol's sends into ARQ."""

    def __init__(self, real: NodeContext, outer: "ReliableNode") -> None:
        self._real = real
        self._outer = outer
        self.node_id = real.node_id
        self.n = real.n
        self.num_ports = real.num_ports
        self.has_sense_of_direction = real.has_sense_of_direction

    def send(self, port: int, message: Message) -> None:  # noqa: D102
        # repro: lint-ok[RPL041] forwards into the ARQ layer, whose
        # ctx.send is the metered choke point
        self._outer.send_reliable(port, message)

    def port_label(self, port: int) -> int | None:  # noqa: D102
        return self._real.port_label(port)

    def port_with_label(self, distance: int) -> int:  # noqa: D102
        return self._real.port_with_label(distance)

    def now(self) -> float:  # noqa: D102
        return self._real.now()

    def declare_leader(self) -> None:  # noqa: D102
        self._real.declare_leader()

    def trace(self, kind: str, **detail: Any) -> None:  # noqa: D102
        self._real.trace(kind, **detail)

    def count(self, metric: str, delta: int = 1) -> None:  # noqa: D102
        self._real.count(metric, delta)

    def rng(self) -> "random.Random":  # noqa: D102
        return self._real.rng()


class ReliableNode(Node):
    """One node's ARQ state machine wrapped around the inner protocol node."""

    def __init__(
        self, ctx: NodeContext, election: ElectionProtocol,
        config: "ReliableDelivery",
    ) -> None:
        super().__init__(ctx)
        self.inner = election.create_node(_ReliableContext(ctx, self))
        self._rto = config.rto
        self._rto_cap = config.rto_cap
        self._max_retries = config.max_retries
        # Sender side, per port.
        self._next_seq: dict[int, int] = {}
        self._unacked: dict[int, dict[int, Message]] = {}
        self._acked: dict[int, int] = {}
        self._attempts: dict[int, int] = {}
        self._dead_ports: set[int] = set()
        # Receiver side, per port.
        self._delivered: dict[int, int] = {}
        self._reorder: dict[int, dict[int, Message]] = {}
        # One timer per node; staleness-checked at fire time instead of
        # cancelled (the scheduler has no cancellation on the fast path).
        self._timer_armed = False
        self._backoff_exp = 0

    # -- sender side --------------------------------------------------------

    def send_reliable(self, port: int, payload: Message) -> None:
        """Assign the next sequence number on ``port`` and ship it."""
        seq = self._next_seq.get(port, 0) + 1
        self._next_seq[port] = seq
        self._unacked.setdefault(port, {})[seq] = payload
        self.ctx.send(port, Packet(seq, payload))
        self._arm_timer()

    def _arm_timer(self) -> None:
        if not self._timer_armed:
            self._timer_armed = True
            delay = min(
                self._rto * (2 ** self._backoff_exp), self._rto_cap
            )
            self.ctx.set_timer(delay, self._on_timer)

    def _on_timer(self) -> None:
        self._timer_armed = False
        progress_possible = False
        for port in sorted(self._unacked):
            buffer = self._unacked[port]
            if not buffer or port in self._dead_ports:
                continue
            attempts = self._attempts.get(port, 0) + 1
            if attempts > self._max_retries:
                # The far side has not acked anything across the whole
                # backoff ladder: treat it as a black hole and give up so
                # the run can quiesce.  The inner protocol never learns —
                # exactly what a crashed peer looks like in this model.
                self._dead_ports.add(port)
                self.ctx.count("packets_abandoned", len(buffer))
                self.ctx.trace("rel_abandon", port=port, pending=len(buffer))
                buffer.clear()
                continue
            self._attempts[port] = attempts
            oldest = min(buffer)
            self.ctx.send(port, Packet(oldest, buffer[oldest]))
            self.ctx.count("retransmissions")
            self.ctx.trace("rel_retransmit", port=port, seq=oldest)
            progress_possible = True
        if progress_possible:
            self._backoff_exp += 1
            self._arm_timer()
        else:
            self._backoff_exp = 0

    def _on_ack(self, port: int, ack: int) -> None:
        if ack <= self._acked.get(port, 0):
            return  # stale (reordered) cumulative ack
        self._acked[port] = ack
        buffer = self._unacked.get(port)
        if buffer:
            for seq in [s for s in buffer if s <= ack]:
                del buffer[seq]
        # Forward progress: restart the backoff ladder for this port.
        self._attempts[port] = 0
        self._backoff_exp = 0
        if buffer:
            self._arm_timer()

    # -- receiver side ------------------------------------------------------

    def _on_packet(self, port: int, packet: Packet) -> None:
        seq = packet.seq
        delivered = self._delivered.get(port, 0)
        pending = self._reorder.get(port)
        if seq <= delivered or (pending and seq in pending):
            self.ctx.count("duplicates_suppressed")
            self.ctx.trace("rel_duplicate", port=port, seq=seq)
        elif seq == delivered + 1:
            delivered += 1
            self.inner.receive(port, packet.payload)
            while pending and delivered + 1 in pending:
                delivered += 1
                self.inner.receive(port, pending.pop(delivered))
            self._delivered[port] = delivered
        else:
            self._reorder.setdefault(port, {})[seq] = packet.payload
        # Ack on every arrival: a lost ack is repaired by the next packet
        # (first or retransmitted) on this link.
        self.ctx.send(port, Ack(self._delivered.get(port, 0)))

    # -- protocol hooks -----------------------------------------------------

    def on_wake(self, spontaneous: bool) -> None:
        self.inner.wake(spontaneous)

    def on_message(self, port: int, message: Message) -> None:
        if type(message) is Packet:
            self._on_packet(port, message)
        elif type(message) is Ack:
            self._on_ack(port, message.ack)
        else:
            # Not ours (a mixed network without the overlay on the peer);
            # hand it through untouched.
            self.inner.receive(port, message)

    def snapshot(self) -> dict[str, Any]:
        base = self.inner.snapshot()
        base.update(
            awake=self.awake,
            is_base=self.is_base,
            is_leader=self.inner.is_leader,
            abandoned_ports=tuple(sorted(self._dead_ports)),
        )
        return base


class ReliableDelivery(ElectionProtocol):
    """Wrap any election protocol to run correctly over lossy links.

    Not ``@register``-ed: the overlay is infrastructure, addressed as
    ``ReliableDelivery(inner_protocol)``, and composes with the app
    wrappers (either order works — each is a plain context interposition).
    """

    name = "REL"

    def __init__(
        self,
        election: ElectionProtocol,
        *,
        rto: float = 2.5,
        rto_cap: float = 64.0,
        max_retries: int = 25,
    ) -> None:
        """``rto`` is the initial retransmission timeout.  Latencies live in
        ``(0, 1]``, so the default never fires before a healthy round trip;
        ``rto_cap`` bounds the exponential backoff and ``max_retries``
        bounds how long a silent peer is pursued before the port is
        abandoned (see the module docstring's liveness boundary)."""
        if rto <= 0.0:
            raise ConfigurationError(f"rto must be positive, got {rto}")
        if rto_cap < rto:
            raise ConfigurationError(f"rto_cap {rto_cap} below rto {rto}")
        if max_retries < 1:
            raise ConfigurationError(f"max_retries must be >= 1, got {max_retries}")
        self.election = election
        self.rto = rto
        self.rto_cap = rto_cap
        self.max_retries = max_retries

    @property
    def needs_sense_of_direction(self) -> bool:  # type: ignore[override]
        return self.election.needs_sense_of_direction

    def validate(self, topology) -> None:  # noqa: D102
        self.election.validate(topology)

    def create_node(self, ctx: NodeContext) -> ReliableNode:
        return ReliableNode(ctx, self.election, self)

    def describe(self) -> str:
        return f"REL[{self.election.describe()}]"
