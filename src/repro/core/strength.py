"""Lexicographic contest strengths.

Every protocol in the paper resolves contests between candidates by comparing
a *strength pair* lexicographically:

* Protocols LMW86, A, C (phase 1), ``E``, ``F``, ``G`` compare
  ``(level, id)`` where ``level`` is the number of nodes captured so far.
* Protocols B and C (phase 2) compare ``(step, id)`` where ``step`` counts
  completed doubling rounds.

The pair ordering is total because identities are unique, which is what makes
the kill-the-owner rule antisymmetric: of two candidates that contest each
other, exactly one survives.
"""

from __future__ import annotations

from typing import NamedTuple


class Strength(NamedTuple):
    """A ``(rank, node_id)`` pair compared lexicographically.

    ``rank`` is the protocol's progress measure (level or step).  Named-tuple
    comparison gives exactly the lexicographic order the paper uses.
    """

    rank: int
    node_id: int

    def outranks(self, other: "Strength") -> bool:
        """True when this strength strictly beats ``other``.

        Identities are unique, so ties can only occur when comparing a
        candidate against itself; the paper's rules never do that.
        """
        return self > other

    def with_rank(self, rank: int) -> "Strength":
        """Return a copy at a different rank (same identity)."""
        return Strength(rank, self.node_id)


#: The weakest possible strength; every real candidate beats it.  Used as the
#: initial "strongest seen so far" at passive nodes.
ZERO_STRENGTH = Strength(-1, -1)
