"""Exception hierarchy for the reproduction library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch the whole family with one clause while still distinguishing categories.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class ConfigurationError(ReproError):
    """A protocol or simulation was configured with invalid parameters.

    Examples: a protocol that requires ``N = 2**r`` handed a non-power-of-two
    network, a capture quota ``k`` outside the range the paper allows, or a
    failure count ``f >= N/2``.
    """


class SimulationError(ReproError):
    """The simulator reached an inconsistent internal state.

    This always indicates a bug in the kernel or a protocol implementation,
    never bad user input.
    """


class ProtocolViolation(ReproError):
    """A protocol broke one of its own declared invariants.

    Raised, for instance, when two distinct nodes declare themselves leader
    (safety), or when a captured set stops being a contiguous prefix in
    Protocol A.
    """


class LivelockError(SimulationError):
    """The event budget was exhausted before the network went quiescent.

    The bounded-execution guard exists so a buggy protocol cannot spin the
    simulator forever; hitting it in a test means the protocol livelocked.
    """


class MessageSizeError(ProtocolViolation):
    """A message exceeded the O(log N) bit budget of the paper's model."""
