"""Typed protocol messages and the O(log N)-bit size model.

The paper's model (Section 2) allows each message to carry ``O(log N)`` bits.
Every protocol message in this library is a frozen dataclass deriving from
:class:`Message`.  The simulator audits each message against the bit budget
via :func:`message_bits`: a message is charged ``ceil(log2(n)) + 1`` bits per
integer field (identities, levels, steps are all at most polynomial in ``N``,
so a constant number of machine words of ``O(log N)`` bits suffices), plus a
constant tag for the message type.

Messages are *values*: they are immutable and compared structurally, which
keeps the simulator deterministic and makes traces easy to assert on.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass

from repro.core.errors import MessageSizeError

#: Bits charged for the message-type tag.  There are far fewer than 2**8
#: message types in any one protocol.
TYPE_TAG_BITS = 8

#: How many integer fields a single message may carry and still count as
#: O(log N) bits.  The richest message in the library (a forwarded challenge)
#: carries a strength pair plus a hop counter: four integers.  Anything wider
#: is almost certainly a modelling mistake.
MAX_INT_FIELDS = 6


@dataclass(frozen=True, slots=True)
class Message:
    """Base class for all protocol messages.

    Subclasses add frozen fields.  Field values must be ``int``, ``bool``,
    ``None``, (rarely) a short tuple of ints, or a nested :class:`Message`
    (overlay envelopes — charged at the payload's full audited size);
    anything else breaks the O(log N)-bit accounting and raises
    :class:`MessageSizeError` when sent.
    """

    @property
    def type_name(self) -> str:
        """Short name used in traces and per-type message tallies."""
        return type(self).__name__


#: Per-type cache of field names: ``dataclasses.fields`` rebuilds its tuple
#: on every call, which is measurable when the kernel audits every send.
_FIELD_NAMES: dict[type, tuple[str, ...]] = {}

#: Per-``n`` cache of the O(log n) word width (the +1 is a sign/tag bit).
_WORD_BITS: dict[int, int] = {}


def _word_bits(n: int) -> int:
    bits = _WORD_BITS.get(n)
    if bits is None:
        bits = _WORD_BITS[n] = max(1, math.ceil(math.log2(max(2, n)))) + 1
    return bits


def _field_bits(value: object, n: int) -> int:
    """Bits needed to encode one field value in a network of ``n`` nodes."""
    if value is None or isinstance(value, bool):
        return 1
    if isinstance(value, int):
        # Identities, distances, levels and steps are all < n**2 in every
        # protocol here, so one O(log n) word each.
        return _word_bits(n)
    if isinstance(value, tuple):
        return sum(_field_bits(item, n) for item in value)
    if isinstance(value, Message):
        # A nested message (the reliable-delivery overlay's Packet wraps the
        # protocol's own message) is charged at its full audited size, so
        # wrapping never hides bits from the O(log N) model.
        return message_bits(value, n)
    raise MessageSizeError(
        f"message field of type {type(value).__name__} is not encodable "
        "in the O(log N)-bit message model"
    )


def message_bits(message: Message, n: int) -> int:
    """Return the number of bits ``message`` occupies in an ``n``-node net.

    Raises :class:`MessageSizeError` if the message carries a field that the
    O(log N) model cannot encode, or more integer fields than
    :data:`MAX_INT_FIELDS`.
    """
    cls = type(message)
    names = _FIELD_NAMES.get(cls)
    if names is None:
        names = _FIELD_NAMES[cls] = tuple(
            f.name for f in dataclasses.fields(message)
        )
    word = _word_bits(n)
    int_fields = 0
    total = TYPE_TAG_BITS
    for name in names:
        value = getattr(message, name)
        if value is None or value is True or value is False:
            total += 1
        elif isinstance(value, int):
            total += word
            int_fields += 1
        elif isinstance(value, tuple):
            total += _field_bits(value, n)
            int_fields += len(value)
        elif isinstance(value, Message):
            # Nested payloads are audited recursively against their own
            # field budget; the wrapper is charged their full bit size.
            total += message_bits(value, n)
        else:
            total += _field_bits(value, n)  # raises MessageSizeError
    if int_fields > MAX_INT_FIELDS:
        raise MessageSizeError(
            f"{message.type_name} carries {int_fields} integer fields; "
            f"the O(log N) model allows at most {MAX_INT_FIELDS}"
        )
    return total


# ---------------------------------------------------------------------------
# Messages shared by several protocols.
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class Wakeup(Message):
    """Explicit wake-up nudge (Protocol A' sends these to i[1] and i[k])."""


@dataclass(frozen=True, slots=True)
class LeaderAnnouncement(Message):
    """Optional post-election broadcast so every node learns the leader.

    The paper's protocols end when one node *declares itself* leader; the
    announcement round is the standard O(N)-message epilogue used by the
    applications in :mod:`repro.apps`.
    """

    leader_id: int
