"""Protocol plug-in interface and registry.

An :class:`ElectionProtocol` is a *factory* for per-node state machines plus
static metadata (name, whether sense of direction is required, parameter
validation).  The registry lets the harness and examples refer to protocols
by name (``"A"``, ``"C"``, ``"G"``, ...), which keeps experiment definitions
declarative.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import ClassVar

from repro.core.errors import ConfigurationError
from repro.core.node import Node, NodeContext
from repro.topology.complete import CompleteTopology


class ElectionProtocol(ABC):
    """Factory and metadata for one leader-election protocol."""

    #: Human-readable protocol name (the paper's letter where applicable).
    name: ClassVar[str] = "?"
    #: Whether the protocol reads port labels (sense of direction).
    needs_sense_of_direction: ClassVar[bool] = False

    def validate(self, topology: CompleteTopology) -> None:
        """Reject topologies this protocol cannot run on.

        Subclasses with parameter constraints (``k`` ranges, power-of-two
        sizes) extend this; they must call ``super().validate(topology)``.
        """
        if self.needs_sense_of_direction and not topology.sense_of_direction:
            raise ConfigurationError(
                f"protocol {self.name} requires sense of direction"
            )

    @abstractmethod
    def create_node(self, ctx: NodeContext) -> Node:
        """Instantiate this protocol's state machine for one node."""

    def describe(self) -> str:
        """One-line description used in harness reports."""
        return self.name


_REGISTRY: dict[str, type[ElectionProtocol]] = {}


def register(cls: type[ElectionProtocol]) -> type[ElectionProtocol]:
    """Class decorator adding a protocol to the global registry."""
    key = cls.name
    if key in _REGISTRY and _REGISTRY[key] is not cls:
        raise ConfigurationError(f"duplicate protocol name {key!r}")
    _REGISTRY[key] = cls
    return cls


def protocol_class(name: str) -> type[ElectionProtocol]:
    """Look up a registered protocol class by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown protocol {name!r}; registered: {sorted(_REGISTRY)}"
        ) from None


def registered_protocols() -> dict[str, type[ElectionProtocol]]:
    """A copy of the registry (name -> class)."""
    return dict(_REGISTRY)
