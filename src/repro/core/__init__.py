"""Core abstractions: nodes, messages, protocols, strengths, results."""
