"""Election run results.

:class:`ElectionResult` is the immutable record a :class:`~repro.sim.network
.Network` run returns: who won, when, and at what message/time cost.  The
benchmark harness aggregates these across sweeps; the tests assert the
paper's invariants on them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.errors import ProtocolViolation
from repro.sim.tracing import Tracer


@dataclass(frozen=True)
class ElectionResult:
    """Outcome and cost of one election run."""

    n: int
    protocol: str
    leader_id: int | None
    leader_position: int | None
    elected_at: float | None
    #: elected_at minus the first wake-up — the paper's time measure.
    election_time: float
    #: longest causal message chain up to the leader's declaration.
    election_depth: int | None
    messages_total: int
    bits_total: int
    messages_by_type: dict[str, int]
    max_depth: int
    quiescent_at: float
    first_wake_time: float | None
    last_wake_time: float | None
    base_positions: tuple[int, ...]
    failed_positions: tuple[int, ...]
    node_snapshots: tuple[dict[str, Any], ...]
    trace: Tracer = field(repr=False, default_factory=Tracer)
    #: nodes killed mid-run by the crash schedule or a FaultPlan (empty in
    #: paper-model runs; see Network's crash docs — mid-run crashes are a
    #: boundary demonstration, not a tolerated fault).  Disjoint from
    #: ``failed_positions``: a node crashed at t=0.0 still *existed* (its
    #: links accepted messages until the crash fired), unlike an initially
    #: failed node, and the two are reported separately.
    crashed_positions: tuple[int, ...] = ()
    #: messages carried by the busiest directed link — the Section 4
    #: congestion measure (Θ(N) for AG85 on a hotspot, O(1)-ish for ℰ).
    max_channel_load: int = 0
    # -- fault layer (all zero unless a FaultPlan was installed) ------------
    messages_dropped: int = 0
    messages_duplicated: int = 0
    messages_jittered: int = 0
    # -- reliable-delivery overlay (zero unless the protocol was wrapped) ---
    retransmissions: int = 0
    duplicates_suppressed: int = 0
    packets_abandoned: int = 0

    @property
    def num_base_nodes(self) -> int:
        """How many nodes woke spontaneously (the paper's r)."""
        return len(self.base_positions)

    @property
    def messages_per_node(self) -> float:
        """Messages normalised by network size — flat iff O(N) total."""
        return self.messages_total / self.n

    @property
    def leader_crashed(self) -> bool:
        """True when the declared leader was later killed by a crash."""
        return (
            self.leader_position is not None
            and self.leader_position in self.crashed_positions
        )

    @property
    def faults_injected(self) -> bool:
        """True when the fault layer touched at least one message."""
        return bool(
            self.messages_dropped
            or self.messages_duplicated
            or self.messages_jittered
        )

    def verify(self) -> None:
        """Assert the three election correctness properties.

        * **liveness** — a leader was elected *and survived*: a run whose
          only leader crashed has no leader among the survivors and must not
          report success;
        * **safety** — exactly one node believes it is the leader;
        * **validity** — the leader is a base node (woke spontaneously).

        Raises :class:`ProtocolViolation` on any failure.
        """
        leaders = [s for s in self.node_snapshots if s["is_leader"]]
        if not leaders:
            raise ProtocolViolation(
                f"{self.protocol}: no leader elected in an {self.n}-node run"
            )
        if len(leaders) > 1:
            ids = sorted(s["id"] for s in leaders)
            raise ProtocolViolation(
                f"{self.protocol}: multiple leaders declared: {ids}"
            )
        if not leaders[0]["is_base"]:
            raise ProtocolViolation(
                f"{self.protocol}: leader {leaders[0]['id']} is not a base node"
            )
        if self.leader_crashed:
            raise ProtocolViolation(
                f"{self.protocol}: leader {leaders[0]['id']} crashed after "
                "declaring; no leader survives among the live nodes"
            )

    def summary(self) -> str:
        """Compact single-line report used by examples and the harness."""
        return (
            f"{self.protocol}: N={self.n} leader={self.leader_id} "
            f"msgs={self.messages_total} time={self.election_time:.2f} "
            f"depth={self.election_depth}"
        )
