"""Port-assignment strategies for networks *without* sense of direction.

In the unlabeled model a node cannot distinguish its incident links: it only
sees anonymous ports 0..N-2.  Which neighbour hides behind which port is the
adversary's choice — the lower bound of Section 5 is driven entirely by this
power plus delay scheduling.  A :class:`PortStrategy` fixes, per node, the
order in which untraversed ports map to neighbours.

All the paper's unlabeled-network protocols probe fresh ports in index
order, so a static permutation chosen with full knowledge of the identities
is exactly as strong as the paper's "lazy" adversary that picks an edge at
the moment a node first uses it.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from collections.abc import Sequence


class PortStrategy(ABC):
    """Chooses the neighbour order behind each node's anonymous ports."""

    @abstractmethod
    def assign(
        self,
        n: int,
        position: int,
        ids: Sequence[int],
        rng: random.Random,
    ) -> list[int]:
        """Return the neighbour *positions* in port order for ``position``.

        Must be a permutation of all positions except ``position`` itself.
        """


class RandomPorts(PortStrategy):
    """Uniformly random hidden wiring — the benign average case."""

    def assign(self, n, position, ids, rng):  # noqa: D102
        neighbours = [p for p in range(n) if p != position]
        rng.shuffle(neighbours)
        return neighbours


class IdOrderedPorts(PortStrategy):
    """Ports ordered by increasing neighbour identity.

    A *friendly* wiring: sequential-probe protocols meet strong opponents
    early and die cheaply.  Useful as the optimistic end of the spectrum in
    benchmarks.
    """

    def assign(self, n, position, ids, rng):  # noqa: D102
        neighbours = [p for p in range(n) if p != position]
        neighbours.sort(key=lambda p: ids[p])
        return neighbours


class UpDownPorts(PortStrategy):
    """The Section 5 adversary's wiring.

    For a node with identity ``i`` the first ``k`` fresh ports lead to
    ``Up_i`` (identities ``i+1 .. i+k`` mod N, increasing), the next ``k`` to
    ``Down_i`` (``i-1 .. i-k``), and the remainder alternate outward by
    cyclic identity offset.  While a message-optimal protocol touches at most
    ``k`` fresh ports per node, every node in the middle band communicates
    only inside a narrow identity window — the symmetry the lower-bound
    construction exploits.
    """

    def __init__(self, k: int) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = k

    def assign(self, n, position, ids, rng):  # noqa: D102
        position_of = {ids[p]: p for p in range(n)}
        my_id = ids[position]
        order: list[int] = []
        for offset in range(1, self.k + 1):  # Up_i, increasing identity
            order.append(position_of[(my_id + offset) % n])
        for offset in range(1, self.k + 1):  # Down_i, decreasing identity
            order.append(position_of[(my_id - offset) % n])
        offset = self.k + 1
        while len(order) < n - 1:
            up = position_of[(my_id + offset) % n]
            if up not in order and up != position:
                order.append(up)
            down = position_of[(my_id - offset) % n]
            if down not in order and down != position and len(order) < n - 1:
                order.append(down)
            offset += 1
        return order


class HotspotPorts(PortStrategy):
    """Every node's first fresh port leads to one popular victim.

    This wires the Section 4 congestion pathology that motivates ℰ: all
    base nodes claim the *same* node first, the first claimant captures it,
    and every later claim is forwarded to the owner over a single link.
    Under unit inter-message spacing AG85 serialises the whole burst
    (Θ(#candidates) time for one capture); ℰ keeps one claim in flight and
    rejects the rest immediately.  Remaining ports are wired randomly.
    """

    def __init__(self, victim_id: int = 0) -> None:
        self.victim_id = victim_id

    def assign(self, n, position, ids, rng):  # noqa: D102
        victim = ids.index(self.victim_id) if self.victim_id in ids else 0
        neighbours = [p for p in range(n) if p != position]
        rng.shuffle(neighbours)
        if position != victim:
            neighbours.remove(victim)
            neighbours.insert(0, victim)
        return neighbours


def validate_port_map(n: int, position: int, port_map: Sequence[int]) -> None:
    """Assert that a port map is a permutation of the other positions.

    Runs in O(n) with a byte mask (not a sort): validation is on the
    topology-construction path, which the scaling benches hit with n in the
    thousands — n rows of n entries each.
    """
    if len(port_map) != n - 1:
        raise ValueError(
            f"port map for position {position} has {len(port_map)} entries, "
            f"expected {n - 1}: {port_map!r}"
        )
    seen = bytearray(n)
    for p in port_map:
        if not 0 <= p < n or p == position or seen[p]:
            raise ValueError(
                f"port map for position {position} is not a permutation of "
                f"the remaining {n - 1} positions: {port_map!r}"
            )
        seen[p] = 1
