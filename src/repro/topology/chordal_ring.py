"""Chordal rings (the ALSZ89 substrate).

[ALSZ89] showed that O(log N) chords per node — a *chordal ring* with
chords at power-of-two distances — already admit O(N)-message election,
sitting between the unlabeled complete network (Ω(N log N) messages) and
the fully labeled one (O(N)).  The paper cites this spectrum in its
introduction; we provide the topology as an extension substrate.

A :class:`ChordalRingTopology` has nodes on a directed Hamiltonian cycle
and, at every node, one labeled port per chord distance.  Links are
bidirectional, so the port set is the symmetric closure of the chord set
(distance ``d`` implies distance ``N-d``).  The class satisfies the same
structural interface as :class:`~repro.topology.complete.CompleteTopology`
(``neighbor``/``reverse_port``/``label``/...), so ring protocols such as
Chang–Roberts run on it unchanged via the distance-1 ports.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.errors import ConfigurationError


def power_of_two_chords(n: int) -> list[int]:
    """The ALSZ89 chord set {1, 2, 4, ...} below N."""
    chords = []
    d = 1
    while d < n:
        chords.append(d)
        d *= 2
    return chords


class ChordalRingTopology:
    """A ring with labeled chords at fixed distances."""

    sense_of_direction = True

    def __init__(
        self,
        n: int,
        chords: Sequence[int] | None = None,
        *,
        ids: Sequence[int] | None = None,
    ) -> None:
        if n < 2:
            raise ConfigurationError(f"a ring needs n >= 2, got {n}")
        raw = list(chords) if chords is not None else power_of_two_chords(n)
        if any(not 1 <= d <= n - 1 for d in raw):
            raise ConfigurationError(f"chord distances must be in 1..{n - 1}")
        if 1 not in raw:
            raise ConfigurationError("a chordal ring must contain the ring (chord 1)")
        # Bidirectional links: close the chord set under d -> n - d.
        closed = sorted({d for d in raw} | {(n - d) % n for d in raw} - {0})
        self.n = n
        self.chords = tuple(closed)
        if ids is None:
            ids = list(range(n))
        if len(ids) != n or len(set(ids)) != n:
            raise ConfigurationError("ids must be n distinct integers")
        self.ids = tuple(ids)
        self._position_of_id = {identity: p for p, identity in enumerate(self.ids)}
        self._port_of_distance = {d: i for i, d in enumerate(self.chords)}

    @property
    def num_ports(self) -> int:
        """Labeled ports per node (symmetric chord count)."""
        return len(self.chords)

    def neighbor(self, position: int, port: int) -> int:
        """Position reached through ``port``."""
        return (position + self.chords[port]) % self.n

    def port_to(self, position: int, neighbor: int) -> int:
        """Port of ``position`` leading to ``neighbor`` (must be a chord)."""
        distance = (neighbor - position) % self.n
        try:
            return self._port_of_distance[distance]
        except KeyError:
            raise ConfigurationError(
                f"positions {position} and {neighbor} are not chord-adjacent"
            ) from None

    def reverse_port(self, position: int, port: int) -> int:
        """The far end's port for this link."""
        return self.port_to(self.neighbor(position, port), position)

    def id_at(self, position: int) -> int:
        """Identity of the node at ``position``."""
        return self.ids[position]

    def position_of(self, identity: int) -> int:
        """Position of the node with ``identity``."""
        return self._position_of_id[identity]

    def label(self, position: int, port: int) -> int:
        """Chord distance carried by ``port``."""
        return self.chords[port]

    def port_with_label(self, position: int, distance: int) -> int:
        """Port at chord distance ``distance`` (raises if absent)."""
        try:
            return self._port_of_distance[distance]
        except KeyError:
            raise ConfigurationError(
                f"no chord at distance {distance}; chords: {self.chords}"
            ) from None

    def degree_per_node(self) -> int:
        """Links per node — Θ(log N) for the ALSZ89 chord set."""
        return self.num_ports
