"""Sense of direction: definition, validation, and the paper's Figure 1.

A complete network has *sense of direction* when there is a directed
Hamiltonian cycle and each edge incident at node ``i`` is labeled with the
distance along that cycle to the node at its far end.  The labeling obeys
two algebraic laws that this module can check on any topology:

* **antisymmetry** — if the edge is labeled ``d`` at one end it is labeled
  ``N - d`` at the other;
* **consistency** — following label ``a`` then label ``b`` lands on the node
  reached directly by label ``(a + b) mod N``.

These checks back the Figure 1 reproduction (experiment E1).
"""

from __future__ import annotations

from repro.core.errors import ConfigurationError
from repro.topology.complete import CompleteTopology, complete_with_sense_of_direction


def verify_sense_of_direction(topology: CompleteTopology) -> None:
    """Raise :class:`ConfigurationError` unless the labeling is a valid
    sense of direction (antisymmetric and cyclically consistent)."""
    if not topology.sense_of_direction:
        raise ConfigurationError("topology does not declare sense of direction")
    n = topology.n
    for position in range(n):
        for port in range(topology.num_ports):
            label = topology.label(position, port)
            far = topology.neighbor(position, port)
            back = topology.label(far, topology.reverse_port(position, port))
            if (label + back) % n != 0:
                raise ConfigurationError(
                    f"labels {label} and {back} on edge ({position},{far}) "
                    f"do not sum to N"
                )
            if far != (position + label) % n:
                raise ConfigurationError(
                    f"label {label} at position {position} leads to {far}, "
                    f"not to position {(position + label) % n}"
                )


def figure1() -> CompleteTopology:
    """The paper's Figure 1: a 6-node complete network with sense of
    direction (directed Hamiltonian cycle 0→1→…→5→0, chords labeled by
    distance)."""
    return complete_with_sense_of_direction(6)


def chord_endpoints(topology: CompleteTopology, distance: int) -> list[tuple[int, int]]:
    """All directed chords of a given label, as ``(from, to)`` positions."""
    return [
        (position, (position + distance) % topology.n)
        for position in range(topology.n)
    ]


def as_networkx(topology: CompleteTopology):
    """Export the labeled network as a ``networkx.DiGraph``.

    Nodes carry their identity; edges carry their distance label.  Used by
    the Figure 1 example to render the topology.  Imported lazily so the
    core library keeps zero hard dependencies.
    """
    import networkx as nx

    graph = nx.DiGraph()
    for position in range(topology.n):
        graph.add_node(position, identity=topology.id_at(position))
    for position in range(topology.n):
        for port in range(topology.num_ports):
            graph.add_edge(
                position,
                topology.neighbor(position, port),
                label=topology.label(position, port),
            )
    return graph


def ascii_figure(topology: CompleteTopology) -> str:
    """A textual rendering of a labeled complete network.

    One line per directed chord family, mirroring how Figure 1 annotates the
    six-node example.
    """
    lines = [
        f"Complete network, N={topology.n}, with sense of direction",
        f"Hamiltonian cycle: "
        + " -> ".join(str(p) for p in range(topology.n))
        + " -> 0",
    ]
    for distance in range(1, topology.n):
        chords = ", ".join(
            f"{src}->{dst}" for src, dst in chord_endpoints(topology, distance)
        )
        lines.append(f"label {distance}: {chords}")
    return "\n".join(lines)
