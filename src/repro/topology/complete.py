"""Complete-network topologies.

A :class:`CompleteTopology` fixes everything static about a run:

* ``n`` node *positions* ``0..n-1`` arranged on the directed Hamiltonian
  cycle that defines sense of direction (positions are the simulator's
  ground truth; protocols never see them directly),
* an *identity assignment* ``ids[position]`` (unique, arbitrary ints), and
* per-node *port maps*: ``port_neighbor[p][q]`` is the position reached from
  position ``p`` via port ``q``.

With sense of direction, port ``d-1`` of every node carries label ``d`` and
leads to the node at cyclic distance ``d`` (Figure 1 of the paper).  Without
it, a :class:`~repro.topology.ports.PortStrategy` chooses the hidden wiring.
"""

from __future__ import annotations

import random
from collections.abc import Sequence

from repro.core.errors import ConfigurationError
from repro.topology.ports import PortStrategy, RandomPorts, validate_port_map


class CompleteTopology:
    """An immutable complete graph with identities and port maps."""

    def __init__(
        self,
        n: int,
        ids: Sequence[int],
        port_neighbor: Sequence[Sequence[int]],
        *,
        sense_of_direction: bool,
    ) -> None:
        if n < 2:
            raise ConfigurationError(f"a complete network needs n >= 2, got {n}")
        if len(ids) != n or len(set(ids)) != n:
            raise ConfigurationError("ids must be n distinct integers")
        if len(port_neighbor) != n:
            raise ConfigurationError("port_neighbor must have one row per node")
        for position, row in enumerate(port_neighbor):
            validate_port_map(n, position, row)
        self.n = n
        self.ids = tuple(ids)
        self.sense_of_direction = sense_of_direction
        self._port_neighbor = tuple(tuple(row) for row in port_neighbor)
        self._port_of = tuple(
            {neighbor: port for port, neighbor in enumerate(row)}
            for row in self._port_neighbor
        )
        self._position_of_id = {identity: p for p, identity in enumerate(self.ids)}

    # -- structure ----------------------------------------------------------

    @property
    def num_ports(self) -> int:
        """Ports per node (= n - 1 in a complete graph)."""
        return self.n - 1

    def neighbor(self, position: int, port: int) -> int:
        """Position reached from ``position`` through ``port``."""
        return self._port_neighbor[position][port]

    def port_to(self, position: int, neighbor: int) -> int:
        """The port of ``position`` whose link leads to ``neighbor``."""
        return self._port_of[position][neighbor]

    def reverse_port(self, position: int, port: int) -> int:
        """The far end's port for the link ``(position, port)``.

        Needed to tell a receiver which of *its* ports a message arrived on.
        """
        far = self.neighbor(position, port)
        return self.port_to(far, position)

    # -- identities ---------------------------------------------------------

    def id_at(self, position: int) -> int:
        """Identity of the node at ``position``."""
        return self.ids[position]

    def position_of(self, identity: int) -> int:
        """Position of the node with ``identity``."""
        return self._position_of_id[identity]

    # -- sense of direction -------------------------------------------------

    def label(self, position: int, port: int) -> int | None:
        """Chord label (cyclic distance) of a port, or None if unlabeled."""
        if not self.sense_of_direction:
            return None
        return port + 1

    def port_with_label(self, position: int, distance: int) -> int:
        """Port carrying label ``distance`` (sense-of-direction networks)."""
        if not self.sense_of_direction:
            raise ConfigurationError(
                "port_with_label requires a network with sense of direction"
            )
        if not 1 <= distance <= self.n - 1:
            raise ConfigurationError(
                f"distance must be in 1..{self.n - 1}, got {distance}"
            )
        return distance - 1


def complete_with_sense_of_direction(
    n: int, *, ids: Sequence[int] | None = None
) -> CompleteTopology:
    """Build a complete network with sense of direction.

    Every node's port ``d-1`` leads to the node at distance ``d`` along the
    Hamiltonian cycle and is labeled ``d`` — the structure of the paper's
    Figure 1.
    """
    if ids is None:
        ids = list(range(n))
    port_neighbor = [
        [(position + distance) % n for distance in range(1, n)]
        for position in range(n)
    ]
    return CompleteTopology(n, ids, port_neighbor, sense_of_direction=True)


def complete_without_sense(
    n: int,
    *,
    ids: Sequence[int] | None = None,
    port_strategy: PortStrategy | None = None,
    seed: int = 0,
) -> CompleteTopology:
    """Build a complete network whose port wiring is hidden from nodes.

    ``port_strategy`` picks the hidden wiring (default: uniformly random,
    derived deterministically from ``seed``).
    """
    if ids is None:
        ids = list(range(n))
    strategy = port_strategy if port_strategy is not None else RandomPorts()
    rng = random.Random(seed)
    port_neighbor = [
        strategy.assign(n, position, ids, rng) for position in range(n)
    ]
    return CompleteTopology(n, ids, port_neighbor, sense_of_direction=False)
