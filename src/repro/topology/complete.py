"""Complete-network topologies.

A :class:`CompleteTopology` fixes everything static about a run:

* ``n`` node *positions* ``0..n-1`` arranged on the directed Hamiltonian
  cycle that defines sense of direction (positions are the simulator's
  ground truth; protocols never see them directly),
* an *identity assignment* ``ids[position]`` (unique, arbitrary ints), and
* per-node *port maps*: ``port_neighbor[p][q]`` is the position reached from
  position ``p`` via port ``q``.

With sense of direction, port ``d-1`` of every node carries label ``d`` and
leads to the node at cyclic distance ``d`` (Figure 1 of the paper).  Without
it, a :class:`~repro.topology.ports.PortStrategy` chooses the hidden wiring.

Storage is sized for the N≈10⁴ scaling benches:

* The canonical cyclic wiring (every sense-of-direction network) is pure
  arithmetic -- ``neighbor(p, q) = (p + q + 1) % n`` -- so no table is
  materialised at all and construction is O(n) instead of O(n²).
* Explicit wirings keep the forward table as compact ``array('i')`` rows
  (4 bytes/entry instead of a pointer to a boxed int) and build each node's
  inverse row (neighbour → port) lazily on first use, since most runs of a
  message-optimal protocol never look at most nodes' reverse wiring.
"""

from __future__ import annotations

import random
from array import array
from collections.abc import Sequence

from repro.core.errors import ConfigurationError
from repro.topology.ports import PortStrategy, RandomPorts, validate_port_map


class CompleteTopology:
    """An immutable complete graph with identities and port maps."""

    def __init__(
        self,
        n: int,
        ids: Sequence[int],
        port_neighbor: Sequence[Sequence[int]] | None,
        *,
        sense_of_direction: bool,
    ) -> None:
        if n < 2:
            raise ConfigurationError(f"a complete network needs n >= 2, got {n}")
        if len(ids) != n or len(set(ids)) != n:
            raise ConfigurationError("ids must be n distinct integers")
        self.n = n
        self.ids = tuple(ids)
        self.sense_of_direction = sense_of_direction
        # ``port_neighbor=None`` selects the canonical cyclic wiring (port
        # d-1 leads to the node at cyclic distance d): no tables, O(1) math.
        self._cyclic = port_neighbor is None
        if self._cyclic:
            self._port_neighbor: tuple[array, ...] = ()
            self._inverse_rows: list[array | None] = []
        else:
            if len(port_neighbor) != n:
                raise ConfigurationError(
                    "port_neighbor must have one row per node"
                )
            for position, row in enumerate(port_neighbor):
                validate_port_map(n, position, row)
            self._port_neighbor = tuple(array("i", row) for row in port_neighbor)
            self._inverse_rows = [None] * n
        self._position_of_id = {identity: p for p, identity in enumerate(self.ids)}

    # -- structure ----------------------------------------------------------

    @property
    def num_ports(self) -> int:
        """Ports per node (= n - 1 in a complete graph)."""
        return self.n - 1

    def neighbor(self, position: int, port: int) -> int:
        """Position reached from ``position`` through ``port``."""
        if self._cyclic:
            return (position + port + 1) % self.n
        return self._port_neighbor[position][port]

    def _inverse_row(self, position: int) -> array:
        """Neighbour-position → port row, built on first use."""
        row = self._inverse_rows[position]
        if row is None:
            row = array("i", [0]) * self.n
            for port, far in enumerate(self._port_neighbor[position]):
                row[far] = port
            self._inverse_rows[position] = row
        return row

    def port_to(self, position: int, neighbor: int) -> int:
        """The port of ``position`` whose link leads to ``neighbor``."""
        if self._cyclic:
            distance = (neighbor - position) % self.n
            if distance == 0:
                raise KeyError(neighbor)
            return distance - 1
        if neighbor == position or not 0 <= neighbor < self.n:
            raise KeyError(neighbor)
        return self._inverse_row(position)[neighbor]

    def reverse_port(self, position: int, port: int) -> int:
        """The far end's port for the link ``(position, port)``.

        Needed to tell a receiver which of *its* ports a message arrived on.
        """
        if self._cyclic:
            # Far end sits at distance d = port + 1; the way back is the
            # complementary distance n - d, i.e. port n - d - 1.
            return self.n - 2 - port
        far = self._port_neighbor[position][port]
        return self._inverse_row(far)[position]

    # -- identities ---------------------------------------------------------

    def id_at(self, position: int) -> int:
        """Identity of the node at ``position``."""
        return self.ids[position]

    def position_of(self, identity: int) -> int:
        """Position of the node with ``identity``."""
        return self._position_of_id[identity]

    # -- sense of direction -------------------------------------------------

    def label(self, position: int, port: int) -> int | None:
        """Chord label (cyclic distance) of a port, or None if unlabeled."""
        if not self.sense_of_direction:
            return None
        return port + 1

    def port_with_label(self, position: int, distance: int) -> int:
        """Port carrying label ``distance`` (sense-of-direction networks)."""
        if not self.sense_of_direction:
            raise ConfigurationError(
                "port_with_label requires a network with sense of direction"
            )
        if not 1 <= distance <= self.n - 1:
            raise ConfigurationError(
                f"distance must be in 1..{self.n - 1}, got {distance}"
            )
        return distance - 1


def complete_with_sense_of_direction(
    n: int, *, ids: Sequence[int] | None = None
) -> CompleteTopology:
    """Build a complete network with sense of direction.

    Every node's port ``d-1`` leads to the node at distance ``d`` along the
    Hamiltonian cycle and is labeled ``d`` — the structure of the paper's
    Figure 1.  The wiring is represented arithmetically, so construction is
    O(n) and the topology stays light even at N in the tens of thousands.
    """
    if ids is None:
        ids = list(range(n))
    if n < 2:
        raise ConfigurationError(f"a complete network needs n >= 2, got {n}")
    return CompleteTopology(n, ids, None, sense_of_direction=True)


def complete_without_sense(
    n: int,
    *,
    ids: Sequence[int] | None = None,
    port_strategy: PortStrategy | None = None,
    seed: int = 0,
) -> CompleteTopology:
    """Build a complete network whose port wiring is hidden from nodes.

    ``port_strategy`` picks the hidden wiring (default: uniformly random,
    derived deterministically from ``seed``).
    """
    if ids is None:
        ids = list(range(n))
    strategy = port_strategy if port_strategy is not None else RandomPorts()
    rng = random.Random(seed)
    port_neighbor = [
        strategy.assign(n, position, ids, rng) for position in range(n)
    ]
    return CompleteTopology(n, ids, port_neighbor, sense_of_direction=False)
