"""Network topologies: complete graphs, sense of direction, chordal rings."""
