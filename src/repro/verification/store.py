"""A flat, preallocated visited-state table for 64-bit fingerprints.

The PR 1 explorer kept ``dict[bytes16, frozenset[Action]]`` — every visited
state cost a 16-byte digest object, a dict entry and (usually) a frozenset
of tuples.  At a million states that is hundreds of MB of pointer-chasing.
:class:`FingerprintTable` replaces it with two parallel ``array('q')``
columns — open addressing with linear probing over a power-of-two capacity
— so each visited state occupies exactly 16 bytes of flat memory: the
8-byte hash-compacted fingerprint and an 8-byte *sleep mask*.

The sleep mask packs the stored sleep set of Godefroid's state-matching
rule as a bitmask over the state's canonical ``enabled_actions()`` order
(wake-ups first, then channels, both sorted).  A complete network at N=6
has at most ``6 + 30 = 36`` enabled actions, comfortably inside 63 bits;
the rare state with more than 63 enabled actions (N ≥ 9) spills its mask
into a small overflow dict rather than corrupting the column.

Masks are stored intersected with the *currently enabled* action set —
sound because the stored sleep set is only ever (a) intersected with
enabled-action subsets on revisit and (b) shrunk further; bits for actions
not enabled at the state can never be read.

``merge`` unions another table in (parallel workers return their private
tables; the parent deduplicates), keeping the *smaller* mask-population on
conflict — the weaker sleep constraint, which is the sound direction when
two searches met the same state with different sleep sets.
"""

from __future__ import annotations

from array import array
from collections.abc import Iterator

#: Fingerprint 0 marks an empty slot; a real fingerprint of 0 is remapped
#: (one fixed alias among 2^64 values — absorbed into the hash-compaction
#: collision budget).
_EMPTY = 0
_ZERO_ALIAS = -(2**63)  # valid 'q' value no Python hash() ever returns twice

#: Grow when load factor crosses this; linear probing degrades sharply past
#: ~0.7 occupancy.
_MAX_LOAD = 0.66


class FingerprintTable:
    """Open-addressed ``fingerprint -> sleep mask`` map in flat arrays."""

    __slots__ = ("_keys", "_values", "_mask", "_count", "_overflow")

    def __init__(self, capacity: int = 1 << 14) -> None:
        size = 1
        while size < capacity:
            size <<= 1
        self._keys = array("q", bytes(8 * size))
        self._values = array("q", bytes(8 * size))
        self._mask = size - 1
        self._count = 0
        #: fingerprint -> mask, for masks too wide for a 63-bit slot.
        self._overflow: dict[int, int] = {}

    def __len__(self) -> int:
        return self._count

    @property
    def capacity(self) -> int:
        return self._mask + 1

    def bytes_used(self) -> int:
        """Flat storage footprint (both columns), for the benchmarks."""
        return 16 * (self._mask + 1)

    @staticmethod
    def _normalize(fingerprint: int) -> int:
        return _ZERO_ALIAS if fingerprint == _EMPTY else fingerprint

    def _slot(self, key: int) -> int:
        """Index of ``key``'s slot, or of the empty slot to insert it at."""
        keys = self._keys
        mask = self._mask
        index = key & mask
        while True:
            present = keys[index]
            if present == key or present == _EMPTY:
                return index
            index = (index + 1) & mask

    def get(self, fingerprint: int) -> int | None:
        """The stored sleep mask, or None when the state is unvisited."""
        key = self._normalize(fingerprint)
        index = self._slot(key)
        if self._keys[index] == _EMPTY:
            return None
        value = self._values[index]
        if value == -1:
            return self._overflow[key]
        return value

    def put(self, fingerprint: int, mask: int) -> None:
        """Insert or overwrite one entry."""
        key = self._normalize(fingerprint)
        index = self._slot(key)
        if self._keys[index] == _EMPTY:
            self._keys[index] = key
            self._count += 1
            if self._count > _MAX_LOAD * (self._mask + 1):
                self._grow()
                index = self._slot(key)
        if mask < 2**63:
            if self._values[index] == -1:
                self._overflow.pop(key, None)
            self._values[index] = mask
        else:
            self._values[index] = -1
            self._overflow[key] = mask

    def _grow(self) -> None:
        old_keys, old_values = self._keys, self._values
        size = (self._mask + 1) << 2
        self._keys = array("q", bytes(8 * size))
        self._values = array("q", bytes(8 * size))
        self._mask = size - 1
        for index, key in enumerate(old_keys):
            if key != _EMPTY:
                new_index = self._slot(key)
                self._keys[new_index] = key
                self._values[new_index] = old_values[index]

    def __contains__(self, fingerprint: int) -> bool:
        key = self._normalize(fingerprint)
        return self._keys[self._slot(key)] != _EMPTY

    def fingerprints(self) -> Iterator[int]:
        """Every stored fingerprint (normalised form), unordered."""
        for key in self._keys:
            if key != _EMPTY:
                yield key

    def merge(self, other: "FingerprintTable") -> None:
        """Union ``other`` in, keeping the weaker sleep mask on conflict."""
        for index, key in enumerate(other._keys):
            if key == _EMPTY:
                continue
            other_value = other._values[index]
            other_mask = (
                other._overflow[key] if other_value == -1 else other_value
            )
            mine = self.get(key)
            if mine is None:
                self.put(key, other_mask)
            else:
                # Fewer mask bits = fewer actions asserted as covered
                # elsewhere = the safe union of the two visits.
                merged = mine & other_mask
                if merged != mine:
                    self.put(key, merged)

    def packed(self) -> tuple[bytes, bytes, dict[int, int]]:
        """Picklable flat form for cheap worker-to-parent transfer."""
        return (
            self._keys.tobytes(),
            self._values.tobytes(),
            dict(self._overflow),
        )

    @classmethod
    def unpacked(
        cls, packed: tuple[bytes, bytes, dict[int, int]]
    ) -> "FingerprintTable":
        keys_bytes, values_bytes, overflow = packed
        table = cls.__new__(cls)
        table._keys = array("q")
        table._keys.frombytes(keys_bytes)
        table._values = array("q")
        table._values.frombytes(values_bytes)
        table._mask = len(table._keys) - 1
        table._count = sum(1 for key in table._keys if key != _EMPTY)
        table._overflow = overflow
        return table
