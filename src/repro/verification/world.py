"""The lock-step execution world shared by the explorer, fuzzer and replayer.

The timed simulator cannot branch (its event queue holds closures), so all
of :mod:`repro.verification` runs on a separate *lock-step* world of plain
FIFO queues.  Node state machines are reused verbatim — the **same**
``Node`` classes the simulator runs, driven through the same
``NodeContext`` interface, so there is no model/implementation gap.

A configuration is ``(per-node protocol state, per-channel FIFO queue,
pending spontaneous wake-ups)``.  The adversary's remaining freedom, once
latencies are abstracted away, is exactly the set of *actions*:

* ``("wake", position)`` — fire one pending spontaneous wake-up;
* ``("deliver", (src, dst))`` — deliver the head-of-line message of one
  channel (FIFO fixes the order *within* a channel; Section 2 guarantees
  nothing *across* channels).

Three things make the world cheap enough to explore at N=6:

**Persistent nodes and memoised local transitions.**
:meth:`LockStepWorld.branch` copies only the container skeleton (node
list, queue dict, fingerprint caches); node objects and queued messages
are shared between branches and treated as immutable values.  A node's
``receive``/``wake`` is a pure function of its own structural state plus
the arriving ``(port, message)``, so its effect — new state, sends,
leader declarations — is memoised per ``(position, state hash, port,
message hash)`` (:meth:`LockStepWorld._local_transition`).  The vast
majority of transitions an exhaustive search takes are *repeats* of a
local transition seen on another interleaving; those replace the actor's
node entry with a shared representative object by pointer and replay the
captured sends, running no protocol code, copying nothing and re-freezing
nothing.  Only the first occurrence of each local transition pays for a
node clone, the receive call and re-freezing — everything else is a dict
hit.

**Structural fingerprints, hash-compacted to one machine word.**  Node and
message state is *frozen* into nested tuples of plain values
(:func:`freeze_value`) and hashed with Python's tuple hash — no pickling
anywhere on the hot path.  Each node and each non-empty channel carries a
cached 64-bit hash; applying an action invalidates only the hashes it
touched, and per-message hashes are memoised globally (messages are
immutable and heavily shared between branches).  The world fingerprint is
a single ``int`` that fits an 8-byte table slot (see
:mod:`repro.verification.store`) instead of a 16-byte digest object plus a
set entry.  Hash compaction trades a vanishing collision probability
(Stern–Dill: ~``|S|²/2⁶⁴``, under 10⁻⁹ for the ~10⁶-state searches run
here) for roughly 5× less resident memory per visited state.  Fork-started
workers inherit the interpreter's hash seed, so fingerprints are
comparable across the parallel explorer's worker pool.

**A permutation-apply primitive.**  :meth:`LockStepWorld.state_tuple`
returns the frozen structural state, optionally relabelled through a node
permutation (positions, identities and — for hidden-wiring networks —
per-node port renumberings).  :mod:`repro.verification.symmetry` builds
automorphism-group candidates on top of it to canonicalise fingerprints
modulo rotation (sense of direction) or arbitrary relabelling (no sense
of direction).
"""

from __future__ import annotations

import copy
import enum
from typing import Any, Sequence

from repro.core.errors import ProtocolViolation
from repro.core.messages import Message, message_bits
from repro.core.node import Node, NodeContext
from repro.core.protocol import ElectionProtocol
from repro.topology.complete import CompleteTopology

#: One adversary choice: ``("wake", position)``, ``("deliver", (src, dst))``
#: or — in fault-budgeted fuzzing worlds only — ``("drop", (src, dst))``.
Action = tuple[str, Any]


def actor(action: Action) -> int:
    """The position whose node an action steps.

    ``wake p`` steps node ``p``; ``deliver (src, dst)`` steps node ``dst``;
    ``drop (src, dst)`` is attributed to ``dst`` too (the deprived node).
    This is the key to the independence relation: actions with different
    actors commute (see :func:`independent`).
    """
    kind, arg = action
    return arg if kind == "wake" else arg[1]


def independent(a: Action, b: Action) -> bool:
    """Whether two enabled actions commute (Mazurkiewicz independence).

    Sufficient condition, proved in ``docs/verification.md``: actions with
    distinct actors commute.  Each action mutates exactly its actor's node,
    pops exactly its own channel's head, and only ever *appends* to other
    channels' tails — and appending at the tail commutes with popping the
    head of a non-empty FIFO queue.
    """
    return actor(a) != actor(b)


# -- structural freezing -----------------------------------------------------
#
# ``freeze_value`` turns protocol state (node ``__dict__`` entries, message
# fields, nested records) into nested tuples of hashable plain values.  The
# encoding is canonical for the state machines in this repo: every node
# attribute is created in ``__init__`` (so ``__dict__`` iteration order is
# the class-definition order for all nodes of a type), and the only
# history-order-sensitive containers — dicts keyed by token/port and sets —
# are sorted.

#: Field names whose ``int`` values are node *identities* (relabelled by a
#: permutation's identity map).  ``node_id`` covers ``Strength.node_id``.
ID_FIELDS = frozenset({"cand", "max_seen", "node_id"})

#: Field names whose ``int`` values are *port numbers* of the holding node.
PORT_FIELDS = frozenset({"owner_port", "reply_port", "_next_port"})

#: Fields holding sequences of ports.
PORT_SEQ_FIELDS = frozenset({"_fp_proceed_ports", "_check_queue"})

#: Fields holding ``(port, payload)`` pairs (or one such pair).
PORT_PAIR_FIELDS = frozenset({"_retry_ports", "_buffered"})

#: Fields holding dicts keyed by port.
PORT_KEYED_FIELDS = frozenset({"_in_flight"})


class Relabeling:
    """How one node's frozen state is rewritten under a permutation.

    ``id_map[old_id] -> new_id`` relabels identity-valued fields;
    ``port_map[old_port] -> new_port`` relabels port-valued fields of this
    particular node (``None`` means ports keep their numbers, as they do
    under rotations of the canonical cyclic wiring).  Values outside the
    maps' domains (sentinels like ``-1``, exhausted port counters equal to
    ``num_ports``) pass through unchanged.
    """

    __slots__ = ("id_map", "port_map")

    def __init__(
        self,
        id_map: dict[int, int] | None,
        port_map: Sequence[int] | None,
    ) -> None:
        self.id_map = id_map
        self.port_map = port_map

    def ident(self, value: int) -> int:
        """Relabel an identity-valued field (out-of-map values pass through)."""
        if self.id_map is None:
            return value
        return self.id_map.get(value, value)

    def port(self, value: int) -> int:
        """Relabel a port-valued field (out-of-range values pass through)."""
        pm = self.port_map
        if pm is None or not 0 <= value < len(pm):
            return value
        return pm[value]


_IDENTITY = Relabeling(None, None)

#: Types a copy-on-write node clone can share with the original outright.
_SHAREABLE = (int, float, str, bytes, frozenset, enum.Enum)


def _is_shareable(value: Any) -> bool:
    return (
        value is None
        or isinstance(value, _SHAREABLE)
        or (
            isinstance(value, tuple)
            and all(_is_shareable(item) for item in value)
        )
    )


def _copy_state_value(value: Any) -> Any:
    """An independent copy of one node attribute, sharing immutables.

    The semantics of ``copy.deepcopy`` for the value shapes protocol state
    actually uses — scalars, ``Strength`` tuples, enums, lists/dicts/sets
    of those, and plain mutable records — at a fraction of the cost,
    because immutable values (most fields) are shared, not copied.
    Anything unrecognised falls back to ``deepcopy``.
    """
    if value is None or isinstance(value, _SHAREABLE):
        return value
    if isinstance(value, tuple):
        if all(_is_shareable(item) for item in value):
            return value
        return copy.deepcopy(value)
    if isinstance(value, list):
        return [_copy_state_value(item) for item in value]
    if isinstance(value, dict):
        return {key: _copy_state_value(item) for key, item in value.items()}
    if isinstance(value, set):
        return set(value)
    clone_dict = getattr(value, "__dict__", None)
    if clone_dict is not None:
        clone = object.__new__(type(value))
        clone.__dict__.update(
            (key, _copy_state_value(item)) for key, item in clone_dict.items()
        )
        return clone
    return copy.deepcopy(value)


def freeze_value(value: Any, relabel: Relabeling = _IDENTITY, field: str = ""):
    """A hashable structural encoding of one protocol-state value.

    Handles the value shapes protocol nodes and messages actually use:
    scalars, named tuples (``Strength``), frozen dataclasses (messages),
    dicts, lists/tuples, sets and plain records with a ``__dict__``.
    ``field`` is the attribute name the value was reached through; the
    ``*_FIELDS`` registries use it to decide identity/port relabelling.
    """
    if value is None or value is True or value is False:
        return value
    if type(value) is int:
        if field in ID_FIELDS:
            return relabel.ident(value)
        if field in PORT_FIELDS or field in PORT_SEQ_FIELDS:
            return relabel.port(value)
        return value
    if type(value) is str or type(value) is float or type(value) is bytes:
        return value
    if isinstance(value, enum.Enum):
        # Encode by name+value, not object identity.
        return (type(value).__name__, value.value)
    if isinstance(value, tuple) and hasattr(value, "_fields"):
        # Named tuple (Strength): relabel field-wise, tag with the type.
        return (type(value).__name__,) + tuple(
            freeze_value(v, relabel, name)
            for name, v in zip(value._fields, value)
        )
    if isinstance(value, (list, tuple)):
        if field in PORT_PAIR_FIELDS and value and type(value[0]) is int:
            # one (port, payload) pair, e.g. protocol E's ``_buffered``
            return (relabel.port(value[0]),) + tuple(
                freeze_value(v, relabel) for v in value[1:]
            )
        if field in PORT_PAIR_FIELDS:
            return tuple(
                freeze_value(v, relabel, field) for v in value
            )
        return tuple(freeze_value(v, relabel, field) for v in value)
    if isinstance(value, dict):
        if field in PORT_KEYED_FIELDS:
            return tuple(
                sorted(
                    (relabel.port(k), freeze_value(v, relabel))
                    for k, v in value.items()
                )
            )
        return tuple(
            sorted((k, freeze_value(v, relabel)) for k, v in value.items())
        )
    if isinstance(value, (set, frozenset)):
        return tuple(sorted(freeze_value(v, relabel, field) for v in value))
    if hasattr(value, "__dataclass_fields__"):
        # Frozen message dataclasses; tag with the type so two message
        # types with identical field values cannot collide structurally.
        return (type(value).__name__,) + tuple(
            freeze_value(getattr(value, name), relabel, name)
            for name in value.__dataclass_fields__
        )
    if hasattr(value, "__dict__"):
        # Plain record (e.g. a pending-challenge entry).
        return (type(value).__name__,) + tuple(
            (k, freeze_value(v, relabel, k))
            for k, v in value.__dict__.items()
        )
    return value


#: Global per-message structural-hash memo.  Messages are immutable frozen
#: dataclasses shared across branches, so the memo hits constantly; keys
#: compare by value *and* class (dataclass ``__eq__`` rejects other types),
#: so distinct message types never alias.
_MESSAGE_HASH: dict[Message, int] = {}


def message_hash(message: Message) -> int:
    """Memoised 64-bit structural hash of one (immutable) message."""
    h = _MESSAGE_HASH.get(message)
    if h is None:
        h = _MESSAGE_HASH[message] = hash(freeze_value(message))
    return h


class StepContext(NodeContext):
    """Node capabilities inside the lock-step world."""

    def __init__(self, world: "LockStepWorld", position: int) -> None:
        topology = world.topology
        self._world = world
        self._position = position
        self.node_id = topology.id_at(position)
        self.n = topology.n
        self.num_ports = topology.num_ports
        self.has_sense_of_direction = topology.sense_of_direction

    def send(self, port: int, message: Message) -> None:  # noqa: D102
        self._world.enqueue(self._position, port, message)

    def port_label(self, port: int):  # noqa: D102
        return self._world.topology.label(self._position, port)

    def port_with_label(self, distance: int) -> int:  # noqa: D102
        return self._world.topology.port_with_label(self._position, distance)

    def now(self) -> float:  # noqa: D102
        # Logical time: number of transitions taken so far.
        return float(self._world.steps)

    def declare_leader(self) -> None:  # noqa: D102
        self._world.on_leader(self._position)

    def trace(self, kind: str, **detail: Any) -> None:  # noqa: D102
        pass  # the lock-step world keeps no traces; fingerprints carry state


class _CaptureContext(NodeContext):
    """Context for running one node transition in isolation.

    Sends and leader declarations are captured instead of applied, so the
    world can memoise the transition's effect (see
    :meth:`LockStepWorld._local_transition`) and replay it — including the
    audit and declaration ordering — without re-running the node code.
    """

    __slots__ = (
        "node_id",
        "n",
        "num_ports",
        "has_sense_of_direction",
        "_topology",
        "_position",
        "sends",
        "declared",
    )

    def __init__(self, topology: CompleteTopology, position: int) -> None:
        self.node_id = topology.id_at(position)
        self.n = topology.n
        self.num_ports = topology.num_ports
        self.has_sense_of_direction = topology.sense_of_direction
        self._topology = topology
        self._position = position
        self.sends: list[tuple[int, Message]] = []
        self.declared = 0

    def send(self, port: int, message: Message) -> None:  # noqa: D102
        message_bits(message, self.n)  # audit at the same point as a live send
        self.sends.append((port, message))

    def port_label(self, port: int):  # noqa: D102
        return self._topology.label(self._position, port)

    def port_with_label(self, distance: int) -> int:  # noqa: D102
        return self._topology.port_with_label(self._position, distance)

    def now(self) -> float:  # noqa: D102
        # No protocol reads the clock in its transition logic (they only
        # pass it to traces, which the lock-step world drops); memoised
        # transitions depend on (state, port, message) alone.
        return 0.0

    def declare_leader(self) -> None:  # noqa: D102
        self.declared += 1

    def trace(self, kind: str, **detail: Any) -> None:  # noqa: D102
        pass


def _clone_node(node: Node, ctx: NodeContext) -> Node:
    """An independent copy of ``node`` wired to ``ctx``."""
    clone = object.__new__(type(node))
    clone_dict = clone.__dict__
    for key, value in node.__dict__.items():
        if key != "ctx":
            clone_dict[key] = _copy_state_value(value)
    clone.ctx = ctx
    return clone


def _freeze_node(node: Node, relabel: Relabeling = _IDENTITY):
    """Frozen structural state of one node (type-tagged nested tuples).

    Node attributes are created in ``__init__`` for every protocol in the
    repo, so ``__dict__`` iteration order is class-definition order and
    the values-only encoding is canonical without sorting or field names.
    """
    items: list = [type(node).__name__]
    append = items.append
    identity = relabel is _IDENTITY
    for key, value in node.__dict__.items():
        if key == "ctx":
            continue
        if identity and (type(value) is int or value is None):
            append(value)
        else:
            append(freeze_value(value, relabel, key))
    return tuple(items)


class LockStepWorld:
    """One node-states + channel-queues configuration, branchable cheaply."""

    def __init__(
        self,
        protocol: ElectionProtocol,
        topology: CompleteTopology,
        base_positions: tuple[int, ...],
        fault_budget: int = 0,
    ) -> None:
        protocol.validate(topology)
        self.topology = topology
        #: Remaining ``("drop", link)`` actions the adversary may still
        #: take.  Zero (the default, and the explorer's only mode) keeps
        #: the action set at the paper's reliable-link model; the fuzzer's
        #: fault families set it per episode.  Budget and drop count are
        #: deliberately NOT folded into the incremental fingerprint: fault
        #: worlds are for fuzzing, where no state deduplication happens.
        self.fault_budget = fault_budget
        #: Messages destroyed by ``("drop", ...)`` actions so far.
        self.dropped = 0
        self.nodes: list[Node] = [
            protocol.create_node(StepContext(self, position))
            for position in range(topology.n)
        ]
        #: Per-channel FIFO contents as immutable tuples, keyed (src, dst);
        #: absent key == empty channel.
        self.queues: dict[tuple[int, int], tuple[Message, ...]] = {}
        self.pending_wakes: frozenset[int] = frozenset(base_positions)
        self.leaders: tuple[int, ...] = ()
        self.steps = 0
        self.messages_sent = 0
        self._node_fp: list[int] = [
            hash(self.node_state(p)) for p in range(topology.n)
        ]
        self._queue_fp: dict[tuple[int, int], int] = {}
        # Local-transition memo and state-hash -> representative node map,
        # shared by reference across every branch of this world (pure
        # deterministic data; see ``_local_transition``).
        self._trans: dict = {}
        self._reps: dict[int, Node] = {
            fp: node for fp, node in zip(self._node_fp, self.nodes)
        }
        # Zobrist-style incremental world fingerprint: the XOR of one
        # salted hash per component (node state, channel content, pending
        # wake-up).  Every mutation folds the old component out and the
        # new one in, so ``fingerprint()`` is O(1) instead of rebuilding
        # and sorting the whole configuration at every arrival.
        fp = 0
        for p, node_fp in enumerate(self._node_fp):
            fp ^= hash((1, p, node_fp))
        for p in self.pending_wakes:
            fp ^= hash((3, p))
        self._fp = fp

    # -- branching ----------------------------------------------------------

    def branch(self) -> "LockStepWorld":
        """A copy sharing node objects and queued messages with ``self``.

        Node objects are treated as immutable values once installed (a
        transition *replaces* its actor's entry in ``nodes`` with a shared
        representative, never mutates in place), so a branch is O(N)
        pointer copies — no copy-on-write bookkeeping is needed, and two
        sibling branches can never observe each other's steps.  The
        transition memo and representative map are shared by reference:
        they are pure functions of (state, port, message), so every branch
        of a campaign feeds the same caches.
        """
        child = object.__new__(LockStepWorld)
        child.topology = self.topology
        child.fault_budget = self.fault_budget
        child.dropped = self.dropped
        child.nodes = list(self.nodes)
        child.queues = dict(self.queues)
        child.pending_wakes = self.pending_wakes
        child.leaders = self.leaders
        child.steps = self.steps
        child.messages_sent = self.messages_sent
        child._node_fp = list(self._node_fp)
        child._queue_fp = dict(self._queue_fp)
        child._fp = self._fp
        child._trans = self._trans
        child._reps = self._reps
        return child

    # -- transitions ---------------------------------------------------------

    def enqueue(self, position: int, port: int, message: Message) -> None:
        """Append a message to the channel behind ``position``'s ``port``."""
        message_bits(message, self.topology.n)  # O(log N) audit, as in sim
        far = self.topology.neighbor(position, port)
        link = (position, far)
        queue = self.queues.get(link, ()) + (message,)
        self.queues[link] = queue
        # Chain the new message's memoised hash onto the old queue hash —
        # O(1) per enqueue instead of re-serialising the whole queue.
        old = self._queue_fp.get(link)
        new = hash((old if old is not None else 0, message_hash(message)))
        self._queue_fp[link] = new
        if old is not None:
            self._fp ^= hash((2, link, old))
        self._fp ^= hash((2, link, new))
        self.messages_sent += 1

    def on_leader(self, position: int) -> None:
        """Record a leader declaration; raise on the second distinct one."""
        self.leaders = self.leaders + (position,)
        if len(set(self.leaders)) > 1:
            ids = sorted(self.topology.id_at(p) for p in set(self.leaders))
            raise ProtocolViolation(f"two leaders declared: {ids}")

    def enabled_actions(self) -> list[Action]:
        """Every choice the adversary has in this configuration, in a
        canonical deterministic order (wake-ups, then channel deliveries,
        then — while the fault budget lasts — channel-head drops)."""
        actions: list[Action] = [
            ("wake", position) for position in sorted(self.pending_wakes)
        ]
        links = sorted(self.queues)
        actions.extend(("deliver", link) for link in links)
        if self.fault_budget > 0:
            actions.extend(("drop", link) for link in links)
        return actions

    def peek_message(self, link: tuple[int, int]) -> Message:
        """Head-of-line message of a channel (for narration; no mutation)."""
        return self.queues[link][0]

    def _pop_queue(self, link: tuple[int, int]) -> Message:
        queue = self.queues[link]
        message, rest = queue[0], queue[1:]
        self._fp ^= hash((2, link, self._queue_fp[link]))
        if rest:
            self.queues[link] = rest
            # Head pops cannot be chained incrementally; rehash the (short)
            # remainder from the memoised per-message hashes.
            fp = 0
            for m in rest:
                fp = hash((fp, message_hash(m)))
            self._queue_fp[link] = fp
            self._fp ^= hash((2, link, fp))
        else:
            del self.queues[link]
            del self._queue_fp[link]
        return message

    def pop_head(self, link: tuple[int, int]) -> None:
        """Consume a channel head **without** running the receiver.

        Only sound when the delivery is known to be inert — i.e. running
        ``receive`` on the head message would change nothing but the queue
        (see the compression layer in :mod:`repro.verification.explore`).
        Counts as a step so logical time still advances per transition.
        """
        self.steps += 1
        self._pop_queue(link)

    def drop_wakes(self, positions) -> None:
        """Clear pending wake-up flags without stepping the nodes.

        Used by the explorer's stale-wake compression: the nodes are
        already awake, so the flags are pure bookkeeping.  Each cleared
        flag counts as a step (a transition happened, invisibly).
        """
        for position in positions:
            self._fp ^= hash((3, position))
        self.pending_wakes = self.pending_wakes - frozenset(positions)
        self.steps += len(positions)

    def _local_transition(
        self, position: int, port: int, message: Message | None
    ) -> tuple[int, tuple[tuple[int, Message], ...], int]:
        """The memoised effect of one node transition.

        A node's ``receive`` (and ``wake``) is a pure function of its own
        structural state plus the arriving ``(port, message)`` — contexts
        expose only constants, and no protocol reads the clock — so the
        effect ``(new state hash, sends, leader declarations)`` is cached
        per ``(position, state hash, port, message hash)`` and shared by
        every branch of the campaign.  ``port < 0`` encodes a spontaneous
        wake-up.  On a miss the transition runs once, in isolation, on a
        clone wired to a :class:`_CaptureContext`; the clone then becomes
        the shared representative object for its new state hash, so cache
        hits replace the actor's node by pointer — no copy, no protocol
        code, no re-freezing.
        """
        fp = self._node_fp[position]
        key = (
            (position, fp)
            if port < 0
            else (position, fp, port, message_hash(message))
        )
        entry = self._trans.get(key)
        if entry is None:
            ctx = _CaptureContext(self.topology, position)
            clone = _clone_node(self.nodes[position], ctx)
            if port < 0:
                clone.wake(spontaneous=True)
            else:
                clone.receive(port, message)
            new_fp = hash(_freeze_node(clone))
            if new_fp not in self._reps:
                self._reps[new_fp] = clone
            entry = self._trans[key] = (new_fp, tuple(ctx.sends), ctx.declared)
        return entry

    def _install(
        self,
        position: int,
        entry: tuple[int, tuple[tuple[int, Message], ...], int],
    ) -> None:
        """Apply a memoised transition effect to this world."""
        new_fp, sends, declared = entry
        old_fp = self._node_fp[position]
        if new_fp != old_fp:
            self.nodes[position] = self._reps[new_fp]
            self._node_fp[position] = new_fp
            self._fp ^= hash((1, position, old_fp)) ^ hash((1, position, new_fp))
        for port, message in sends:
            self.enqueue(position, port, message)
        for _ in range(declared):
            self.on_leader(position)

    def apply(self, action: Action) -> None:
        """Take one transition: fire a wake-up, deliver a channel head, or
        (fault-budgeted worlds) destroy a channel head."""
        kind, arg = action
        self.steps += 1
        if kind == "wake":
            self._fp ^= hash((3, arg))
            self.pending_wakes = self.pending_wakes - {arg}
            self._install(arg, self._local_transition(arg, -1, None))
            return
        if kind == "drop":
            self._pop_queue(arg)
            self.dropped += 1
            self.fault_budget -= 1
            return
        src, dst = arg
        message = self._pop_queue(arg)
        port = self.topology.port_to(dst, src)
        self._install(dst, self._local_transition(dst, port, message))

    def peek_transition(
        self, link: tuple[int, int]
    ) -> tuple[int, tuple[tuple[int, Message], ...], int]:
        """The effect delivering ``link``'s head would have, without taking
        the step.  A delivery is *inert* exactly when the returned entry is
        ``(current node hash, no sends, no declarations)`` — the test the
        explorer's compression layer runs per channel head."""
        src, dst = link
        message = self.queues[link][0]
        return self._local_transition(dst, self.topology.port_to(dst, src), message)

    # -- identity -------------------------------------------------------------

    def node_state(
        self, position: int, relabel: Relabeling = _IDENTITY
    ):
        """Frozen structural state of one node (see :func:`_freeze_node`)."""
        return _freeze_node(self.nodes[position], relabel)

    def node_hash(self, position: int) -> int:
        """The maintained 64-bit structural hash of one node's state."""
        return self._node_fp[position]

    def fingerprint(self) -> int:
        """A 64-bit identity of this configuration (hash-compacted).

        The Zobrist-style XOR of per-component hashes maintained
        incrementally by every mutation, so reading it is O(1).
        Collisions merge distinct states silently — the Stern–Dill risk
        quantified in the module docstring — which every search here
        accepts in exchange for an 8-byte flat-table entry.
        """
        return self._fp

    # -- permutation-apply primitive -----------------------------------------

    def state_tuple(
        self,
        positions: Sequence[int] | None = None,
        id_map: dict[int, int] | None = None,
        port_maps: Sequence[Sequence[int] | None] | None = None,
    ):
        """The frozen structural world state, optionally permuted.

        ``positions[p]`` is where the node at position ``p`` lands (``None``
        = identity).  ``id_map`` relabels identity-valued fields and
        ``port_maps[p]`` renumbers node ``p``'s ports — rotations of the
        canonical cyclic wiring need neither, arbitrary relabellings of a
        hidden wiring need both (see :mod:`repro.verification.symmetry`).

        The encoding covers exactly what :meth:`fingerprint` covers — node
        states, channel contents, pending wake-ups — so two worlds with
        equal ``state_tuple()`` are behaviourally identical, and a world's
        orbit under a group of permutations is the set of its permuted
        tuples.
        """
        n = self.topology.n
        if positions is None:
            positions = range(n)
        relabels = [
            Relabeling(id_map, port_maps[p] if port_maps else None)
            for p in range(n)
        ]
        nodes = [None] * n
        for p in range(n):
            nodes[positions[p]] = self.node_state(p, relabels[p])
        queues = sorted(
            (
                (positions[src], positions[dst]),
                tuple(
                    freeze_value(m, relabels[src]) for m in queue
                ),
            )
            for (src, dst), queue in self.queues.items()
        )
        wakes = tuple(sorted(positions[p] for p in self.pending_wakes))
        return (tuple(nodes), tuple(queues), wakes)
