"""The lock-step execution world shared by the explorer, fuzzer and replayer.

The timed simulator cannot branch (its event queue holds closures), so all
of :mod:`repro.verification` runs on a separate *lock-step* world of plain
FIFO queues.  Node state machines are reused verbatim — the **same**
``Node`` classes the simulator runs, driven through the same
``NodeContext`` interface, so there is no model/implementation gap.

A configuration is ``(per-node protocol state, per-channel FIFO queue,
pending spontaneous wake-ups)``.  The adversary's remaining freedom, once
latencies are abstracted away, is exactly the set of *actions*:

* ``("wake", position)`` — fire one pending spontaneous wake-up;
* ``("deliver", (src, dst))`` — deliver the head-of-line message of one
  channel (FIFO fixes the order *within* a channel; Section 2 guarantees
  nothing *across* channels).

Two things make the world cheap enough to explore at N=5:

**Copy-on-write branching.**  :meth:`LockStepWorld.branch` copies only the
container skeleton (node list, queue dict, fingerprint caches); node
objects and queued messages are shared between branches.  A node is
deep-copied lazily, the first time a branch actually steps it
(:meth:`LockStepWorld._own_node`), so branching costs O(N) pointer copies
plus one node copy per transition instead of a whole-world ``pickle``
round-trip.  Queued messages are frozen dataclasses and never mutated, so
queues are stored as immutable tuples and shared freely.

**Incremental hash-chained fingerprints.**  Each node and each non-empty
channel carries a cached 16-byte BLAKE2b digest of its pickled state;
applying an action invalidates only the digests it touched.  The world
fingerprint chains the per-node digests, per-channel digests and the
pending wake-up set into one digest, so a transition re-hashes one node
and O(1) short queues instead of re-pickling the whole configuration.
"""

from __future__ import annotations

import copy
import pickle
from hashlib import blake2b
from typing import Any

from repro.core.errors import ProtocolViolation
from repro.core.messages import Message, message_bits
from repro.core.node import Node, NodeContext
from repro.core.protocol import ElectionProtocol
from repro.topology.complete import CompleteTopology

#: One adversary choice: ``("wake", position)`` or ``("deliver", (src, dst))``.
Action = tuple[str, Any]

_DIGEST_SIZE = 16


def actor(action: Action) -> int:
    """The position whose node an action steps.

    ``wake p`` steps node ``p``; ``deliver (src, dst)`` steps node ``dst``.
    This is the key to the independence relation: actions with different
    actors commute (see :func:`independent`).
    """
    kind, arg = action
    return arg if kind == "wake" else arg[1]


def independent(a: Action, b: Action) -> bool:
    """Whether two enabled actions commute (Mazurkiewicz independence).

    Sufficient condition, proved in ``docs/verification.md``: actions with
    distinct actors commute.  Each action mutates exactly its actor's node,
    pops exactly its own channel's head, and only ever *appends* to other
    channels' tails — and appending at the tail commutes with popping the
    head of a non-empty FIFO queue.
    """
    return actor(a) != actor(b)


class StepContext(NodeContext):
    """Node capabilities inside the lock-step world."""

    def __init__(self, world: "LockStepWorld", position: int) -> None:
        topology = world.topology
        self._world = world
        self._position = position
        self.node_id = topology.id_at(position)
        self.n = topology.n
        self.num_ports = topology.num_ports
        self.has_sense_of_direction = topology.sense_of_direction

    def send(self, port: int, message: Message) -> None:  # noqa: D102
        self._world.enqueue(self._position, port, message)

    def port_label(self, port: int):  # noqa: D102
        return self._world.topology.label(self._position, port)

    def port_with_label(self, distance: int) -> int:  # noqa: D102
        return self._world.topology.port_with_label(self._position, distance)

    def now(self) -> float:  # noqa: D102
        # Logical time: number of transitions taken so far.
        return float(self._world.steps)

    def declare_leader(self) -> None:  # noqa: D102
        self._world.on_leader(self._position)

    def trace(self, kind: str, **detail: Any) -> None:  # noqa: D102
        pass  # the lock-step world keeps no traces; fingerprints carry state


class LockStepWorld:
    """One node-states + channel-queues configuration, branchable cheaply."""

    def __init__(
        self,
        protocol: ElectionProtocol,
        topology: CompleteTopology,
        base_positions: tuple[int, ...],
    ) -> None:
        protocol.validate(topology)
        self.topology = topology
        self.nodes: list[Node] = [
            protocol.create_node(StepContext(self, position))
            for position in range(topology.n)
        ]
        #: Per-channel FIFO contents as immutable tuples, keyed (src, dst);
        #: absent key == empty channel.
        self.queues: dict[tuple[int, int], tuple[Message, ...]] = {}
        self.pending_wakes: frozenset[int] = frozenset(base_positions)
        self.leaders: tuple[int, ...] = ()
        self.steps = 0
        self.messages_sent = 0
        # Copy-on-write bookkeeping: positions whose node object belongs
        # exclusively to this world (safe to mutate in place).
        self._owned: set[int] = set(range(topology.n))
        self._node_fp: list[bytes | None] = [None] * topology.n
        self._queue_fp: dict[tuple[int, int], bytes] = {}

    # -- branching ----------------------------------------------------------

    def branch(self) -> "LockStepWorld":
        """A copy sharing node objects and queued messages with ``self``.

        After branching, neither world owns any node exclusively; the first
        transition a world applies to a node copies it (copy-on-write).
        """
        child = object.__new__(LockStepWorld)
        child.topology = self.topology
        child.nodes = list(self.nodes)
        child.queues = dict(self.queues)
        child.pending_wakes = self.pending_wakes
        child.leaders = self.leaders
        child.steps = self.steps
        child.messages_sent = self.messages_sent
        child._owned = set()
        self._owned = set()  # our nodes are now shared with the child
        child._node_fp = list(self._node_fp)
        child._queue_fp = dict(self._queue_fp)
        return child

    def _own_node(self, position: int) -> Node:
        """The node at ``position``, deep-copied first if it is shared."""
        node = self.nodes[position]
        if position in self._owned:
            return node
        clone = object.__new__(type(node))
        for key, value in node.__dict__.items():
            if key != "ctx":
                clone.__dict__[key] = copy.deepcopy(value)
        clone.ctx = StepContext(self, position)
        self.nodes[position] = clone
        self._owned.add(position)
        return clone

    # -- transitions ---------------------------------------------------------

    def enqueue(self, position: int, port: int, message: Message) -> None:
        """Append a message to the channel behind ``position``'s ``port``."""
        message_bits(message, self.topology.n)  # O(log N) audit, as in sim
        far = self.topology.neighbor(position, port)
        link = (position, far)
        queue = self.queues.get(link, ()) + (message,)
        self.queues[link] = queue
        self._queue_fp[link] = blake2b(
            pickle.dumps(queue, protocol=4), digest_size=_DIGEST_SIZE
        ).digest()
        self.messages_sent += 1

    def on_leader(self, position: int) -> None:
        """Record a leader declaration; raise on the second distinct one."""
        self.leaders = self.leaders + (position,)
        if len(set(self.leaders)) > 1:
            ids = sorted(self.topology.id_at(p) for p in set(self.leaders))
            raise ProtocolViolation(f"two leaders declared: {ids}")

    def enabled_actions(self) -> list[Action]:
        """Every choice the adversary has in this configuration, in a
        canonical deterministic order (wake-ups first, then channels)."""
        actions: list[Action] = [
            ("wake", position) for position in sorted(self.pending_wakes)
        ]
        actions.extend(("deliver", link) for link in sorted(self.queues))
        return actions

    def peek_message(self, link: tuple[int, int]) -> Message:
        """Head-of-line message of a channel (for narration; no mutation)."""
        return self.queues[link][0]

    def apply(self, action: Action) -> None:
        """Take one transition: fire a wake-up or deliver a channel head."""
        kind, arg = action
        self.steps += 1
        if kind == "wake":
            self.pending_wakes = self.pending_wakes - {arg}
            node = self._own_node(arg)
            self._node_fp[arg] = None
            if not node.awake:
                node.wake(spontaneous=True)
            return
        src, dst = arg
        queue = self.queues[arg]
        message, rest = queue[0], queue[1:]
        if rest:
            self.queues[arg] = rest
            self._queue_fp[arg] = blake2b(
                pickle.dumps(rest, protocol=4), digest_size=_DIGEST_SIZE
            ).digest()
        else:
            del self.queues[arg]
            del self._queue_fp[arg]
        port = self.topology.port_to(dst, src)
        node = self._own_node(dst)
        self._node_fp[dst] = None
        node.receive(port, message)

    # -- identity -------------------------------------------------------------

    def _compute_node_fp(self, position: int) -> bytes:
        node = self.nodes[position]
        projection = sorted(
            (key, value)
            for key, value in node.__dict__.items()
            if key != "ctx"
        )
        return blake2b(
            pickle.dumps(projection, protocol=4), digest_size=_DIGEST_SIZE
        ).digest()

    def fingerprint(self) -> bytes:
        """A canonical 16-byte identity of this configuration.

        Chains the cached per-node digests, per-channel digests and the
        pending wake-up set; only digests invalidated by the last action
        are recomputed.  Node state is projected to ``__dict__`` minus the
        context handle (every other field is protocol data: ints, enums,
        strengths, pending-challenge records — all picklable and
        value-compared).
        """
        fps = self._node_fp
        for position in range(len(fps)):
            if fps[position] is None:
                fps[position] = self._compute_node_fp(position)
        chain = blake2b(digest_size=_DIGEST_SIZE)
        for digest in fps:
            chain.update(digest)  # type: ignore[arg-type]
        for link in sorted(self._queue_fp):
            chain.update(b"%d:%d" % link)
            chain.update(self._queue_fp[link])
        chain.update(repr(sorted(self.pending_wakes)).encode())
        return chain.digest()
