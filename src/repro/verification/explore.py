"""Exhaustive interleaving exploration — a small explicit-state checker.

The paper's safety claims are "for every execution"; random delay sampling
only ever visits a sliver of that space.  For small N this module explores
it **completely**: the asynchronous adversary's remaining freedom, once
latencies are abstracted away, is exactly (a) the interleaving of
spontaneous wake-ups with everything else and (b) which channel's
head-of-line message is delivered next (FIFO fixes the order *within* a
channel; Section 2 guarantees nothing *across* channels).

:func:`explore_protocol` runs a depth-first search over those choices with
state-fingerprint memoisation and checks, in every reachable state:

* **safety** — never two leader declarations (checked on every transition);
* **liveness** — every quiescent state (no enabled action) has exactly one
  leader;
* **validity** — the leader woke spontaneously.

This is how the library earns "for all executions" rather than "for the
executions we happened to sample": e.g. every interleaving of Protocol A
at N=3 (hundreds of states) or Protocol B at N=4 (tens of thousands) is
checked in well under a second.

Implementation notes.  The timed simulator cannot branch (its event queue
holds closures), so exploration runs on a separate lock-step world of
plain FIFO queues; node state machines are reused verbatim — the *same*
``Node`` classes the simulator runs, driven through the same
``NodeContext`` interface, so there is no model/implementation gap.
Branching uses ``deepcopy``; fingerprints use ``pickle`` over a canonical
projection of node state and queues.
"""

from __future__ import annotations

import pickle
from collections import deque
from dataclasses import dataclass, field
from typing import Any

from repro.core.errors import ProtocolViolation
from repro.core.messages import Message, message_bits
from repro.core.node import Node, NodeContext
from repro.core.protocol import ElectionProtocol
from repro.topology.complete import CompleteTopology


class _StepContext(NodeContext):
    """Node capabilities inside the lock-step exploration world."""

    def __init__(self, world: "_World", position: int) -> None:
        topology = world.topology
        self._world = world
        self._position = position
        self.node_id = topology.id_at(position)
        self.n = topology.n
        self.num_ports = topology.num_ports
        self.has_sense_of_direction = topology.sense_of_direction

    def send(self, port: int, message: Message) -> None:  # noqa: D102
        self._world.enqueue(self._position, port, message)

    def port_label(self, port: int):  # noqa: D102
        return self._world.topology.label(self._position, port)

    def port_with_label(self, distance: int) -> int:  # noqa: D102
        return self._world.topology.port_with_label(self._position, distance)

    def now(self) -> float:  # noqa: D102
        # Logical time: number of transitions taken so far.
        return float(self._world.steps)

    def declare_leader(self) -> None:  # noqa: D102
        self._world.on_leader(self._position)

    def trace(self, kind: str, **detail: Any) -> None:  # noqa: D102
        pass  # exploration keeps no traces; fingerprints carry the state


class _World:
    """One node-states + channel-queues configuration."""

    def __init__(self, protocol: ElectionProtocol, topology: CompleteTopology,
                 base_positions: tuple[int, ...]) -> None:
        protocol.validate(topology)
        self.topology = topology
        self.nodes: list[Node] = [
            protocol.create_node(_StepContext(self, position))
            for position in range(topology.n)
        ]
        self.queues: dict[tuple[int, int], deque[Message]] = {}
        self.pending_wakes: set[int] = set(base_positions)
        self.leaders: list[int] = []
        self.steps = 0
        self.messages_sent = 0

    # -- transitions -----------------------------------------------------------

    def enqueue(self, position: int, port: int, message: Message) -> None:
        message_bits(message, self.topology.n)  # O(log N) audit, as in sim
        far = self.topology.neighbor(position, port)
        self.queues.setdefault((position, far), deque()).append(message)
        self.messages_sent += 1

    def on_leader(self, position: int) -> None:
        self.leaders.append(position)
        if len(set(self.leaders)) > 1:
            ids = sorted(self.topology.id_at(p) for p in set(self.leaders))
            raise ProtocolViolation(f"two leaders declared: {ids}")

    def enabled_actions(self) -> list[tuple[str, Any]]:
        """Every choice the adversary has in this configuration."""
        actions: list[tuple[str, Any]] = [
            ("wake", position) for position in sorted(self.pending_wakes)
        ]
        actions.extend(
            ("deliver", link)
            for link in sorted(self.queues)
            if self.queues[link]
        )
        return actions

    def apply(self, action: tuple[str, Any]) -> None:
        kind, arg = action
        self.steps += 1
        if kind == "wake":
            self.pending_wakes.discard(arg)
            node = self.nodes[arg]
            if not node.awake:
                node.wake(spontaneous=True)
            return
        src, dst = arg
        message = self.queues[arg].popleft()
        if not self.queues[arg]:
            del self.queues[arg]
        port = self.topology.port_to(dst, src)
        self.nodes[dst].receive(port, message)

    # -- identity ---------------------------------------------------------------

    def fingerprint(self) -> bytes:
        """A canonical byte identity of this configuration.

        Node state is projected to ``__dict__`` minus the context handle
        (every other field is protocol data: ints, enums, strengths,
        pending-challenge records — all picklable and value-compared).
        """
        node_states = tuple(
            tuple(
                sorted(
                    (key, value)
                    for key, value in node.__dict__.items()
                    if key != "ctx"
                )
            )
            for node in self.nodes
        )
        queue_state = tuple(
            (link, tuple(queue)) for link, queue in sorted(self.queues.items())
        )
        wakes = tuple(sorted(self.pending_wakes))
        return pickle.dumps((node_states, queue_state, wakes), protocol=4)

    def clone(self) -> "_World":
        # A pickle round-trip is a faithful deep copy here (everything in a
        # world is protocol data plus the ctx back-references, which pickle
        # preserves as an object graph) and measures ~3x faster than
        # copy.deepcopy, which dominates exploration cost.
        return pickle.loads(pickle.dumps(self, protocol=4))


@dataclass
class ExplorationReport:
    """What the exhaustive search saw."""

    states_explored: int
    terminal_states: int
    leaders_seen: set[int] = field(default_factory=set)
    #: True when the search finished within budget, i.e. the verdict covers
    #: *every* reachable interleaving.
    complete: bool = True
    max_messages_sent: int = 0

    def __str__(self) -> str:
        coverage = "complete" if self.complete else "TRUNCATED"
        return (
            f"{self.states_explored} states, {self.terminal_states} terminal, "
            f"leaders {sorted(self.leaders_seen)} ({coverage})"
        )


def explore_protocol(
    protocol: ElectionProtocol,
    topology: CompleteTopology,
    *,
    base_positions: tuple[int, ...] | None = None,
    max_states: int = 200_000,
) -> ExplorationReport:
    """Exhaustively check every interleaving of one election instance.

    Raises :class:`ProtocolViolation` the moment any interleaving declares
    a second leader, reaches quiescence without a leader, or elects a
    non-base node.  Returns the coverage report otherwise.  ``max_states``
    bounds the search; if it is hit, ``report.complete`` is False and the
    verdict only covers the states visited.
    """
    if base_positions is None:
        base_positions = tuple(range(topology.n))
    root = _World(protocol, topology, tuple(base_positions))
    visited: set[bytes] = {root.fingerprint()}
    stack: list[_World] = [root]
    report = ExplorationReport(states_explored=1, terminal_states=0)

    while stack:
        world = stack.pop()
        actions = world.enabled_actions()
        if not actions:
            report.terminal_states += 1
            report.max_messages_sent = max(
                report.max_messages_sent, world.messages_sent
            )
            leaders = {p for p in set(world.leaders)}
            if not leaders:
                raise ProtocolViolation(
                    f"{protocol.describe()}: an interleaving reached "
                    "quiescence with no leader"
                )
            (leader,) = leaders  # safety already enforced on declaration
            if not world.nodes[leader].is_base:
                raise ProtocolViolation(
                    f"{protocol.describe()}: an interleaving elected the "
                    f"non-base node {topology.id_at(leader)}"
                )
            report.leaders_seen.add(topology.id_at(leader))
            continue
        for action in actions:
            child = world.clone() if len(actions) > 1 else world
            child.apply(action)
            key = child.fingerprint()
            if key in visited:
                continue
            visited.add(key)
            report.states_explored += 1
            if report.states_explored > max_states:
                report.complete = False
                return report
            stack.append(child)
    return report
