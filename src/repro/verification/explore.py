"""Exhaustive interleaving exploration — an explicit-state checker with POR.

The paper's safety claims are "for every execution"; random delay sampling
only ever visits a sliver of that space.  For small N this module explores
it **completely**: the asynchronous adversary's remaining freedom, once
latencies are abstracted away, is exactly (a) the interleaving of
spontaneous wake-ups with everything else and (b) which channel's
head-of-line message is delivered next (see :mod:`repro.verification.world`).

:func:`explore_protocol` runs a depth-first search over those choices with
state-fingerprint memoisation and checks, in every reachable state:

* **safety** — never two leader declarations (checked on every transition);
* **liveness** — every quiescent state (no enabled action) has exactly one
  leader;
* **validity** — the leader woke spontaneously.

Reductions.  Three commutativity arguments prune the search:

1. **Eager no-op wake-ups** (``por=True``).  A pending spontaneous wake-up
   of a node that is *already awake* (woken passively by a message) is a
   pure bookkeeping transition: ``Node.wake`` is idempotent, so the action
   changes no node state, sends nothing, and enables/disables nothing — it
   only clears the pending flag.  Such an action is independent of *every*
   other action (including ones at the same node), i.e. it forms a
   persistent singleton, so it is fired immediately and merged into its
   predecessor instead of doubling the state space once per stale flag.

2. **Inert-delivery compression** (``compress=True``, the default under
   POR).  The same idea extended to message deliveries: when running
   ``receive`` on a channel head would change *nothing* — receiver state
   identical, nothing sent, no leader declared — the delivery is a pure
   queue pop, and it is fired eagerly instead of branching.  Inertness is
   read off the world's memoised local-transition table
   (:meth:`~repro.verification.world.LockStepWorld.peek_transition`):
   ``receive`` is a pure function of ``(receiver state, arrival port,
   message)``, so the question is answered exactly, at most once per
   distinct triple across the whole campaign, and a cache hit is a dict
   lookup with no node copy at all.  Unlike stale wake-ups this eager firing
   assumes *stale-monotonicity*: a delivery that is a no-op stays a no-op
   as its receiver makes progress.  That holds for every capture-style
   protocol here — a message is inert precisely when its token, strength
   or candidate is already dead, and progress never resurrects the dead —
   and ``tests/verification/test_por_soundness.py`` cross-validates the
   quiescent-outcome sets against ``compress=False`` exhaustively for
   every registered protocol.  Disable with ``compress=False`` for a
   protocol outside that family.

3. **Sleep sets** (``por=True``).  Actions stepping *different* nodes
   commute (:func:`repro.verification.world.independent`), so most
   interleavings of a configuration's enabled actions are redundant
   permutations of one another.  The search prunes them with sleep sets
   (Godefroid): after exploring action ``a`` from a state, ``a`` is put to
   sleep for the remaining branches, and a child inherits the sleeping
   actions that are independent of the action just taken — those orderings
   are provably covered by the sibling subtree.  Combined with state
   memoisation this needs Godefroid's state-matching rule to stay sound:
   the sleep set a state was first reached with is stored, and a revisit
   with a *smaller* sleep set re-explores exactly the actions the first
   visit slept (``stored - current``), with the stored set shrunk to the
   intersection.  Sleep sets preserve every reachable quiescent state and
   at least one linearisation of every Mazurkiewicz trace, so all three
   checks above are preserved.

Visited states live in a :class:`~repro.verification.store.FingerprintTable`
— 8-byte hash-compacted fingerprints plus sleep-set bitmasks in flat
preallocated arrays — and ``workers=K`` fans top-level action-prefix
strata across the :func:`repro.harness.parallel.run_sweep` fork pool
(workers return their visited tables and the parent merges/deduplicates).
``symmetry="census"`` additionally counts distinct states modulo the
topology's relabelling group, and ``symmetry="prune"`` memoises on the
orbit representative outright — gated by the linter-derived capability
table (:func:`repro.verification.symmetry.ensure_prune_sound`), with
``symmetry="prune-unsound"`` as the ungated bug-hunting escape hatch
whose soundness boundary :mod:`repro.verification.symmetry` spells out.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Sequence

from repro.core.errors import ProtocolViolation
from repro.core.protocol import ElectionProtocol
from repro.harness.parallel import run_sweep
from repro.topology.complete import CompleteTopology
from repro.verification.store import FingerprintTable
from repro.verification.symmetry import (
    Permutation,
    canonical_state,
    ensure_prune_sound,
    symmetry_group,
)
from repro.verification.world import Action, LockStepWorld, independent

#: Expand the serial frontier until it holds this many strata per worker
#: before fanning out (more strata = better load balance, longer serial
#: prefix).
_STRATA_PER_WORKER = 4

#: Hard cap on the serial-prefix expansion, so stratification can never
#: dominate the search it is trying to parallelise.
_MAX_EXPANSION_STATES = 4_096


@dataclass
class ExplorationReport:
    """What the exhaustive search saw."""

    states_explored: int
    terminal_states: int
    leaders_seen: set[int] = field(default_factory=set)
    #: True when the search finished within budget, i.e. the verdict covers
    #: *every* reachable interleaving.
    complete: bool = True
    max_messages_sent: int = 0
    #: Transitions applied (> states when diamonds or revisits occur).
    transitions: int = 0
    #: Whether partial-order reduction was enabled for this search.
    por: bool = True
    #: Quiescent outcomes: one ``(leader_id, messages_sent)`` pair per
    #: terminal state, deduplicated.  POR provably preserves this set;
    #: the cross-validation tests assert it equals the unpruned DFS's.
    quiescent_outcomes: set[tuple[int, int]] = field(default_factory=set)
    #: Inert transitions merged into their predecessors by compression
    #: (stale wake-ups + inert deliveries); not counted in ``transitions``.
    compressed_steps: int = 0
    #: Distinct states modulo the topology's relabelling group, when a
    #: symmetry mode ran (None otherwise).  See ``verification/symmetry.py``
    #: for what this does and does not imply.
    canonical_states: int | None = None
    #: Worker processes the search fanned out to (1 = serial).
    workers: int = 1

    def __str__(self) -> str:
        coverage = "complete" if self.complete else "TRUNCATED"
        mode = "POR" if self.por else "full DFS"
        return (
            f"{self.states_explored} states, {self.transitions} transitions, "
            f"{self.terminal_states} terminal, "
            f"leaders {sorted(self.leaders_seen)} ({coverage}, {mode})"
        )


@dataclass
class _Frame:
    """One DFS stack entry: a world and its not-yet-taken branches."""

    world: LockStepWorld
    candidates: list[Action]
    index: int
    sleep: set[Action]


def _sleep_mask(actions: list[Action], sleep) -> int:
    """Pack ``sleep ∩ actions`` as a bitmask over the canonical order."""
    mask = 0
    for i, action in enumerate(actions):
        if action in sleep:
            mask |= 1 << i
    return mask


class _SearchCore:
    """The DFS engine, shared verbatim by the serial explorer, the
    frontier expansion, and every parallel worker (so a one-stratum run is
    byte-identical to the serial search)."""

    def __init__(
        self,
        protocol: ElectionProtocol,
        report: ExplorationReport,
        visited: FingerprintTable,
        *,
        por: bool,
        compress: bool,
        max_states: int,
        group: Sequence[Permutation] | None = None,
        prune_symmetric: bool = False,
        canonical_seen: set[int] | None = None,
    ) -> None:
        self.protocol = protocol
        self.report = report
        self.visited = visited
        self.por = por
        self.compress = compress and por
        self.max_states = max_states
        self.group = group
        self.prune_symmetric = prune_symmetric
        self.canonical_seen = (
            canonical_seen if canonical_seen is not None else set()
        )
        #: Fingerprints of quiescent states (parallel merge dedups on it).
        self.terminal_fps: set[int] = set()

    # -- compression ---------------------------------------------------------

    def _compress_state(
        self, world: LockStepWorld, action: Action | None
    ) -> None:
        """Eagerly fire every invisible transition enabled at ``world``.

        Stale wake-ups first (always sound: ``Node.wake`` is idempotent),
        then inert deliveries (sound under the stale-monotonicity
        assumption in the module docstring).  ``action`` is the transition
        that produced ``world``; because every explored state is fully
        compressed on arrival, a child state can only have inert heads on
        channels *touching the actor* of that transition (its node state
        changed, its channel heads moved, its sends created new heads) —
        so only those links are scanned, not the whole queue map.
        """
        report = self.report
        stale = [p for p in world.pending_wakes if world.nodes[p].awake]
        if stale:
            world.drop_wakes(stale)
            report.compressed_steps += len(stale)
        queues = world.queues
        if not self.compress or not queues:
            return
        if action is None:
            work = deque(sorted(queues))
        else:
            d = action[1] if action[0] == "wake" else action[1][1]
            work = deque(
                link for link in sorted(queues) if d in link
            )
        while work:
            link = work.popleft()
            if not queues.get(link):
                continue
            # The world's memoised local-transition table answers the
            # inertness question directly: a delivery is inert iff its
            # effect is (unchanged receiver hash, no sends, no leader
            # declarations).  A non-inert head (including one that would
            # declare a second leader) is left enabled and explored as a
            # real branch.
            new_fp, sends, declared = world.peek_transition(link)
            if not sends and not declared and new_fp == world.node_hash(link[1]):
                world.pop_head(link)
                report.compressed_steps += 1
                # an inert pop changes nothing but this channel's head
                work.append(link)

    # -- memoisation ---------------------------------------------------------

    def _key(self, world: LockStepWorld) -> int:
        if self.prune_symmetric:
            return hash(canonical_state(world, self.group))
        return world.fingerprint()

    def arrive(
        self, world: LockStepWorld, sleep, action: Action | None = None
    ) -> _Frame | None:
        """Memoise ``world``; return a frame if its subtree needs work.

        ``action`` is the transition that produced ``world`` (None for the
        root), which bounds the compression scan to the links it touched.
        """
        if self.por:
            self._compress_state(world, action)
        key = self._key(world)
        stored = self.visited.get(key)
        actions = world.enabled_actions()
        if stored is not None:
            mask = _sleep_mask(actions, sleep)
            todo = stored & ~mask
            if not todo:
                return None
            self.visited.put(key, stored & mask)
            candidates = [
                action for i, action in enumerate(actions) if todo >> i & 1
            ]
            return _Frame(world, candidates, 0, set(sleep))
        report = self.report
        report.states_explored += 1
        if self.group is not None and not self.prune_symmetric:
            self.canonical_seen.add(hash(canonical_state(world, self.group)))
        if not actions:
            self.visited.put(key, 0)
            self.terminal_fps.add(key)
            _check_terminal(world, self.protocol, report)
            return None
        self.visited.put(key, _sleep_mask(actions, sleep))
        candidates = [action for action in actions if action not in sleep]
        return _Frame(world, candidates, 0, set(sleep))

    # -- the DFS loop --------------------------------------------------------

    def run(self, frame: _Frame | None) -> None:
        """Drive the DFS from one arrived frame to exhaustion or budget."""
        report = self.report
        stack: list[_Frame] = [frame] if frame is not None else []
        while stack:
            frame = stack[-1]
            if frame.index >= len(frame.candidates):
                stack.pop()
                continue
            action = frame.candidates[frame.index]
            frame.index += 1
            last = frame.index >= len(frame.candidates)
            if last:
                stack.pop()
                child = frame.world  # safe: this frame takes no more branches
            else:
                child = frame.world.branch()
            if self.por:
                child_sleep = frozenset(
                    slept
                    for slept in frame.sleep
                    if independent(action, slept)
                )
                frame.sleep.add(action)
            else:
                child_sleep = frozenset()
            child.apply(action)
            report.transitions += 1
            child_frame = self.arrive(child, child_sleep, action)
            if len(self.visited) > self.max_states:
                report.complete = False
                return
            if child_frame is not None:
                stack.append(child_frame)


def explore_protocol(
    protocol: ElectionProtocol,
    topology: CompleteTopology,
    *,
    base_positions: tuple[int, ...] | None = None,
    max_states: int = 200_000,
    por: bool = True,
    compress: bool | None = None,
    symmetry: str | bool | None = None,
    workers: int | None = None,
) -> ExplorationReport:
    """Exhaustively check every interleaving of one election instance.

    Raises :class:`ProtocolViolation` the moment any interleaving declares
    a second leader, reaches quiescence without a leader, or elects a
    non-base node.  Returns the coverage report otherwise.  ``max_states``
    bounds the search; if it is hit, ``report.complete`` is False and the
    verdict only covers the states visited.

    ``por=False`` disables partial-order reduction (same verdict, many
    more states); ``compress=False`` keeps sleep sets but disables
    inert-delivery compression (the PR 1 behaviour — used by the
    cross-validation tests as the reference search).  ``symmetry`` is
    ``None``/``False`` (off), ``"census"`` (count distinct states modulo
    the topology's relabelling group, exploration unchanged),
    ``"prune"`` (memoise on orbit representatives — gated: refused with
    :class:`~repro.core.errors.ConfigurationError` unless the
    linter-derived capability table proves the protocol equivariant
    under the topology's group, see
    :func:`repro.verification.symmetry.ensure_prune_sound`) or
    ``"prune-unsound"`` (the ungated orbit memoisation — a bug-hunting
    mode; see :mod:`repro.verification.symmetry` for why it does not
    promise outcome completeness for id-comparing protocols).
    ``workers``
    fans top-level strata across a fork pool; ``None`` or ``<= 1`` runs
    the serial search, byte-identical to previous releases, and pool
    degradation (no ``fork``, restricted sandbox, ``REPRO_PARALLEL=0``)
    falls back to running the strata serially with the same merged
    result.
    """
    if base_positions is None:
        base_positions = tuple(range(topology.n))
    if symmetry is True:
        symmetry = "prune"
    if symmetry not in (None, False, "census", "prune", "prune-unsound"):
        raise ValueError(f"unknown symmetry mode: {symmetry!r}")
    if symmetry == "prune":
        ensure_prune_sound(protocol, topology)
    group = None
    if symmetry:
        if topology.n > 6 and not topology.sense_of_direction:
            raise ValueError(
                "symmetry reduction over the full symmetric group is "
                f"infeasible at n={topology.n} (n! permutations per state)"
            )
        group = symmetry_group(topology)

    root = LockStepWorld(protocol, topology, tuple(base_positions))
    report = ExplorationReport(states_explored=0, terminal_states=0, por=por)
    core = _SearchCore(
        protocol,
        report,
        FingerprintTable(),
        por=por,
        compress=por if compress is None else compress,
        max_states=max_states,
        group=group,
        prune_symmetric=symmetry in ("prune", "prune-unsound"),
    )

    workers = int(workers) if workers else 1
    if workers <= 1:
        core.run(core.arrive(root, frozenset()))
        report.terminal_states = len(core.terminal_fps)
        _finish_report(report, core)
        return report
    return _explore_parallel(core, root, workers)


def _finish_report(report: ExplorationReport, core: _SearchCore) -> None:
    if core.group is not None:
        report.canonical_states = (
            report.states_explored
            if core.prune_symmetric
            else len(core.canonical_seen)
        )


def _explore_parallel(
    core: _SearchCore, root: LockStepWorld, workers: int
) -> ExplorationReport:
    """Stratified parallel search: expand a serial frontier of top-level
    action prefixes, fan the strata across the fork pool, merge.

    Each stratum is a ``(world, sleep set)`` pair produced by exactly the
    serial arrival logic, so the union of the workers' searches covers
    precisely what the serial search covers (sleep-set soundness is a
    property of the covered trace set, not of visit order).  Workers
    inherit the parent's visited table through ``fork`` copy-on-write and
    return their private tables; the parent merges them, deduplicating
    states several workers reached independently.
    """
    report = core.report
    report.workers = workers
    frontier: deque[_Frame] = deque()
    first = core.arrive(root, frozenset())
    if first is not None:
        frontier.append(first)
    target = _STRATA_PER_WORKER * workers
    while (
        frontier
        and len(frontier) < target
        and len(core.visited) <= min(core.max_states, _MAX_EXPANSION_STATES)
    ):
        frame = frontier.popleft()
        world, sleep = frame.world, frame.sleep
        for i, action in enumerate(frame.candidates):
            last = i == len(frame.candidates) - 1
            child = world if last else world.branch()
            if core.por:
                child_sleep = frozenset(
                    slept for slept in sleep if independent(action, slept)
                )
            else:
                child_sleep = frozenset()
            child.apply(action)
            report.transitions += 1
            child_frame = core.arrive(child, child_sleep, action)
            if core.por:
                sleep.add(action)
            if child_frame is not None:
                frontier.append(child_frame)
    if len(core.visited) > core.max_states:
        report.complete = False
        report.terminal_states = len(core.terminal_fps)
        _finish_report(report, core)
        return report

    strata = list(frontier)

    def _make_task(frame: _Frame):
        def task():
            worker_report = ExplorationReport(
                states_explored=0, terminal_states=0, por=core.por
            )
            worker = _SearchCore(
                core.protocol,
                worker_report,
                core.visited,  # private copy via fork (or shared when the
                por=core.por,  # pool degraded to serial — still correct,
                compress=core.compress,  # the memo just accumulates)
                max_states=core.max_states,
                group=core.group,
                prune_symmetric=core.prune_symmetric,
                canonical_seen=set(core.canonical_seen),
            )
            violation = None
            try:
                worker.run(frame)
            except ProtocolViolation as exc:
                violation = exc
            return (
                worker.visited.packed(),
                worker.terminal_fps,
                worker_report.leaders_seen,
                worker_report.quiescent_outcomes,
                worker.canonical_seen,
                worker_report.transitions,
                worker_report.max_messages_sent,
                worker_report.compressed_steps,
                worker_report.complete,
                violation,
            )

        return task

    results = run_sweep(
        [_make_task(frame) for frame in strata],
        parallel=True,
        processes=workers,
    )

    terminal_fps = set(core.terminal_fps)
    for (
        packed,
        worker_terminals,
        leaders,
        outcomes,
        canonical,
        transitions,
        max_msgs,
        compressed,
        complete,
        violation,
    ) in results:
        if violation is not None:
            raise violation
        core.visited.merge(FingerprintTable.unpacked(packed))
        terminal_fps |= worker_terminals
        report.leaders_seen |= leaders
        report.quiescent_outcomes |= outcomes
        core.canonical_seen |= canonical
        report.transitions += transitions
        report.max_messages_sent = max(report.max_messages_sent, max_msgs)
        report.compressed_steps += compressed
        report.complete = report.complete and complete
    report.states_explored = len(core.visited)
    report.terminal_states = len(terminal_fps)
    _finish_report(report, core)
    return report


def count_unpruned_interleavings(
    protocol: ElectionProtocol,
    topology: CompleteTopology,
    *,
    base_positions: tuple[int, ...] | None = None,
    max_states: int = 200_000,
) -> ExplorationReport:
    """The literal "every interleaving" enumeration, with nothing pruned.

    A depth-first search over the *execution tree* — no memoisation, no
    partial-order reduction — counting every configuration visited
    (duplicates included, exactly as a naive checker would).  This is the
    baseline :func:`explore_protocol`'s reductions are measured against in
    ``benchmarks/test_verify_speed.py``; it truncates honestly at
    ``max_states`` because the tree is astronomically larger than the
    reduced graph for anything beyond toy instances.
    """
    if base_positions is None:
        base_positions = tuple(range(topology.n))
    root = LockStepWorld(protocol, topology, tuple(base_positions))
    report = ExplorationReport(states_explored=1, terminal_states=0, por=False)
    stack: list[_Frame] = []
    actions = root.enabled_actions()
    if actions:
        stack.append(_Frame(root, actions, 0, set()))
    else:
        _check_terminal(root, protocol, report)
    while stack:
        frame = stack[-1]
        if frame.index >= len(frame.candidates):
            stack.pop()
            continue
        action = frame.candidates[frame.index]
        frame.index += 1
        last = frame.index >= len(frame.candidates)
        if last:
            stack.pop()
            child = frame.world
        else:
            child = frame.world.branch()
        child.apply(action)
        report.transitions += 1
        report.states_explored += 1
        if report.states_explored > max_states:
            report.complete = False
            return report
        actions = child.enabled_actions()
        if not actions:
            _check_terminal(child, protocol, report)
            continue
        stack.append(_Frame(child, actions, 0, set()))
    return report


def _check_terminal(
    world: LockStepWorld,
    protocol: ElectionProtocol,
    report: ExplorationReport,
) -> None:
    """Liveness and validity checks at one quiescent configuration."""
    report.terminal_states += 1
    report.max_messages_sent = max(
        report.max_messages_sent, world.messages_sent
    )
    leaders = set(world.leaders)
    if not leaders:
        raise ProtocolViolation(
            f"{protocol.describe()}: an interleaving reached quiescence "
            "with no leader"
        )
    (leader,) = leaders  # safety already enforced on declaration
    if not world.nodes[leader].is_base:
        raise ProtocolViolation(
            f"{protocol.describe()}: an interleaving elected the non-base "
            f"node {world.topology.id_at(leader)}"
        )
    leader_id = world.topology.id_at(leader)
    report.leaders_seen.add(leader_id)
    report.quiescent_outcomes.add((leader_id, world.messages_sent))
