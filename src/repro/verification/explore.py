"""Exhaustive interleaving exploration — an explicit-state checker with POR.

The paper's safety claims are "for every execution"; random delay sampling
only ever visits a sliver of that space.  For small N this module explores
it **completely**: the asynchronous adversary's remaining freedom, once
latencies are abstracted away, is exactly (a) the interleaving of
spontaneous wake-ups with everything else and (b) which channel's
head-of-line message is delivered next (see :mod:`repro.verification.world`).

:func:`explore_protocol` runs a depth-first search over those choices with
state-fingerprint memoisation and checks, in every reachable state:

* **safety** — never two leader declarations (checked on every transition);
* **liveness** — every quiescent state (no enabled action) has exactly one
  leader;
* **validity** — the leader woke spontaneously.

Partial-order reduction.  Two complementary commutativity arguments prune
the search (``por=True``, the default):

1. **Eager no-op wake-ups.**  A pending spontaneous wake-up of a node that
   is *already awake* (it was woken passively by a message) is a pure
   bookkeeping transition: ``Node.wake`` is idempotent, so the action
   changes no node state, sends nothing, and enables/disables nothing —
   it only clears the pending flag.  Such an action is independent of
   *every* other action (including ones at the same node), i.e. it forms
   a persistent singleton, so it is fired immediately and merged into its
   predecessor instead of doubling the state space once per stale flag.
   This is what collapses the exponential lattice of "which stale wake-up
   flags are still set" and delivers the bulk of the state reduction.

2. **Sleep sets.**  Actions stepping *different* nodes commute
   (:func:`repro.verification.world.independent`), so most interleavings
   of a configuration's enabled actions are redundant permutations of one
   another.  The search prunes them with sleep sets (Godefroid): after exploring
action ``a`` from a state, ``a`` is put to sleep for the remaining
branches, and a child inherits the sleeping actions that are independent
of the action just taken — those orderings are provably covered by the
sibling subtree.  Combined with state memoisation this needs Godefroid's
state-matching rule to stay sound: the sleep set a state was first reached
with is stored, and a revisit with a *smaller* sleep set re-explores
exactly the actions the first visit slept (``stored - current``), with the
stored set shrunk to the intersection.  Sleep sets preserve every
reachable quiescent (deadlock) state and at least one linearisation of
every Mazurkiewicz trace, so all three checks above are preserved; the
cross-validation test in ``tests/verification/test_por_soundness.py``
verifies the quiescent-outcome sets match the unpruned DFS exactly.

On Protocol B at N=4 the reduction visits >10x fewer states than the
unpruned DFS; together with copy-on-write branching and incremental
fingerprints (see :mod:`repro.verification.world`) it pushes complete
coverage to Protocol A at N=5 within seconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.errors import ProtocolViolation
from repro.core.protocol import ElectionProtocol
from repro.topology.complete import CompleteTopology
from repro.verification.world import Action, LockStepWorld, independent


@dataclass
class ExplorationReport:
    """What the exhaustive search saw."""

    states_explored: int
    terminal_states: int
    leaders_seen: set[int] = field(default_factory=set)
    #: True when the search finished within budget, i.e. the verdict covers
    #: *every* reachable interleaving.
    complete: bool = True
    max_messages_sent: int = 0
    #: Transitions applied (> states when diamonds or revisits occur).
    transitions: int = 0
    #: Whether partial-order reduction was enabled for this search.
    por: bool = True
    #: Quiescent outcomes: one ``(leader_id, messages_sent)`` pair per
    #: terminal state, deduplicated.  POR provably preserves this set;
    #: the cross-validation tests assert it equals the unpruned DFS's.
    quiescent_outcomes: set[tuple[int, int]] = field(default_factory=set)

    def __str__(self) -> str:
        coverage = "complete" if self.complete else "TRUNCATED"
        mode = "POR" if self.por else "full DFS"
        return (
            f"{self.states_explored} states, {self.transitions} transitions, "
            f"{self.terminal_states} terminal, "
            f"leaders {sorted(self.leaders_seen)} ({coverage}, {mode})"
        )


@dataclass
class _Frame:
    """One DFS stack entry: a world and its not-yet-taken branches."""

    world: LockStepWorld
    candidates: list[Action]
    index: int
    sleep: set[Action]


def explore_protocol(
    protocol: ElectionProtocol,
    topology: CompleteTopology,
    *,
    base_positions: tuple[int, ...] | None = None,
    max_states: int = 200_000,
    por: bool = True,
) -> ExplorationReport:
    """Exhaustively check every interleaving of one election instance.

    Raises :class:`ProtocolViolation` the moment any interleaving declares
    a second leader, reaches quiescence without a leader, or elects a
    non-base node.  Returns the coverage report otherwise.  ``max_states``
    bounds the search; if it is hit, ``report.complete`` is False and the
    verdict only covers the states visited.  ``por=False`` disables
    partial-order reduction (same verdict, many more states) — kept for
    cross-validation and benchmarks.
    """
    if base_positions is None:
        base_positions = tuple(range(topology.n))
    root = LockStepWorld(protocol, topology, tuple(base_positions))
    report = ExplorationReport(
        states_explored=0, terminal_states=0, por=por
    )
    # fingerprint -> the set of enabled actions never yet explored from
    # that state (Godefroid's stored sleep set).
    visited: dict[bytes, frozenset[Action]] = {}

    def arrive(world: LockStepWorld, sleep: frozenset[Action]) -> _Frame | None:
        """Memoise ``world``; return a frame if its subtree needs work."""
        if por:
            _fire_stale_wakes(world)
        key = world.fingerprint()
        stored = visited.get(key)
        if stored is not None:
            todo = stored - sleep
            if not todo:
                return None
            visited[key] = stored & sleep
            candidates = [a for a in world.enabled_actions() if a in todo]
            return _Frame(world, candidates, 0, set(sleep))
        visited[key] = frozenset(sleep)
        report.states_explored += 1
        actions = world.enabled_actions()
        if not actions:
            _check_terminal(world, protocol, report)
            return None
        candidates = [a for a in actions if a not in sleep]
        return _Frame(world, candidates, 0, set(sleep))

    frame = arrive(root, frozenset())
    stack: list[_Frame] = [frame] if frame is not None else []

    while stack:
        frame = stack[-1]
        if frame.index >= len(frame.candidates):
            stack.pop()
            continue
        action = frame.candidates[frame.index]
        frame.index += 1
        last = frame.index >= len(frame.candidates)
        if last:
            stack.pop()
            child = frame.world  # safe: this frame takes no more branches
        else:
            child = frame.world.branch()
        if por:
            child_sleep = frozenset(
                slept for slept in frame.sleep if independent(action, slept)
            )
            frame.sleep.add(action)
        else:
            child_sleep = frozenset()
        child.apply(action)
        report.transitions += 1
        child_frame = arrive(child, child_sleep)
        if report.states_explored > max_states:
            report.complete = False
            return report
        if child_frame is not None:
            stack.append(child_frame)
    return report


def count_unpruned_interleavings(
    protocol: ElectionProtocol,
    topology: CompleteTopology,
    *,
    base_positions: tuple[int, ...] | None = None,
    max_states: int = 200_000,
) -> ExplorationReport:
    """The literal "every interleaving" enumeration, with nothing pruned.

    A depth-first search over the *execution tree* — no memoisation, no
    partial-order reduction — counting every configuration visited
    (duplicates included, exactly as a naive checker would).  This is the
    baseline :func:`explore_protocol`'s reductions are measured against in
    ``benchmarks/test_verification_speed.py``; it truncates honestly at
    ``max_states`` because the tree is astronomically larger than the
    reduced graph for anything beyond toy instances.
    """
    if base_positions is None:
        base_positions = tuple(range(topology.n))
    root = LockStepWorld(protocol, topology, tuple(base_positions))
    report = ExplorationReport(states_explored=1, terminal_states=0, por=False)
    stack: list[_Frame] = []
    actions = root.enabled_actions()
    if actions:
        stack.append(_Frame(root, actions, 0, set()))
    else:
        _check_terminal(root, protocol, report)
    while stack:
        frame = stack[-1]
        if frame.index >= len(frame.candidates):
            stack.pop()
            continue
        action = frame.candidates[frame.index]
        frame.index += 1
        last = frame.index >= len(frame.candidates)
        if last:
            stack.pop()
            child = frame.world
        else:
            child = frame.world.branch()
        child.apply(action)
        report.transitions += 1
        report.states_explored += 1
        if report.states_explored > max_states:
            report.complete = False
            return report
        actions = child.enabled_actions()
        if not actions:
            _check_terminal(child, protocol, report)
            continue
        stack.append(_Frame(child, actions, 0, set()))
    return report


def _fire_stale_wakes(world: LockStepWorld) -> None:
    """Eagerly clear pending wake-ups of nodes that are already awake.

    ``Node.wake`` is idempotent, so these transitions are invisible:
    no node state changes, nothing is sent, nothing else is enabled or
    disabled.  Firing them immediately (a persistent singleton) merges
    every "stale flag still set" state into its canonical flag-cleared
    representative — sound, and a major source of reduction because by
    default every node has a pending spontaneous wake-up while most are
    woken passively first.
    """
    stale = [p for p in world.pending_wakes if world.nodes[p].awake]
    if stale:
        world.pending_wakes = world.pending_wakes - frozenset(stale)
        world.steps += len(stale)


def _check_terminal(
    world: LockStepWorld,
    protocol: ElectionProtocol,
    report: ExplorationReport,
) -> None:
    """Liveness and validity checks at one quiescent configuration."""
    report.terminal_states += 1
    report.max_messages_sent = max(
        report.max_messages_sent, world.messages_sent
    )
    leaders = set(world.leaders)
    if not leaders:
        raise ProtocolViolation(
            f"{protocol.describe()}: an interleaving reached quiescence "
            "with no leader"
        )
    (leader,) = leaders  # safety already enforced on declaration
    if not world.nodes[leader].is_base:
        raise ProtocolViolation(
            f"{protocol.describe()}: an interleaving elected the non-base "
            f"node {world.topology.id_at(leader)}"
        )
    leader_id = world.topology.id_at(leader)
    report.leaders_seen.add(leader_id)
    report.quiescent_outcomes.add((leader_id, world.messages_sent))
