"""Deterministic schedule traces: save, replay, shrink.

A :class:`ScheduleTrace` is a complete, self-contained record of one
lock-step execution: the topology (ids and port wiring, so no seed or
strategy needs to be reconstructed), the base-node set, and the sequence
of adversary choices — each choice an index into the canonical
``enabled_actions()`` list of :class:`~repro.verification.world.LockStepWorld`
at that step.  Because the world is deterministic given those choices, a
trace replays **byte-for-byte**: same transitions, same sends, same
violation at the same step.

:func:`replay_trace` re-executes a trace (strictly, validating every
index, or leniently for the shrinker).  :func:`shrink_trace` minimises a
violating trace by delta-debugging (ddmin) over the choice points: chunks
of choices are deleted, the candidate tape is replayed leniently (indices
wrap modulo the enabled-action count; for liveness/validity bugs an
exhausted tape is completed with first-enabled choices so quiescence is
reached), and a deletion is kept whenever the same class of violation
still reproduces.  The winner is canonicalised back into a strict trace by
recording the indices that actually applied, and ddmin is re-run on the
canonical tape until the executed length stops shrinking.

Traces serialise to a small JSON document (:func:`save_trace` /
:func:`load_trace`); the format is documented in ``docs/verification.md``.
"""

from __future__ import annotations

import dataclasses
import json
import math
from dataclasses import dataclass
from pathlib import Path

from repro.core.errors import ConfigurationError, ProtocolViolation
from repro.core.protocol import ElectionProtocol, protocol_class
from repro.topology.complete import CompleteTopology
from repro.verification.world import LockStepWorld

#: Identifies the on-disk trace format; bumped on incompatible change.
TRACE_FORMAT = "repro-schedule-trace-v1"


@dataclass(frozen=True)
class ScheduleTrace:
    """One fully-determined lock-step schedule, replayable byte-for-byte."""

    #: Registry name of the protocol (``protocol_class(name)()`` must
    #: reconstruct it; pass an explicit instance to replay otherwise).
    protocol: str
    n: int
    sense: bool
    ids: tuple[int, ...]
    #: ``port_neighbor[p][q]``: position reached from ``p`` via port ``q``.
    port_neighbor: tuple[tuple[int, ...], ...]
    base_positions: tuple[int, ...]
    #: Adversary choices: ``choices[k]`` indexes ``enabled_actions()`` at
    #: step ``k``.
    choices: tuple[int, ...]
    #: Schedule family that produced the trace (``manual`` for hand-built).
    family: str = "manual"
    seed: int = 0
    #: ``("drop", link)`` actions the adversary was allowed (0 = the
    #: paper's reliable-link model; old trace files default to it).
    fault_budget: int = 0

    def topology(self) -> CompleteTopology:
        """Reconstruct the exact topology the trace was recorded on."""
        return CompleteTopology(
            self.n,
            self.ids,
            self.port_neighbor,
            sense_of_direction=self.sense,
        )

    @staticmethod
    def capture(
        protocol_name: str,
        topology: CompleteTopology,
        base_positions: tuple[int, ...],
        choices: tuple[int, ...],
        *,
        family: str = "manual",
        seed: int = 0,
        fault_budget: int = 0,
    ) -> "ScheduleTrace":
        """Build a trace snapshotting ``topology``'s full wiring."""
        port_neighbor = tuple(
            tuple(
                topology.neighbor(position, port)
                for port in range(topology.num_ports)
            )
            for position in range(topology.n)
        )
        return ScheduleTrace(
            protocol=protocol_name,
            n=topology.n,
            sense=topology.sense_of_direction,
            ids=tuple(topology.ids),
            port_neighbor=port_neighbor,
            base_positions=tuple(base_positions),
            choices=tuple(choices),
            family=family,
            seed=seed,
            fault_budget=fault_budget,
        )


@dataclass
class ReplayOutcome:
    """What replaying one schedule observed."""

    #: ``safety`` / ``liveness`` / ``validity``, or None for a clean run.
    violation_kind: str | None = None
    violation: str | None = None
    leader_id: int | None = None
    steps: int = 0
    messages_sent: int = 0
    #: True when the run reached quiescence (no enabled action left).
    quiescent: bool = False
    #: The indices actually applied — a strict tape reproducing this exact
    #: run (differs from the input under lenient replay).
    choices_used: tuple[int, ...] = ()
    #: Human-readable per-step narration (``record_log=True`` only);
    #: rendered by :func:`repro.analysis.replay.render_schedule`.
    log: tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        """True when the replay observed no violation."""
        return self.violation_kind is None


def _describe_action(world: LockStepWorld, action, step: int) -> str:
    topology = world.topology
    kind, arg = action
    if kind == "wake":
        return f"step {step:4d}  node {topology.id_at(arg)} wakes spontaneously"
    src, dst = arg
    message = world.peek_message(arg)
    verb = "-/->" if kind == "drop" else "->"
    return (
        f"step {step:4d}  {topology.id_at(src)} {verb} {topology.id_at(dst)}: "
        f"{message.type_name}"
    )


def replay_trace(
    trace: ScheduleTrace,
    protocol: ElectionProtocol | None = None,
    *,
    strict: bool = True,
    record_log: bool = False,
    max_steps: int = 100_000,
    complete_tape: bool = True,
) -> ReplayOutcome:
    """Re-execute a schedule trace deterministically.

    ``strict=True`` (the default) demands every recorded choice be a valid
    index for the state it is applied in — the trace replays byte-for-byte
    or raises :class:`ConfigurationError`.  ``strict=False`` is the
    shrinker's lenient interpreter: indices wrap modulo the number of
    enabled actions and, with ``complete_tape=True``, an exhausted tape is
    completed by always taking the first enabled action until quiescence
    (or ``max_steps``); ``complete_tape=False`` stops where the tape ends,
    which is how safety violations are shrunk without re-padding the run.
    ``protocol`` defaults to reconstructing ``trace.protocol`` from the
    registry.
    """
    if protocol is None:
        protocol = protocol_class(trace.protocol)()
    world = LockStepWorld(
        protocol, trace.topology(), trace.base_positions,
        fault_budget=trace.fault_budget,
    )
    outcome = ReplayOutcome()
    log: list[str] = []
    used: list[int] = []
    tape = iter(trace.choices)
    while outcome.steps < max_steps:
        actions = world.enabled_actions()
        if not actions:
            outcome.quiescent = True
            break
        choice = next(tape, None)
        if choice is None:
            if strict:
                break  # tape over: stop exactly where the recording did
            choice = 0
        elif not 0 <= choice < len(actions):
            if strict:
                raise ConfigurationError(
                    f"trace step {outcome.steps}: choice {choice} out of "
                    f"range for {len(actions)} enabled actions"
                )
            choice %= len(actions)
        action = actions[choice]
        if record_log:
            log.append(_describe_action(world, action, outcome.steps))
        used.append(choice)
        outcome.steps += 1
        try:
            world.apply(action)
        except ProtocolViolation as violation:
            outcome.violation_kind = "safety"
            outcome.violation = str(violation)
            if record_log:
                log.append(f"step {outcome.steps - 1:4d}  *** {violation} ***")
            break
    outcome.messages_sent = world.messages_sent
    outcome.choices_used = tuple(used)
    if outcome.quiescent and outcome.violation_kind is None:
        leaders = set(world.leaders)
        if not leaders:
            # A run whose messages were destroyed may legitimately end
            # leaderless — liveness is only owed under reliable links.
            if world.dropped == 0:
                outcome.violation_kind = "liveness"
                outcome.violation = "quiescent with no leader"
        else:
            (leader,) = leaders  # safety enforced at declaration time
            leader_id = world.topology.id_at(leader)
            if not world.nodes[leader].is_base:
                outcome.violation_kind = "validity"
                outcome.violation = (
                    f"non-base node {leader_id} was elected leader"
                )
            else:
                outcome.leader_id = leader_id
    outcome.log = tuple(log)
    return outcome


@dataclass
class _ActionRun:
    """Outcome of replaying a concrete *action* sequence (shrinker internal)."""

    violation_kind: str | None
    #: The actions that actually applied (enabled when reached).
    applied: list
    #: Index of each applied action in ``enabled_actions()`` at its step —
    #: a strict choice tape reproducing this exact run.
    choices: list[int]


def _run_actions(
    trace: ScheduleTrace,
    protocol: ElectionProtocol,
    actions,
    *,
    complete: bool,
    max_steps: int,
) -> _ActionRun:
    """Apply ``actions`` in order, silently skipping any that is not
    enabled when its turn comes (the skip rule is what makes delta-debugging
    over schedules stable: deleting an irrelevant step leaves every later
    step meaningful instead of shifting its interpretation).  With
    ``complete=True`` the run is then driven to quiescence with
    first-enabled choices, so liveness/validity can be judged.
    """
    world = LockStepWorld(
        protocol, trace.topology(), trace.base_positions,
        fault_budget=trace.fault_budget,
    )
    run = _ActionRun(violation_kind=None, applied=[], choices=[])

    def apply_one(action, enabled) -> bool:
        run.choices.append(enabled.index(action))
        run.applied.append(action)
        try:
            world.apply(action)
        except ProtocolViolation:
            run.violation_kind = "safety"
            return False
        return True

    for action in actions:
        if len(run.applied) >= max_steps:
            return run
        enabled = world.enabled_actions()
        if not enabled:
            break
        if action not in enabled:
            continue
        if not apply_one(action, enabled):
            return run
    while complete and len(run.applied) < max_steps:
        enabled = world.enabled_actions()
        if not enabled:
            break
        if not apply_one(enabled[0], enabled):
            return run
    if not world.enabled_actions():
        leaders = set(world.leaders)
        if not leaders:
            if world.dropped == 0:  # lossy runs owe no liveness
                run.violation_kind = "liveness"
        else:
            (leader,) = leaders
            if not world.nodes[leader].is_base:
                run.violation_kind = "validity"
    return run


def shrink_trace(
    trace: ScheduleTrace,
    protocol: ElectionProtocol | None = None,
    *,
    max_steps: int = 100_000,
) -> ScheduleTrace:
    """Minimise a violating trace by delta-debugging its schedule.

    The trace's choice tape is first resolved into the concrete action
    sequence it executes; ddmin then deletes actions, replaying each
    candidate with skip-if-disabled semantics (see :func:`_run_actions`)
    and keeping a deletion whenever the *same class* of violation
    (safety / liveness / validity) still reproduces.  The winner is
    canonicalised back into a strict choice tape and the result is never
    longer than the input's executed schedule.  Raises
    :class:`ConfigurationError` when the input trace does not witness a
    violation.
    """
    if protocol is None:
        protocol = protocol_class(trace.protocol)()
    baseline = replay_trace(
        trace, protocol, strict=False, max_steps=max_steps
    )
    if baseline.violation_kind is None:
        raise ConfigurationError(
            "trace replays cleanly; there is no violation to shrink"
        )
    kind = baseline.violation_kind
    # A safety violation raises *during* the schedule, so candidates are
    # not padded out to quiescence — padding would regrow every shrunk
    # run.  Liveness and validity are judged at quiescence, which a
    # shortened schedule must still be driven to.
    complete = kind != "safety"

    # Resolve the baseline tape into the action sequence it executes.
    seed_run = _run_actions(
        trace,
        protocol,
        _resolve_actions(trace, protocol, max_steps=max_steps),
        complete=complete,
        max_steps=max_steps,
    )
    assert seed_run.violation_kind == kind

    def attempt(actions) -> _ActionRun | None:
        run = _run_actions(
            trace, protocol, actions, complete=complete, max_steps=max_steps
        )
        return run if run.violation_kind == kind else None

    # ddmin, re-seeded with the applied (possibly shorter) sequence until
    # the executed length stops shrinking.
    current = seed_run.applied
    while True:
        best = _ddmin(list(current), lambda a: attempt(a) is not None)
        run = attempt(best)
        assert run is not None  # ddmin only returns reproducing sequences
        if len(run.applied) >= len(current):
            break
        current = run.applied
    return dataclasses.replace(trace, choices=tuple(run.choices))


def _resolve_actions(
    trace: ScheduleTrace,
    protocol: ElectionProtocol,
    *,
    max_steps: int,
) -> list:
    """The concrete actions a trace's choice tape executes (leniently)."""
    world = LockStepWorld(
        protocol, trace.topology(), trace.base_positions,
        fault_budget=trace.fault_budget,
    )
    actions = []
    for choice in trace.choices:
        if len(actions) >= max_steps:
            break
        enabled = world.enabled_actions()
        if not enabled:
            break
        action = enabled[choice % len(enabled)]
        actions.append(action)
        try:
            world.apply(action)
        except ProtocolViolation:
            break
    return actions


def _ddmin(items: list[int], reproduces) -> list[int]:
    """Zeller-Hildebrandt ddmin over a choice tape."""
    if reproduces([]):
        return []
    granularity = 2
    while len(items) >= 2:
        chunk = math.ceil(len(items) / granularity)
        for start in range(0, len(items), chunk):
            candidate = items[:start] + items[start + chunk:]
            if reproduces(candidate):
                items = candidate
                granularity = max(granularity - 1, 2)
                break
        else:
            if granularity >= len(items):
                break
            granularity = min(len(items), granularity * 2)
    return items


# -- persistence --------------------------------------------------------------


def save_trace(trace: ScheduleTrace, path: str | Path) -> Path:
    """Write a trace as a small JSON document; returns the path."""
    path = Path(path)
    payload = {"format": TRACE_FORMAT, **dataclasses.asdict(trace)}
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path


def load_trace(path: str | Path) -> ScheduleTrace:
    """Read a trace written by :func:`save_trace`."""
    payload = json.loads(Path(path).read_text())
    if payload.pop("format", None) != TRACE_FORMAT:
        raise ConfigurationError(
            f"{path} is not a {TRACE_FORMAT} trace file"
        )
    field_names = {f.name for f in dataclasses.fields(ScheduleTrace)}
    unknown = set(payload) - field_names
    if unknown:
        raise ConfigurationError(
            f"{path}: unknown trace fields {sorted(unknown)}"
        )
    payload["ids"] = tuple(payload["ids"])
    payload["port_neighbor"] = tuple(
        tuple(row) for row in payload["port_neighbor"]
    )
    payload["base_positions"] = tuple(payload["base_positions"])
    payload["choices"] = tuple(payload["choices"])
    return ScheduleTrace(**payload)
