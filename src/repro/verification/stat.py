"""Statistical model checking: Monte-Carlo trials with exact binomial bounds.

The exhaustive checker and the schedule fuzzer drive the lock-step
world, which is deliberately seedless — ``ctx.rng()`` raises there, so
the randomized family (:mod:`repro.protocols.random`) is outside their
reach *by construction*.  Its guarantees are probabilistic anyway:
election safety and the sublinear message bound hold with high
probability, not on every execution, so the only honest check is a
sampling one with an explicit confidence statement.

This module provides exactly that:

* a **trial** is one seeded election through the ordinary harness
  scenario runner — the same engine the simulator and the matrix use —
  with the run seed drawn from a named seed family
  (:func:`repro.matrix.spec.family_seed`), so every trial is
  byte-replayable anywhere the family name and trial index are known;
* per ``(protocol, scenario, N)`` **stratum**, trials fan out over the
  existing fork pool (:func:`repro.harness.parallel.run_sweep`) and two
  property counters are folded per trial: **election safety** (the run
  verifies and elects a unique leader — a
  :class:`~repro.core.errors.ProtocolViolation`, e.g. two leaders, is
  the safety failure this protocol family risks) and the **w.h.p.
  message bound** (:func:`repro.protocols.random.common.whp_message_bound`);
* each counter becomes a one-sided exact **Clopper–Pearson lower
  confidence bound** on the success probability (pure-Python bisection
  on the binomial tail — no scipy, no normal approximation), and the
  report passes when every stratum's LCB clears the target.

At the defaults (confidence 0.99, target 0.99), zero failures clear the
target from 459 trials up; the default of 600 leaves headroom for the
occasional bound excursion.  The report payload contains only integers
and rounded bisection outputs, so a rerun with the same family, trial
count and strata is byte-identical — the property the ``stat_smoke`` CI
leg pins.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.harness.parallel import run_sweep
from repro.harness.runner import Check

#: Default strata: the acceptance sizes for the sublinearity claim.  At
#: N < 64 the referee sample saturates (s = N-1) and the protocols
#: degenerate to probe-everyone, so smaller sizes say nothing about the
#: sublinear regime.
DEFAULT_NS: tuple[int, ...] = (64, 256)
DEFAULT_TRIALS = 600
DEFAULT_CONFIDENCE = 0.99
DEFAULT_TARGET = 0.99
DEFAULT_SEED_FAMILY = "stat-v1"


# -- exact binomial confidence bounds ---------------------------------------


def _log_comb(n: int, k: int) -> float:
    return (
        math.lgamma(n + 1) - math.lgamma(k + 1) - math.lgamma(n - k + 1)
    )


def binom_tail_ge(trials: int, successes: int, p: float) -> float:
    """P(X >= successes) for X ~ Binomial(trials, p), exactly.

    Summed in log space term by term — ``trials`` here is at most a few
    thousand, so the direct sum is both fast and stable.
    """
    if successes <= 0:
        return 1.0
    if p <= 0.0:
        return 0.0
    if p >= 1.0:
        return 1.0
    log_p = math.log(p)
    log_q = math.log1p(-p)
    total = 0.0
    for i in range(successes, trials + 1):
        total += math.exp(_log_comb(trials, i) + i * log_p + (trials - i) * log_q)
    return min(total, 1.0)


def clopper_pearson_lower(
    successes: int, trials: int, confidence: float
) -> float:
    """One-sided exact lower confidence bound on a binomial proportion.

    The largest ``p`` such that observing ``>= successes`` successes in
    ``trials`` trials has probability exactly ``1 - confidence`` —
    i.e. the root of the increasing map ``p -> P(X >= successes | p)``,
    found by bisection (the Beta-quantile identity without scipy).
    """
    if trials <= 0 or successes <= 0:
        return 0.0
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    alpha = 1.0 - confidence
    lo, hi = 0.0, 1.0
    for _ in range(80):
        mid = (lo + hi) / 2.0
        if binom_tail_ge(trials, successes, mid) < alpha:
            lo = mid
        else:
            hi = mid
    return lo


def clopper_pearson_upper(
    successes: int, trials: int, confidence: float
) -> float:
    """One-sided exact upper confidence bound (the mirror of the lower)."""
    if trials <= 0:
        return 1.0
    return 1.0 - clopper_pearson_lower(
        trials - successes, trials, confidence
    )


# -- the trial --------------------------------------------------------------


def run_stat_trial(
    protocol_name: str, scenario: str, n: int, seed: int
) -> dict[str, Any]:
    """One seeded election, reduced to the two property verdicts.

    Runs inside the fork pool; imports stay local so the parent pays
    them once and forked workers inherit the warm modules.
    """
    from repro.core.errors import ProtocolViolation
    from repro.core.protocol import protocol_class
    from repro.harness.scenarios import run_scenario
    from repro.protocols.random.common import whp_message_bound

    try:
        result = run_scenario(
            protocol_class(protocol_name)(), scenario, n, seed=seed
        )
        result.verify()
        safe = result.leader_id is not None
        messages = result.messages_total
    except ProtocolViolation:
        safe = False
        messages = None
    return {
        "safe": safe,
        "within_bound": (
            messages is not None and messages <= whp_message_bound(n)
        ),
        "messages": messages,
    }


# -- strata and the report --------------------------------------------------


@dataclass(frozen=True)
class StatStratum:
    """Folded Monte-Carlo counters for one (protocol, scenario, N) cell."""

    protocol: str
    scenario: str
    n: int
    trials: int
    safety_successes: int
    bound_successes: int
    messages_sum: int
    messages_max: int
    lcb_safety: float
    lcb_bound: float

    @property
    def key(self) -> str:
        return f"{self.protocol}/{self.scenario}@{self.n}"

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready mapping of every stratum field."""
        return {
            "protocol": self.protocol,
            "scenario": self.scenario,
            "n": self.n,
            "trials": self.trials,
            "safety_successes": self.safety_successes,
            "bound_successes": self.bound_successes,
            "messages_sum": self.messages_sum,
            "messages_max": self.messages_max,
            "lcb_safety": self.lcb_safety,
            "lcb_bound": self.lcb_bound,
        }


@dataclass
class StatReport:
    """Aggregate of one ``verify --stat`` campaign."""

    confidence: float
    target: float
    trials: int
    seed_family: str
    strata: list[StatStratum] = field(default_factory=list)
    checks: list[Check] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(check.passed for check in self.checks)

    def check(self, name: str, passed: bool, detail: str = "") -> None:
        """Record one named pass/fail verdict on the campaign."""
        self.checks.append(Check(name, bool(passed), detail))

    def payload(self) -> dict[str, Any]:
        """Canonical JSON payload — integers, rounded bisection outputs,
        and the replay coordinates (family + trial count); nothing
        machine- or schedule-dependent."""
        return {
            "confidence": self.confidence,
            "target": self.target,
            "trials": self.trials,
            "seed_family": self.seed_family,
            "strata": {s.key: s.to_dict() for s in self.strata},
            "checks": {
                check.name: {"passed": check.passed, "detail": check.detail}
                for check in self.checks
            },
        }

    def digest(self) -> str:
        """SHA-256 over the canonical payload — stable across reruns,
        serial/parallel execution, and machines (seeded trials)."""
        canonical = json.dumps(self.payload(), sort_keys=True).encode()
        return hashlib.sha256(canonical).hexdigest()

    def render(self) -> str:
        """Plain-text summary (the CLI output and the CI artifact body)."""
        lines = [
            "# Statistical verification report",
            "",
            f"- confidence: {self.confidence} (one-sided Clopper-Pearson)",
            f"- target success probability: {self.target}",
            f"- trials per stratum: {self.trials} "
            f"(seed family {self.seed_family!r})",
            f"- digest: `{self.digest()}`",
            "",
            "## Strata",
            "",
        ]
        for s in self.strata:
            mean = s.messages_sum / max(1, s.safety_successes)
            lines.append(
                f"- `{s.key}`: safety {s.safety_successes}/{s.trials} "
                f"(LCB {s.lcb_safety:.4f}), bound {s.bound_successes}/"
                f"{s.trials} (LCB {s.lcb_bound:.4f}), "
                f"messages mean {mean:.0f} max {s.messages_max}"
            )
        lines.append("")
        lines.append("## Checks")
        lines.append("")
        for check in self.checks:
            mark = "PASS" if check.passed else "FAIL"
            suffix = f" — {check.detail}" if check.detail else ""
            lines.append(f"- [{mark}] {check.name}{suffix}")
        lines.append("")
        return "\n".join(lines)

    def raise_if_failed(self) -> None:
        """Raise ``AssertionError`` naming every failed check (no-op
        when the campaign passed) — the pytest-facing entry point."""
        failed = [c for c in self.checks if not c.passed]
        if failed:
            details = "; ".join(f"{c.name} ({c.detail})" for c in failed)
            raise AssertionError(f"verify --stat: failed checks: {details}")


def randomized_protocol_names() -> list[str]:
    """Every registered protocol the flow analysis marks ``uses_ctx_rng``
    — the population ``verify --stat`` exists for."""
    import repro  # noqa: F401  (imports register every protocol)
    from repro.core.protocol import registered_protocols
    from repro.lint.capabilities import capability_for

    return sorted(
        name
        for name, cls in registered_protocols().items()
        if capability_for(cls).uses_ctx_rng
    )


def _fold_stratum(
    protocol: str,
    scenario: str,
    n: int,
    outcomes: Sequence[dict[str, Any]],
    confidence: float,
) -> StatStratum:
    safety = sum(1 for o in outcomes if o["safe"])
    bound = sum(1 for o in outcomes if o["within_bound"])
    messages = [o["messages"] for o in outcomes if o["messages"] is not None]
    return StatStratum(
        protocol=protocol,
        scenario=scenario,
        n=n,
        trials=len(outcomes),
        safety_successes=safety,
        bound_successes=bound,
        messages_sum=sum(messages),
        messages_max=max(messages, default=0),
        # 12 decimals: far below the bisection tolerance, far above any
        # cross-platform libm jitter — the payload stays byte-stable.
        lcb_safety=round(
            clopper_pearson_lower(safety, len(outcomes), confidence), 12
        ),
        lcb_bound=round(
            clopper_pearson_lower(bound, len(outcomes), confidence), 12
        ),
    )


def verify_stat(
    protocols: Sequence[str] | None = None,
    *,
    ns: Sequence[int] = DEFAULT_NS,
    scenario: str = "benign",
    trials: int = DEFAULT_TRIALS,
    confidence: float = DEFAULT_CONFIDENCE,
    target: float = DEFAULT_TARGET,
    seed_family: str = DEFAULT_SEED_FAMILY,
    parallel: bool | None = None,
) -> StatReport:
    """Monte-Carlo verify the randomized family's probabilistic properties.

    ``protocols`` defaults to every registered ``uses_ctx_rng`` protocol.
    Trial ``i`` of stratum ``(P, scenario, N)`` runs with seed
    ``family_seed(f"{seed_family}/{P}/{scenario}/{N}", i)`` — fully
    reproducible from the report's own metadata.
    """
    from repro.matrix.spec import family_seed

    if protocols is None:
        protocols = randomized_protocol_names()
    if trials <= 0:
        raise ValueError(f"trials must be positive, got {trials}")

    strata_keys = [(p, scenario, n) for p in protocols for n in ns]
    jobs: list[tuple[str, str, int, int]] = [
        (p, sc, n, family_seed(f"{seed_family}/{p}/{sc}/{n}", i))
        for p, sc, n in strata_keys
        for i in range(trials)
    ]
    outcomes = run_sweep(
        [
            lambda p=p, sc=sc, n=n, s=s: run_stat_trial(p, sc, n, s)
            for p, sc, n, s in jobs
        ],
        parallel=parallel,
    )

    report = StatReport(
        confidence=confidence,
        target=target,
        trials=trials,
        seed_family=seed_family,
    )
    for index, (p, sc, n) in enumerate(strata_keys):
        report.strata.append(
            _fold_stratum(
                p, sc, n,
                outcomes[index * trials : (index + 1) * trials],
                confidence,
            )
        )

    unsafe = [s.key for s in report.strata if s.lcb_safety < target]
    report.check(
        f"election safety LCB >= {target} at {confidence} confidence "
        "in every stratum",
        not unsafe,
        f"{len(report.strata)} strata x {trials} trials"
        + (f"; below target: {unsafe}" if unsafe else ""),
    )
    loose = [s.key for s in report.strata if s.lcb_bound < target]
    report.check(
        f"whp message bound LCB >= {target} at {confidence} confidence "
        "in every stratum",
        not loose,
        f"bound: ceil(9 ln N) * (4s+4) messages"
        + (f"; below target: {loose}" if loose else ""),
    )
    return report
