"""Schedule fuzzing: seeded pseudo-random and adversarial schedules.

Exhaustive exploration (:mod:`repro.verification.explore`) proves "for all
executions" at small N; this module stresses N far beyond exhaustive reach
by driving the same lock-step world down *many* schedules, each drawn from
a family of adversaries:

* ``uniform`` — every enabled action equally likely, the unbiased baseline;
* ``wake-last`` — spontaneous wake-ups are starved until no delivery is
  possible, serialising the candidate arrivals (the schedule behind the
  paper's Θ(N) worst-case time for Protocol A);
* ``starve-channel`` — one channel, picked per run, is frozen as long as
  anything else can move, forcing maximal head-of-line reordering across
  channels;
* ``pct`` — a PCT-style priority schedule: nodes get random priorities,
  the highest-priority enabled node always moves, and a few random
  priority-change points per run inject the "d critical reorderings" that
  uniform sampling almost never hits.

Fault families (opt-in — :data:`FAULT_FAMILIES`, or ``fault_budget`` on
:func:`fuzz_protocol`) additionally give the adversary a budget of
``("drop", link)`` actions that destroy channel heads, the lock-step
analogue of a :class:`~repro.sim.faults.FaultPlan`:

* ``msg-loss`` — uniform over all actions including drops: background
  loss anywhere the schedule wanders;
* ``targeted-loss`` — picks one victim node per run and preferentially
  destroys messages addressed to it while the budget lasts — a transient
  partition aimed at whichever node the protocol most depends on.

Safety and validity are still enforced verbatim under faults; liveness is
only owed when no message was destroyed (a lossy run may legitimately end
leaderless — that is what the reliable-delivery overlay exists for).

Every choice an adversary makes is recorded as an index into the world's
canonical ``enabled_actions()`` list, so any run — in particular any
*violating* run — is a compact :class:`~repro.verification.replay.ScheduleTrace`
that replays byte-for-byte and shrinks by delta-debugging.  Same seed,
same traces: the fuzzer is deterministic end to end.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import ClassVar

from repro.core.errors import ProtocolViolation
from repro.core.protocol import ElectionProtocol
from repro.topology.complete import CompleteTopology
from repro.verification.replay import ScheduleTrace
from repro.verification.world import Action, LockStepWorld, actor


class SchedulePolicy(ABC):
    """One adversary: picks the next action, fully driven by a seeded RNG."""

    #: Family name recorded into traces and per-family tallies.
    family: ClassVar[str] = "?"

    #: ``("drop", link)`` actions this adversary may take per episode
    #: (installed into the world before the run; 0 = reliable links).
    fault_budget: int = 0

    def reset(self, world: LockStepWorld, rng: random.Random) -> None:
        """Per-run initialisation (victim picks, priorities, ...)."""

    @abstractmethod
    def choose(
        self,
        world: LockStepWorld,
        actions: list[Action],
        rng: random.Random,
    ) -> int:
        """Index of the action to apply next (into ``actions``)."""


class UniformSchedule(SchedulePolicy):
    """Unbiased baseline: every enabled action equally likely."""

    family = "uniform"

    def choose(self, world, actions, rng):  # noqa: D102
        return rng.randrange(len(actions))


class WakeLastSchedule(SchedulePolicy):
    """Starve spontaneous wake-ups until no delivery is possible.

    This is the adversary behind the paper's Θ(N) time lower bound for
    Protocol A: each candidate only enters the fray once the previous
    one's messages have all landed.
    """

    family = "wake-last"

    def choose(self, world, actions, rng):  # noqa: D102
        deliveries = [
            index for index, (kind, _) in enumerate(actions)
            if kind == "deliver"
        ]
        if deliveries:
            return rng.choice(deliveries)
        return rng.randrange(len(actions))


class StarveChannelSchedule(SchedulePolicy):
    """Freeze one randomly chosen channel while anything else can move."""

    family = "starve-channel"

    def __init__(self) -> None:
        self._victim: tuple[int, int] | None = None

    def reset(self, world, rng):  # noqa: D102
        n = world.topology.n
        src = rng.randrange(n)
        dst = (src + rng.randrange(1, n)) % n
        self._victim = (src, dst)

    def choose(self, world, actions, rng):  # noqa: D102
        starved = ("deliver", self._victim)
        allowed = [
            index for index, action in enumerate(actions) if action != starved
        ]
        if allowed:
            return rng.choice(allowed)
        return rng.randrange(len(actions))


class PCTSchedule(SchedulePolicy):
    """PCT-style priority schedule with ``depth`` priority-change points.

    Nodes get distinct random priorities; at every step the enabled action
    of the highest-priority node is taken (random among that node's
    enabled actions).  At ``depth - 1`` random step counts the current
    top node is demoted below everyone, injecting the small number of
    critical reorderings the PCT argument says suffice to hit any bug of
    bounded depth with useful probability.
    """

    family = "pct"

    def __init__(self, depth: int = 3, horizon: int = 0) -> None:
        self.depth = max(1, depth)
        #: Step range the change points are drawn from; 0 means
        #: ``16 * n * n`` (comfortably past quiescence for small N).
        self.horizon = horizon
        self._priority: dict[int, float] = {}
        self._changes: set[int] = set()
        self._step = 0

    def reset(self, world, rng):  # noqa: D102
        n = world.topology.n
        order = list(range(n))
        rng.shuffle(order)
        self._priority = {node: float(rank) for rank, node in enumerate(order)}
        horizon = self.horizon or 16 * n * n
        self._changes = {
            rng.randrange(1, horizon) for _ in range(self.depth - 1)
        }
        self._step = 0

    def choose(self, world, actions, rng):  # noqa: D102
        self._step += 1
        enabled_actors = {actor(action) for action in actions}
        top = max(enabled_actors, key=self._priority.__getitem__)
        if self._step in self._changes:
            self._priority[top] = min(self._priority.values()) - 1.0
            top = max(enabled_actors, key=self._priority.__getitem__)
        candidates = [
            index for index, action in enumerate(actions)
            if actor(action) == top
        ]
        return rng.choice(candidates)


class MessageLossSchedule(SchedulePolicy):
    """Uniform schedule with a budget of message drops anywhere.

    The lock-step analogue of a plan-wide drop rate: drops compete with
    every other enabled action, so loss lands wherever the schedule
    happens to be — the unbiased fault baseline.
    """

    family = "msg-loss"

    def __init__(self, fault_budget: int = 3) -> None:
        self.fault_budget = fault_budget

    def choose(self, world, actions, rng):  # noqa: D102
        return rng.randrange(len(actions))


class TargetedLossSchedule(SchedulePolicy):
    """Destroy messages addressed to one chosen victim while budget lasts.

    The lock-step analogue of a transient partition isolating one node:
    the run's victim stops hearing from the network for ``fault_budget``
    messages, then the cut heals.
    """

    family = "targeted-loss"

    def __init__(self, fault_budget: int = 3) -> None:
        self.fault_budget = fault_budget
        self._victim: int | None = None

    def reset(self, world, rng):  # noqa: D102
        self._victim = rng.randrange(world.topology.n)

    def choose(self, world, actions, rng):  # noqa: D102
        targeted = [
            index for index, (kind, arg) in enumerate(actions)
            if kind == "drop" and arg[1] == self._victim
        ]
        if targeted:
            return rng.choice(targeted)
        return rng.randrange(len(actions))


#: The default adversary line-up, cycled over the requested schedules.
DEFAULT_FAMILIES: tuple[SchedulePolicy, ...] = (
    UniformSchedule(),
    WakeLastSchedule(),
    StarveChannelSchedule(),
    PCTSchedule(),
)

#: The fault-injecting families (opt-in: lossy runs owe no liveness, so
#: mixing them in dilutes liveness coverage — see ``fuzz_protocol``'s
#: ``fault_budget`` shortcut).
FAULT_FAMILIES: tuple[SchedulePolicy, ...] = (
    MessageLossSchedule(),
    TargetedLossSchedule(),
)


@dataclass(frozen=True)
class FuzzViolation:
    """One failing schedule, carried as a replayable trace."""

    kind: str  # "safety" | "liveness" | "validity"
    message: str
    trace: ScheduleTrace


@dataclass
class FuzzReport:
    """Aggregate of one fuzzing campaign."""

    runs: int = 0
    steps_total: int = 0
    truncated_runs: int = 0
    leaders_seen: set[int] = field(default_factory=set)
    runs_per_family: dict[str, int] = field(default_factory=dict)
    violations: list[FuzzViolation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no schedule produced a violation."""
        return not self.violations

    def __str__(self) -> str:
        families = ", ".join(
            f"{family}:{count}"
            for family, count in sorted(self.runs_per_family.items())
        )
        verdict = (
            "ok" if self.ok else f"{len(self.violations)} VIOLATION(S)"
        )
        return (
            f"{self.runs} schedules ({families}), {self.steps_total} steps, "
            f"leaders {sorted(self.leaders_seen)}, {verdict}"
        )


def fuzz_protocol(
    protocol: ElectionProtocol,
    topology: CompleteTopology,
    *,
    schedules: int = 100,
    seed: int = 0,
    base_positions: tuple[int, ...] | None = None,
    families: tuple[SchedulePolicy, ...] | None = None,
    max_steps: int = 20_000,
    stop_at_first: bool = True,
    fault_budget: int = 0,
) -> FuzzReport:
    """Drive ``schedules`` seeded adversarial schedules and check each run.

    Each run cycles through ``families`` (default: the four reliable-link
    adversaries; ``fault_budget > 0`` appends the fault families with that
    budget), derives its own RNG from ``(seed, run, family)``, and checks
    safety on every step plus liveness and validity at quiescence —
    except that a run whose messages were destroyed owes no liveness.
    Violations are collected as replayable :class:`FuzzViolation` traces
    (``stop_at_first=True`` stops the campaign at the first one).  The
    report never raises: the caller inspects ``report.ok`` /
    ``report.violations`` — a found bug with its trace in hand is the
    fuzzer's *successful* outcome.
    """
    if base_positions is None:
        base_positions = tuple(range(topology.n))
    else:
        base_positions = tuple(base_positions)
    if families is not None:
        line_up = families
    elif fault_budget > 0:
        line_up = DEFAULT_FAMILIES + (
            MessageLossSchedule(fault_budget),
            TargetedLossSchedule(fault_budget),
        )
    else:
        line_up = DEFAULT_FAMILIES
    protocol_name = type(protocol).name
    report = FuzzReport()
    # Build the initial configuration once and branch a copy-on-write child
    # per episode: the template is never stepped, so every branch starts
    # from the pristine initial state and node construction (O(N) object
    # graphs) is paid once per campaign instead of once per schedule.
    template = LockStepWorld(protocol, topology, base_positions)
    for run in range(schedules):
        policy = line_up[run % len(line_up)]
        rng = random.Random(f"{seed}:{run}:{policy.family}")
        world = template.branch()
        world.fault_budget = policy.fault_budget
        policy.reset(world, rng)
        report.runs += 1
        report.runs_per_family[policy.family] = (
            report.runs_per_family.get(policy.family, 0) + 1
        )
        choices: list[int] = []
        violation: tuple[str, str] | None = None
        quiescent = False
        while True:
            actions = world.enabled_actions()
            if not actions:
                quiescent = True
                break
            if len(choices) >= max_steps:
                report.truncated_runs += 1
                break
            index = policy.choose(world, actions, rng)
            choices.append(index)
            try:
                world.apply(actions[index])
            except ProtocolViolation as error:
                violation = ("safety", str(error))
                break
        report.steps_total += len(choices)
        if violation is None and quiescent:
            leaders = set(world.leaders)
            if not leaders:
                if world.dropped == 0:  # lossy runs owe no liveness
                    violation = ("liveness", "quiescent with no leader")
            else:
                (leader,) = leaders  # safety enforced at declaration
                leader_id = world.topology.id_at(leader)
                if not world.nodes[leader].is_base:
                    violation = (
                        "validity",
                        f"non-base node {leader_id} was elected leader",
                    )
                else:
                    report.leaders_seen.add(leader_id)
        if violation is not None:
            kind, message = violation
            trace = ScheduleTrace.capture(
                protocol_name,
                topology,
                base_positions,
                tuple(choices),
                family=policy.family,
                seed=seed,
                fault_budget=policy.fault_budget,
            )
            report.violations.append(FuzzViolation(kind, message, trace))
            if stop_at_first:
                break
    return report
