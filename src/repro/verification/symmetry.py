"""Node-relabelling permutations and orbit canonicalisation.

The complete network is maximally symmetric *as a graph*: with sense of
direction the canonical cyclic wiring is invariant under the ``n``
rotations (port labels are cyclic distances, which rotation preserves);
with hidden wiring the adversary cannot distinguish any relabelling, so
all ``n!`` permutations are candidate symmetries once each node's ports
are renumbered to follow the moved wiring.  This module builds those
candidate groups and canonicalises world states to the lexicographically
least member of their orbit, using the permutation-apply primitive
:meth:`~repro.verification.world.LockStepWorld.state_tuple`.

Soundness boundary — read before trusting a quotient
----------------------------------------------------

A relabelling is a true automorphism of the *checked transition system*
only if the protocol treats identities as abstract tokens.  **None of the
paper's protocols do**: every contest is resolved by comparing identities
(or ``Strength`` pairs ending in an identity) with ``<`` — that is the
whole point of symmetry *breaking* — so a rotation maps reachable states
to states the protocol can never reach with the original identity order
(e.g. Protocol D's ``node_id > cand`` test flips under relabelling).
``tests/verification/test_symmetry.py`` pins a concrete refutation.
No-sense protocols additionally scan their ports in numeric order
(``_next_port``), breaking port-renumbering invariance the same way.

Orbit exploration (``explore_protocol(..., symmetry=True)``) is therefore
a **bug-hunting and census mode**, not a verification mode: it only ever
prunes — every state it visits is concretely reachable, so any violation
it raises is real — but a state whose orbit representative was visited
earlier is skipped even though the protocol would behave differently
there, so completeness of outcome sets is *not* implied.  The honest
exhaustive speedups live in the compression, store and parallel layers of
:mod:`repro.verification.explore`; the orbit census (``canonical_states``)
quantifies how much redundancy id-symmetry *would* remove for an
id-oblivious protocol, which is exactly the gap the paper's lower-bound
argument (Section 5) attributes to symmetry breaking.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.topology.complete import CompleteTopology
from repro.verification.world import LockStepWorld


@dataclass(frozen=True)
class Permutation:
    """One node relabelling: positions, identities, and port renumberings.

    ``positions[p]`` is the destination of position ``p``; ``id_map``
    relabels identity values consistently (``id_at(p) -> id_at(positions[p])``);
    ``port_maps[p]``, when present, renumbers node ``p``'s ports so that a
    port leading to ``q`` becomes the destination node's port leading to
    ``positions[q]`` — the identity for rotations of the cyclic wiring,
    which preserve ports exactly.
    """

    positions: tuple[int, ...]
    id_map_items: tuple[tuple[int, int], ...]
    port_maps: tuple[tuple[int, ...], ...] | None

    def apply(self, world: LockStepWorld):
        """The world's frozen state as seen through this relabelling."""
        return world.state_tuple(
            positions=self.positions,
            id_map=dict(self.id_map_items),
            port_maps=self.port_maps,
        )


def _identity_permutation(n: int) -> Permutation:
    return Permutation(tuple(range(n)), (), None)


def _permutation_for(
    topology: CompleteTopology, positions: Sequence[int]
) -> Permutation:
    """Build the full relabelling induced by a position permutation."""
    n = topology.n
    id_map = tuple(
        (topology.id_at(p), topology.id_at(positions[p])) for p in range(n)
    )
    if topology.sense_of_direction:
        # Rotations of the cyclic wiring preserve port numbers: the node at
        # distance d stays at distance d.  (Non-rotation permutations of a
        # sense-of-direction network are not wiring-preserving and are
        # never generated here.)
        port_maps = None
    else:
        port_maps = tuple(
            tuple(
                topology.port_to(
                    positions[p],
                    positions[topology.neighbor(p, port)],
                )
                for port in range(topology.num_ports)
            )
            for p in range(n)
        )
    return Permutation(tuple(positions), id_map, port_maps)


def rotation_group(topology: CompleteTopology) -> list[Permutation]:
    """The ``n`` rotations — the wiring automorphisms of a sense-of-direction
    network (PAPER.md Section 2: port ``d-1`` is the chord of length ``d``,
    and rotation preserves every chord length)."""
    n = topology.n
    return [
        _permutation_for(topology, [(p + r) % n for p in range(n)])
        for r in range(n)
    ]


def symmetric_group(topology: CompleteTopology) -> list[Permutation]:
    """All ``n!`` relabellings of a hidden-wiring network.

    Feasible only at the tiny ``n`` the exhaustive explorer reaches; the
    explorer refuses the mode past n=6 (720 permutations per state).
    """
    from itertools import permutations as _perms

    n = topology.n
    return [
        _permutation_for(topology, positions)
        for positions in _perms(range(n))
    ]


def symmetry_group(topology: CompleteTopology) -> list[Permutation]:
    """The candidate group the ISSUE assigns per topology family: rotations
    with sense of direction (protocols A/B/C), the full symmetric group
    without (D/E/F/G)."""
    if topology.sense_of_direction:
        return rotation_group(topology)
    return symmetric_group(topology)


def canonical_state(
    world: LockStepWorld, group: Sequence[Permutation]
):
    """The lexicographically least permuted state tuple over ``group``.

    Compared via ``repr`` because permuted tuples can place ``None`` and
    ``int`` in the same slot across group members (e.g. an unset
    ``owner_port`` against a set one), which Python's tuple ``<`` refuses
    to order.
    """
    return min(
        (g.apply(world) for g in group), key=repr
    )


def canonical_fingerprint(
    world: LockStepWorld, group: Sequence[Permutation]
) -> int:
    """64-bit hash of the orbit representative (the memo key for orbit
    exploration)."""
    return hash(canonical_state(world, group))
