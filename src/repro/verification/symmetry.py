"""Node-relabelling permutations and orbit canonicalisation.

The complete network is maximally symmetric *as a graph*: with sense of
direction the canonical cyclic wiring is invariant under the ``n``
rotations (port labels are cyclic distances, which rotation preserves);
with hidden wiring the adversary cannot distinguish any relabelling, so
all ``n!`` permutations are candidate symmetries once each node's ports
are renumbered to follow the moved wiring.  This module builds those
candidate groups and canonicalises world states to the lexicographically
least member of their orbit, using the permutation-apply primitive
:meth:`~repro.verification.world.LockStepWorld.state_tuple`.

Soundness boundary — read before trusting a quotient
----------------------------------------------------

A relabelling is a true automorphism of the *checked transition system*
only if the protocol treats identities as abstract tokens.  **None of the
paper's protocols do**: every contest is resolved by comparing identities
(or ``Strength`` pairs ending in an identity) with ``<`` — that is the
whole point of symmetry *breaking* — so a rotation maps reachable states
to states the protocol can never reach with the original identity order
(e.g. Protocol D's ``node_id > cand`` test flips under relabelling).
``tests/verification/test_symmetry.py`` pins a concrete refutation.
No-sense protocols additionally scan their ports in numeric order
(``_next_port``), breaking port-renumbering invariance the same way.

This boundary is no longer policed by hand: :func:`ensure_prune_sound`
refuses ``symmetry="prune"`` unless the ``repro.lint`` equivariance
analysis (RPL020/RPL021 site counts, snapshotted per protocol in
``verification/capabilities.json``) proves the topology's group is an
automorphism group of the checked system.  For the paper's protocols the
gate always refuses; ``symmetry="prune-unsound"`` is the explicit escape
hatch.  Ungated orbit exploration is a **bug-hunting and census mode**,
not a verification mode: it only ever prunes — every state it visits is
concretely reachable, so any violation it raises is real — but a state
whose orbit representative was visited earlier is skipped even though
the protocol would behave differently there, so completeness of outcome
sets is *not* implied.  The honest
exhaustive speedups live in the compression, store and parallel layers of
:mod:`repro.verification.explore`; the orbit census (``canonical_states``)
quantifies how much redundancy id-symmetry *would* remove for an
id-oblivious protocol, which is exactly the gap the paper's lower-bound
argument (Section 5) attributes to symmetry breaking.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.topology.complete import CompleteTopology
from repro.verification.world import LockStepWorld


@dataclass(frozen=True)
class Permutation:
    """One node relabelling: positions, identities, and port renumberings.

    ``positions[p]`` is the destination of position ``p``; ``id_map``
    relabels identity values consistently (``id_at(p) -> id_at(positions[p])``);
    ``port_maps[p]``, when present, renumbers node ``p``'s ports so that a
    port leading to ``q`` becomes the destination node's port leading to
    ``positions[q]`` — the identity for rotations of the cyclic wiring,
    which preserve ports exactly.
    """

    positions: tuple[int, ...]
    id_map_items: tuple[tuple[int, int], ...]
    port_maps: tuple[tuple[int, ...], ...] | None

    def apply(self, world: LockStepWorld):
        """The world's frozen state as seen through this relabelling."""
        return world.state_tuple(
            positions=self.positions,
            id_map=dict(self.id_map_items),
            port_maps=self.port_maps,
        )


def _identity_permutation(n: int) -> Permutation:
    return Permutation(tuple(range(n)), (), None)


def _permutation_for(
    topology: CompleteTopology, positions: Sequence[int]
) -> Permutation:
    """Build the full relabelling induced by a position permutation."""
    n = topology.n
    id_map = tuple(
        (topology.id_at(p), topology.id_at(positions[p])) for p in range(n)
    )
    if topology.sense_of_direction:
        # Rotations of the cyclic wiring preserve port numbers: the node at
        # distance d stays at distance d.  (Non-rotation permutations of a
        # sense-of-direction network are not wiring-preserving and are
        # never generated here.)
        port_maps = None
    else:
        port_maps = tuple(
            tuple(
                topology.port_to(
                    positions[p],
                    positions[topology.neighbor(p, port)],
                )
                for port in range(topology.num_ports)
            )
            for p in range(n)
        )
    return Permutation(tuple(positions), id_map, port_maps)


def rotation_group(topology: CompleteTopology) -> list[Permutation]:
    """The ``n`` rotations — the wiring automorphisms of a sense-of-direction
    network (PAPER.md Section 2: port ``d-1`` is the chord of length ``d``,
    and rotation preserves every chord length)."""
    n = topology.n
    return [
        _permutation_for(topology, [(p + r) % n for p in range(n)])
        for r in range(n)
    ]


def symmetric_group(topology: CompleteTopology) -> list[Permutation]:
    """All ``n!`` relabellings of a hidden-wiring network.

    Feasible only at the tiny ``n`` the exhaustive explorer reaches; the
    explorer refuses the mode past n=6 (720 permutations per state).
    """
    from itertools import permutations as _perms

    n = topology.n
    return [
        _permutation_for(topology, positions)
        for positions in _perms(range(n))
    ]


def symmetry_group(topology: CompleteTopology) -> list[Permutation]:
    """The candidate group the ISSUE assigns per topology family: rotations
    with sense of direction (protocols A/B/C), the full symmetric group
    without (D/E/F/G)."""
    if topology.sense_of_direction:
        return rotation_group(topology)
    return symmetric_group(topology)


def canonical_state(
    world: LockStepWorld, group: Sequence[Permutation]
):
    """The lexicographically least permuted state tuple over ``group``.

    Compared via ``repr`` because permuted tuples can place ``None`` and
    ``int`` in the same slot across group members (e.g. an unset
    ``owner_port`` against a set one), which Python's tuple ``<`` refuses
    to order.
    """
    return min(
        (g.apply(world) for g in group), key=repr
    )


def canonical_fingerprint(
    world: LockStepWorld, group: Sequence[Permutation]
) -> int:
    """64-bit hash of the orbit representative (the memo key for orbit
    exploration)."""
    return hash(canonical_state(world, group))


# -- the prune gate ---------------------------------------------------------------
#
# Which protocols may quotient which groups used to be a hand-maintained
# classification (the prose above, applied by the person typing
# ``--symmetry``).  It is now *derived*: ``repro.lint`` counts the
# id-ordering (RPL020) and port-scan (RPL021) sites in each protocol's
# implementation modules and the gate below refuses ``--symmetry prune``
# for any protocol whose counts say the group is not an automorphism
# group of the checked system.  A snapshot of the derivation is checked
# in at ``verification/capabilities.json``; the live derivation is
# cross-checked against it on every gate query so the table cannot
# silently go stale (regenerate with ``python -m repro lint
# --capabilities``).  ``symmetry="prune-unsound"`` bypasses the gate for
# the census/bug-hunting workflows the prose describes.


def prune_capability(protocol) -> "object":
    """The linter-derived capability record for ``protocol`` (an
    :class:`~repro.lint.capabilities.ProtocolCapability`)."""
    from repro.lint.capabilities import capability_for

    return capability_for(type(protocol))


def ensure_prune_sound(protocol, topology: CompleteTopology) -> None:
    """Refuse ``symmetry="prune"`` unless the linter proves it sound.

    Raises :class:`~repro.core.errors.ConfigurationError` if the
    protocol's implementation contains id-ordering sites (RPL020) — or,
    under hidden wiring, port-order scans (RPL021) — and also if the
    live derivation disagrees with the checked-in capability table
    (stale table: code changed without regenerating the snapshot).
    """
    from repro.core.errors import ConfigurationError
    from repro.lint.capabilities import load_packaged_table

    capability = prune_capability(protocol)

    table = load_packaged_table()
    name = getattr(type(protocol), "name", None)
    if table is not None and name in table.get("protocols", {}):
        pinned = table["protocols"][name]
        live = capability.to_dict()
        # The v2 behavioural keys are compared only when the pinned entry
        # has them: a version-1 snapshot (no flow fields) degrades to the
        # v1 staleness check instead of reading as universally stale.
        keys = ["id_order_sites", "port_scan_sites",
                "rotation_equivariant", "relabelling_equivariant"]
        keys.extend(
            key
            for key in ("uses_timers", "uses_rng", "uses_ctx_rng",
                        "max_fanout", "quiescent_kinds")
            if key in pinned
        )
        for key in keys:
            if pinned.get(key) != live[key]:
                raise ConfigurationError(
                    f"symmetry capability table is stale for protocol "
                    f"{name!r}: checked-in {key}={pinned.get(key)!r} but "
                    f"the code derives {live[key]!r}; regenerate "
                    "src/repro/verification/capabilities.json with "
                    "`python -m repro lint --capabilities`"
                )

    if capability.uses_rng:
        raise ConfigurationError(
            f"symmetry='prune' is not sound for protocol "
            f"{capability.protocol!r}: the flow analysis found entropy "
            "imports (uses_rng), so states that look orbit-equivalent "
            "can diverge on private random choices. Use symmetry='census' "
            "or symmetry='prune-unsound'."
        )

    if capability.uses_ctx_rng:
        raise ConfigurationError(
            f"symmetry='prune' is not sound for protocol "
            f"{capability.protocol!r}: the flow analysis found draws from "
            "the per-node coin stream (uses_ctx_rng). The streams are "
            "seeded by node identity, so relabelling a state changes which "
            "coins its nodes will flip — orbit-equivalent states diverge. "
            "Randomized protocols are checked statistically instead: "
            "`python -m repro verify --stat` (see docs/randomized.md)."
        )

    if topology.sense_of_direction:
        sound = capability.rotation_equivariant
        group_name = "rotation group"
    else:
        sound = capability.relabelling_equivariant
        group_name = "full relabelling group"
    if not sound:
        raise ConfigurationError(
            f"symmetry='prune' is not outcome-sound for protocol "
            f"{capability.protocol!r}: the linter found "
            f"{capability.id_order_sites} id-ordering site(s) (RPL020) and "
            f"{capability.port_scan_sites} port-scan site(s) (RPL021) in "
            f"{', '.join(capability.modules)}, so the {group_name} is not "
            "an automorphism group of the checked system. Use "
            "symmetry='census' for a sound orbit count, or "
            "symmetry='prune-unsound' for the reachability-only "
            "bug-hunting mode (see docs/verification.md)."
        )
