"""Execution-space verification: exhaustive exploration, fuzzing, replay.

The simulator samples executions; this package *checks* them at scale,
all against the same lock-step world (:mod:`repro.verification.world`)
driving the very ``Node`` classes the simulator runs:

* :mod:`repro.verification.explore` — every interleaving of wake-ups and
  FIFO message deliveries a complete asynchronous network allows, for
  small N, with partial-order reduction and incremental fingerprints;
* :mod:`repro.verification.fuzz` — seeded pseudo-random and adversarial
  schedule families (wake-last, starve-channel, PCT) for N beyond
  exhaustive reach, every run recorded as a replayable trace;
* :mod:`repro.verification.replay` — byte-for-byte deterministic replay
  of schedule traces, delta-debugging shrinking, and trace files.
"""

from repro.verification.explore import (
    ExplorationReport,
    count_unpruned_interleavings,
    explore_protocol,
)
from repro.verification.fuzz import (
    DEFAULT_FAMILIES,
    FuzzReport,
    FuzzViolation,
    PCTSchedule,
    SchedulePolicy,
    StarveChannelSchedule,
    UniformSchedule,
    WakeLastSchedule,
    fuzz_protocol,
)
from repro.verification.replay import (
    ReplayOutcome,
    ScheduleTrace,
    load_trace,
    replay_trace,
    save_trace,
    shrink_trace,
)
from repro.verification.world import Action, LockStepWorld, StepContext

__all__ = [
    "Action",
    "DEFAULT_FAMILIES",
    "ExplorationReport",
    "FuzzReport",
    "FuzzViolation",
    "LockStepWorld",
    "PCTSchedule",
    "ReplayOutcome",
    "ScheduleTrace",
    "SchedulePolicy",
    "StarveChannelSchedule",
    "StepContext",
    "UniformSchedule",
    "WakeLastSchedule",
    "count_unpruned_interleavings",
    "explore_protocol",
    "fuzz_protocol",
    "load_trace",
    "replay_trace",
    "save_trace",
    "shrink_trace",
]
