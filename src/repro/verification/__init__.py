"""Exhaustive verification of protocol executions (small N).

The simulator samples executions; this package *enumerates* them: every
interleaving of wake-ups and FIFO message deliveries a complete
asynchronous network allows.  See :mod:`repro.verification.explore`.
"""

from repro.verification.explore import ExplorationReport, explore_protocol

__all__ = ["ExplorationReport", "explore_protocol"]
