"""Execution-space verification: exhaustive exploration, fuzzing, replay.

The simulator samples executions; this package *checks* them at scale,
all against the same lock-step world (:mod:`repro.verification.world`)
driving the very ``Node`` classes the simulator runs:

* :mod:`repro.verification.explore` — every interleaving of wake-ups and
  FIFO message deliveries a complete asynchronous network allows, for
  small N, with partial-order reduction, inert-delivery compression, a
  flat hash-compacted fingerprint store and optional parallel strata;
* :mod:`repro.verification.symmetry` — node-relabelling permutation
  groups, orbit canonicalisation, and the honest statement of where
  symmetry reduction is (and is not) sound for id-comparing protocols;
* :mod:`repro.verification.store` — the 8-byte-per-state visited table;
* :mod:`repro.verification.fuzz` — seeded pseudo-random and adversarial
  schedule families (wake-last, starve-channel, PCT) for N beyond
  exhaustive reach, every run recorded as a replayable trace;
* :mod:`repro.verification.replay` — byte-for-byte deterministic replay
  of schedule traces, delta-debugging shrinking, and trace files;
* :mod:`repro.verification.stat` — Monte-Carlo statistical model
  checking with exact Clopper–Pearson confidence bounds, the honest
  check for the randomized family the seedless lock-step world cannot
  drive (``python -m repro verify --stat``, docs/randomized.md).
"""

from repro.verification.explore import (
    ExplorationReport,
    count_unpruned_interleavings,
    explore_protocol,
)
from repro.verification.fuzz import (
    DEFAULT_FAMILIES,
    FAULT_FAMILIES,
    FuzzReport,
    FuzzViolation,
    MessageLossSchedule,
    PCTSchedule,
    SchedulePolicy,
    StarveChannelSchedule,
    TargetedLossSchedule,
    UniformSchedule,
    WakeLastSchedule,
    fuzz_protocol,
)
from repro.verification.replay import (
    ReplayOutcome,
    ScheduleTrace,
    load_trace,
    replay_trace,
    save_trace,
    shrink_trace,
)
from repro.verification.stat import (
    StatReport,
    StatStratum,
    clopper_pearson_lower,
    clopper_pearson_upper,
    verify_stat,
)
from repro.verification.store import FingerprintTable
from repro.verification.symmetry import (
    Permutation,
    canonical_fingerprint,
    canonical_state,
    ensure_prune_sound,
    prune_capability,
    rotation_group,
    symmetric_group,
    symmetry_group,
)
from repro.verification.world import (
    Action,
    LockStepWorld,
    StepContext,
    freeze_value,
    message_hash,
)

__all__ = [
    "Action",
    "DEFAULT_FAMILIES",
    "ExplorationReport",
    "FAULT_FAMILIES",
    "FingerprintTable",
    "FuzzReport",
    "FuzzViolation",
    "LockStepWorld",
    "MessageLossSchedule",
    "PCTSchedule",
    "Permutation",
    "ReplayOutcome",
    "ScheduleTrace",
    "SchedulePolicy",
    "StarveChannelSchedule",
    "StatReport",
    "StatStratum",
    "StepContext",
    "TargetedLossSchedule",
    "UniformSchedule",
    "WakeLastSchedule",
    "canonical_fingerprint",
    "canonical_state",
    "clopper_pearson_lower",
    "clopper_pearson_upper",
    "count_unpruned_interleavings",
    "ensure_prune_sound",
    "explore_protocol",
    "freeze_value",
    "fuzz_protocol",
    "load_trace",
    "message_hash",
    "prune_capability",
    "replay_trace",
    "rotation_group",
    "save_trace",
    "shrink_trace",
    "symmetric_group",
    "symmetry_group",
    "verify_stat",
]
