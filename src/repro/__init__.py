"""Reproduction of *Leader Election in Complete Networks* (Singh, PODC 1992).

A discrete-event simulation library implementing every protocol the paper
presents — A, A′, B, C for complete networks with sense of direction; D,
ℰ, ℱ, 𝒢 and a fault-tolerant variant for networks without — together with
the baselines it compares against (LMW86, AG85, Chang–Roberts), the
Section 5 lower-bound adversary, and applications (spanning tree, global
functions, broadcast) built on election.

Quickstart::

    from repro import run_election, ProtocolC, complete_with_sense_of_direction

    topology = complete_with_sense_of_direction(64)
    result = run_election(ProtocolC(), topology)
    print(result.summary())   # leader, messages, time

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record.
"""

from repro.core.errors import (
    ConfigurationError,
    LivelockError,
    MessageSizeError,
    ProtocolViolation,
    ReproError,
    SimulationError,
)
from repro.core.protocol import (
    ElectionProtocol,
    protocol_class,
    registered_protocols,
)
from repro.core.reliable import ReliableDelivery
from repro.core.results import ElectionResult
from repro.sim.delays import ConstantDelay, DelayModel, HookDelay, UniformDelay
from repro.sim.faults import FaultPlan, LinkFaults, Partition, isolate
from repro.sim.network import Network, run_election
from repro.sim.shard import ShardedNetwork, run_sharded_election
from repro.topology.chordal_ring import ChordalRingTopology
from repro.topology.complete import (
    CompleteTopology,
    complete_with_sense_of_direction,
    complete_without_sense,
)
from repro.topology.ports import (
    HotspotPorts,
    IdOrderedPorts,
    PortStrategy,
    RandomPorts,
    UpDownPorts,
)

# Importing the protocol modules registers them by name.
from repro.protocols.sense.chang_roberts import ChangRoberts
from repro.protocols.sense.hirschberg_sinclair import HirschbergSinclair
from repro.protocols.sense.lmw86 import LMW86
from repro.protocols.sense.protocol_a import ProtocolA, ProtocolAPrime
from repro.protocols.sense.protocol_b import ProtocolB
from repro.protocols.sense.protocol_c import ProtocolC
from repro.protocols.nosense.fault_tolerant import FaultTolerantElection
from repro.protocols.nosense.protocol_d import ProtocolD
from repro.protocols.nosense.protocol_e import AfekGafni, ProtocolE
from repro.protocols.nosense.protocol_f import ProtocolF
from repro.protocols.nosense.protocol_g import ProtocolG
from repro.protocols.nosense.protocol_r import ProtocolR
from repro.protocols.random.protocol_rs import RandomizedSampling
from repro.protocols.random.protocol_rt import RandomizedTradeoff
from repro.apps.broadcast import Broadcast
from repro.apps.global_function import GlobalFunction
from repro.apps.spanning_tree import SpanningTree
from repro.harness.scenarios import run_scenario
from repro.verification import explore_protocol

__version__ = "1.0.0"

__all__ = [
    # runtime
    "Network",
    "run_election",
    "ShardedNetwork",
    "run_sharded_election",
    "ElectionResult",
    # topologies
    "CompleteTopology",
    "ChordalRingTopology",
    "complete_with_sense_of_direction",
    "complete_without_sense",
    # port strategies
    "PortStrategy",
    "RandomPorts",
    "IdOrderedPorts",
    "UpDownPorts",
    "HotspotPorts",
    # delays
    "DelayModel",
    "ConstantDelay",
    "UniformDelay",
    "HookDelay",
    # fault injection & recovery
    "FaultPlan",
    "LinkFaults",
    "Partition",
    "isolate",
    "ReliableDelivery",
    # protocols
    "ElectionProtocol",
    "protocol_class",
    "registered_protocols",
    "ProtocolA",
    "ProtocolAPrime",
    "ProtocolB",
    "ProtocolC",
    "ProtocolD",
    "ProtocolE",
    "ProtocolF",
    "ProtocolG",
    "ProtocolR",
    "RandomizedSampling",
    "RandomizedTradeoff",
    "AfekGafni",
    "LMW86",
    "ChangRoberts",
    "HirschbergSinclair",
    "FaultTolerantElection",
    # verification & scenarios
    "explore_protocol",
    "run_scenario",
    # applications
    "SpanningTree",
    "GlobalFunction",
    "Broadcast",
    # errors
    "ReproError",
    "ConfigurationError",
    "SimulationError",
    "ProtocolViolation",
    "LivelockError",
    "MessageSizeError",
    "__version__",
]
