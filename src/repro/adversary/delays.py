"""Adversarial delay strategies.

The asynchronous adversary of the paper's proofs controls two dials within
the Section 2 model: per-message latency (≤ 1) and inter-message spacing on
a link (≤ 1).  This module packages the schedules the paper's arguments
use:

* :func:`worst_case_unit` — every message takes the full unit; the schedule
  the time-complexity definition quantifies over.
* :func:`congested_links` — tiny latency but full unit spacing per link.
  This is the Section 4 pathology that motivates ℰ: under AG85, a popular
  captured node forwards a burst of claims to its owner over one link, and
  unit spacing serialises the burst into Θ(burst) time.  ℰ's one-in-flight
  rule is immune.
* :func:`band_freeze` — a qualitative rendition of the Section 5
  ``h(ex, B)`` transformation: messages touching the middle half of the
  identity space crawl at the full unit while the rest of the network runs
  at ``epsilon``, so symmetry among the middle bands is broken only by
  information that pays the stretched delays.
"""

from __future__ import annotations

from repro.sim.delays import ConstantDelay, DelayModel, HookDelay


def worst_case_unit() -> DelayModel:
    """Unit latency on every message (the time-complexity schedule)."""
    return ConstantDelay(1.0)


def congested_links(latency: float = 0.05) -> DelayModel:
    """Fast links with full unit inter-message spacing.

    Bursts of messages on a single link serialise at one per time unit —
    exactly the behaviour that makes an AG85 capture take Θ(N) time and
    that ℰ's flow control avoids (see Protocol ℰ's module docstring).
    """
    return HookDelay(
        lambda sender, receiver, message, send_time: latency,
        gap_fn=lambda sender, receiver, message, send_time: 1.0,
        min_latency=latency,
    )


def band_freeze(n: int, epsilon: float = 0.1) -> DelayModel:
    """Slow every message touching the middle half of the identity space.

    Nodes with identities in ``[N/4, 3N/4)`` are the order-symmetric middle
    bands of the Section 5 construction; messages to or from them take the
    full unit while the rest of the network runs at ``epsilon``.  Identity
    comparisons are the only symmetry-breaker a comparison-based protocol
    has, and the asymmetric information (from the extreme identities) now
    pays stretched delays to reach the middle.
    """
    low, high = n // 4, 3 * n // 4

    def latency(sender: int, receiver: int, message, send_time: float) -> float:
        if low <= sender < high or low <= receiver < high:
            return 1.0
        return epsilon

    return HookDelay(latency, min_latency=min(epsilon, 1.0))
