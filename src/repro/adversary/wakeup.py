"""Wake-up patterns.

The paper's time bounds are sensitive to *when* base nodes wake: Protocol A
is O(k) when wake-ups are clustered but Θ(N) under the staggered chain of
Section 3, and Protocol ℱ's O(N/k) bound (Lemma 4.1) holds only when all
nodes wake within O(N/k) of each other — which is exactly why Protocol 𝒢
adds its two ordering phases.  Each pattern here is a factory the
:class:`~repro.sim.network.Network` calls with the topology and its RNG; it
returns ``{position: wake_time}`` for the base nodes.
"""

from __future__ import annotations

import random

from repro.core.errors import ConfigurationError
from repro.topology.complete import CompleteTopology


def simultaneous(time: float = 0.0):
    """Every node wakes spontaneously at ``time`` (all nodes are base)."""

    def schedule(topology: CompleteTopology, rng: random.Random):
        return {position: time for position in range(topology.n)}

    return schedule


def single_base(position: int = 0, time: float = 0.0):
    """Exactly one base node; everyone else wakes by message only."""

    def schedule(topology: CompleteTopology, rng: random.Random):
        if not 0 <= position < topology.n:
            raise ConfigurationError(f"base position {position} out of range")
        return {position: time}

    return schedule


def random_subset(count: int, *, window: float = 0.0, seed_offset: int = 0):
    """``count`` base nodes chosen uniformly, waking within ``window``.

    Used by experiment E9 (time as a function of the number of base nodes
    ``r``).
    """

    def schedule(topology: CompleteTopology, rng: random.Random):
        if not 1 <= count <= topology.n:
            raise ConfigurationError(
                f"base-node count must be in 1..{topology.n}, got {count}"
            )
        local = random.Random(rng.getrandbits(48) + seed_offset)
        positions = local.sample(range(topology.n), count)
        return {
            position: (local.uniform(0.0, window) if window else 0.0)
            for position in positions
        }

    return schedule


def staggered_chain(*, epsilon: float = 0.25, count: int | None = None):
    """The Section 3 worst case for Protocol A.

    Node at cycle position ``p`` wakes at ``p * (1 - epsilon)`` — "just
    before the message from i reaches it" — so each capture attempt meets a
    same-level, higher-identity opponent and dies, and only the last node
    survives, after Θ(N) time.  ``count`` limits how many nodes take part
    (default: all).
    """
    if not 0 < epsilon < 1:
        raise ConfigurationError(f"epsilon must be in (0, 1), got {epsilon}")

    def schedule(topology: CompleteTopology, rng: random.Random):
        limit = topology.n if count is None else min(count, topology.n)
        spacing = 1.0 - epsilon
        return {position: position * spacing for position in range(limit)}

    return schedule


def staggered_uniform(count: int, *, spread: float):
    """``count`` base nodes (positions 0..count-1) spread evenly over
    ``[0, spread]`` — the knob Lemma 4.1 ranges over."""

    def schedule(topology: CompleteTopology, rng: random.Random):
        limit = min(count, topology.n)
        if limit < 1:
            raise ConfigurationError("need at least one base node")
        step = spread / max(1, limit - 1) if limit > 1 else 0.0
        return {position: position * step for position in range(limit)}

    return schedule


def explicit(schedule_by_position: dict[int, float]):
    """Use a hand-written ``{position: time}`` schedule verbatim."""

    def schedule(topology: CompleteTopology, rng: random.Random):
        return dict(schedule_by_position)

    return schedule
