"""Adversarial strategies: wake-ups, delays, wirings, the Section 5 harness."""
