"""Band symmetry under the Section 5 adversary (Lemmas 5.1 / 5.2).

The lower-bound proof's engine is a *symmetry* invariant: under the
execution family ``Ex`` — simultaneous wake-up, uniform delays, Up-first
port selection — nodes in the middle identity bands remain in
order-equivalent states until information from the asymmetric extremes
(the wrap-around of the identity circle) physically reaches them, which
takes time proportional to their band distance from the extremes.  A
comparison-based protocol cannot break the symmetry any faster, so it
cannot elect quickly without spending messages.

This module makes that invariant measurable.  Under ``Ex`` the whole
environment is **translation-invariant** in identity space except at the
wrap: node ``i+d``'s k-neighbourhood looks exactly like node ``i``'s
shifted by ``d``, with all identity *comparisons* equal.  Hence two
middle-band nodes' local histories must be identical once every partner
identity is rewritten as a centered cyclic offset from the observing node.
:func:`history_signature` computes that canonical local history from a
trace; :func:`symmetric_prefix_time` reports how long a pair of nodes
stayed indistinguishable; :func:`check_band_symmetry` asserts the lemma's
shape: middle-band nodes stay symmetric for a time that grows with their
distance from the extremes.
"""

from __future__ import annotations

from repro.core.errors import ConfigurationError
from repro.core.results import ElectionResult

#: Trace-detail keys that carry a partner identity (rewritten to offsets).
_PARTNER_KEYS = ("to", "sender", "cand", "owner")


def _centered_offset(partner: int, observer: int, n: int) -> int:
    """Cyclic identity offset in ``(-n/2, n/2]`` — the translation-free
    coordinate of a partner as seen from ``observer``."""
    delta = (partner - observer) % n
    return delta if delta <= n // 2 else delta - n


def history_signature(
    result: ElectionResult, node_id: int, *, until: float | None = None
) -> list[tuple]:
    """The canonical local history of one node.

    Every event at ``node_id`` up to ``until``, with partner identities
    replaced by centered offsets.  Two nodes in order-equivalent states
    have equal signatures under the translation-invariant environment.
    """
    if not result.trace.enabled:
        raise ConfigurationError("history signatures need a traced run")
    n = result.n
    out: list[tuple] = []
    for event in result.trace.events:
        if event.node != node_id:
            continue
        if until is not None and event.time > until:
            break
        detail = tuple(
            (
                key,
                _centered_offset(value, node_id, n)
                if key in _PARTNER_KEYS and isinstance(value, int)
                else value,
            )
            for key, value in event.detail
        )
        out.append((event.time, event.kind, detail))
    return out


def symmetric_prefix_time(
    result: ElectionResult, node_a: int, node_b: int
) -> float:
    """How long two nodes' canonical histories stayed identical.

    Returns the time of the first divergent event (``inf`` when the whole
    histories match).
    """
    history_a = history_signature(result, node_a)
    history_b = history_signature(result, node_b)
    for entry_a, entry_b in zip(history_a, history_b):
        if entry_a != entry_b:
            return min(entry_a[0], entry_b[0])
    if len(history_a) != len(history_b):
        shorter = history_a if len(history_a) < len(history_b) else history_b
        longer = history_b if shorter is history_a else history_a
        return longer[len(shorter)][0]
    return float("inf")


def check_band_symmetry(
    result: ElectionResult, *, band_width: int
) -> dict[str, float]:
    """Measure the Lemma 5.1/5.2 shape on one adversarial run.

    With identities ``0..N-1`` on an Up-wired network, compares the
    canonical histories of identity-adjacent pairs at three depths into
    the middle region and returns how long each pair stayed symmetric.
    The lemma predicts the symmetric prefix grows with the distance from
    the extremes (the wrap at 0/N-1), because asymmetric information needs
    that many unit-delay band-hops to arrive.
    """
    n = result.n
    quarter, middle = n // 4, n // 2
    pairs = {
        "near_extreme": (band_width + 1, band_width + 2),
        "quarter_deep": (quarter, quarter + 1),
        "center": (middle, middle + 1),
    }
    return {
        name: symmetric_prefix_time(result, a, b)
        for name, (a, b) in pairs.items()
    }
