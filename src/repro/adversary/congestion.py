"""The Section 4 forwarding-congestion scenario (AG85 vs ℰ).

The paper motivates ℰ with this execution: a captured node ``j`` receives
capture claims from candidates ``i₁ … i_m`` and forwards each to its owner
over one link; with inter-message delay up to a unit on that link, only the
last forwarded claim defeats the owner and the capture of ``j`` takes Θ(N)
time.  ℰ keeps at most one forwarded claim in flight and answers the rest
from the buffer, restoring O(1) time per capture.

:func:`hotspot_scenario` stages exactly that execution:

* node 0 (**victim**) is passive and is everyone's first port;
* node N-2 (**blocker**) wakes first, captures the victim, and is then
  stalled by design (its second claim goes to the eventual winner over a
  deliberately slow link, and loses) — but its ``(1, N-2)`` pair still
  defeats every level-0 challenge forwarded to it;
* nodes 1..N-3 (**crowd**) wake together and all claim the victim, creating
  the forwarded burst on the victim→blocker link;
* node N-1 (**winner**) visits the victim *last*, so its decisive claim
  queues behind the burst under AG85 but jumps the buffer under ℰ.

All links carry small latency and full unit inter-message spacing
(:func:`~repro.adversary.delays.congested_links` semantics).  Under AG85
the election takes Θ(N) time; under ℰ it takes O(1) beyond the winner's
own O(N) sequential march — benchmark E5b measures the gap.
"""

from __future__ import annotations

from repro.core.errors import ConfigurationError
from repro.sim.delays import DelayModel, HookDelay
from repro.sim.network import WakeupSchedule
from repro.topology.complete import CompleteTopology


def hotspot_scenario(
    n: int, *, latency: float = 0.05
) -> tuple[CompleteTopology, WakeupSchedule, DelayModel]:
    """Build (topology, wakeup, delays) for the forwarding-congestion duel.

    Run the same triple under ``AfekGafni()`` and ``ProtocolE()`` and
    compare election times.
    """
    if n < 6:
        raise ConfigurationError(f"hotspot scenario needs N >= 6, got {n}")
    victim, blocker, winner = 0, n - 2, n - 1
    crowd = [p for p in range(1, n - 2)]

    port_maps: list[list[int]] = [[] for _ in range(n)]
    port_maps[victim] = [p for p in range(n) if p != victim]
    # The blocker claims the victim first, then runs into the winner.
    port_maps[blocker] = [victim, winner] + crowd
    # The winner sweeps the crowd and the blocker, reaching the victim last.
    port_maps[winner] = crowd + [blocker, victim]
    for member in crowd:
        rest = [p for p in range(n) if p not in (member, victim)]
        port_maps[member] = [victim] + rest

    topology = CompleteTopology(
        n, list(range(n)), port_maps, sense_of_direction=False
    )

    # The blocker gets a head start to own the victim; the winner starts
    # next so its level outgrows the blocker's stalled pair; the crowd then
    # floods the victim.
    wakeup = {blocker: 0.0, winner: 0.1}
    for member in crowd:
        wakeup[member] = 0.2

    def link_latency(sender: int, receiver: int, message, send_time) -> float:
        # The blocker→winner link crawls, so the blocker's second claim
        # arrives after the winner has leveled up and is refused: the
        # blocker stalls at pair (1, N-2), strong enough to beat the crowd.
        if sender == blocker and receiver == winner:
            return 1.0
        return latency

    delays = HookDelay(
        link_latency,
        gap_fn=lambda sender, receiver, message, send_time: 1.0,
    )
    return topology, wakeup, delays
