"""Order-equivalence of executions (Section 5's comparison-based premise).

Theorem 5.1 applies to *comparison-based* protocols: ones whose behaviour
depends on identities only through their relative order.  Formally, two
executions are order-equivalent when an order-preserving identity map
carries one's event structure onto the other's; a comparison-based protocol
cannot distinguish them.

This module makes that premise executable: :func:`check_comparison_based`
runs the same protocol on the same wired network under two order-isomorphic
identity assignments and verifies that the two traces are identical up to
the identity map.  Every protocol in this library passes (they compare
identities, never do arithmetic on them), which is what entitles them to
the lower bound's conclusions.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any

from repro.core.errors import ConfigurationError
from repro.core.protocol import ElectionProtocol
from repro.sim.delays import ConstantDelay, DelayModel
from repro.sim.network import Network
from repro.sim.tracing import TraceEvent
from repro.topology.complete import (
    complete_with_sense_of_direction,
    complete_without_sense,
)
from repro.topology.ports import IdOrderedPorts


def order_isomorphic(ids_a: Sequence[int], ids_b: Sequence[int]) -> bool:
    """True when the two assignments have identical rank structure."""
    if len(ids_a) != len(ids_b):
        return False
    rank_a = {identity: rank for rank, identity in enumerate(sorted(ids_a))}
    rank_b = {identity: rank for rank, identity in enumerate(sorted(ids_b))}
    return all(rank_a[a] == rank_b[b] for a, b in zip(ids_a, ids_b))


def canonical_trace(
    events: Sequence[TraceEvent], ids: Sequence[int]
) -> list[tuple[float, str, int, tuple[tuple[str, Any], ...]]]:
    """Rewrite a trace with every identity replaced by its rank.

    Two executions are order-equivalent exactly when their canonical traces
    are equal.
    """
    rank = {identity: index for index, identity in enumerate(sorted(ids))}

    def canon_value(key: str, value: Any) -> Any:
        if key in ("to", "cand", "owner", "sender") and isinstance(value, int):
            return rank.get(value, value)
        return value

    out = []
    for event in events:
        detail = tuple(
            (key, canon_value(key, value)) for key, value in event.detail
        )
        out.append((event.time, event.kind, rank[event.node], detail))
    return out


def run_traced(
    protocol: ElectionProtocol,
    n: int,
    ids: Sequence[int],
    *,
    sense_of_direction: bool = False,
    delays: DelayModel | None = None,
    seed: int = 0,
):
    """Run one traced election.

    Without sense of direction the hidden wiring is derived from identity
    ranks (so order-isomorphic assignments get identical wiring); with it,
    ports are the chord labels and wiring is rank-independent by
    construction.
    """
    if sense_of_direction:
        topology = complete_with_sense_of_direction(n, ids=list(ids))
    else:
        topology = complete_without_sense(
            n, ids=list(ids), port_strategy=IdOrderedPorts(), seed=seed
        )
    network = Network(
        protocol,
        topology,
        delays=delays if delays is not None else ConstantDelay(1.0),
        seed=seed,
        trace=True,
    )
    return network.run()


def check_comparison_based(
    protocol_factory,
    ids_a: Sequence[int],
    ids_b: Sequence[int],
    *,
    sense_of_direction: bool = False,
    seed: int = 0,
) -> None:
    """Assert a protocol cannot distinguish order-isomorphic assignments.

    Runs the protocol twice — same positions, same (rank-derived) wiring,
    same delays — under the two assignments and compares canonical traces.
    Raises :class:`AssertionError` with the first divergence on failure.
    """
    if not order_isomorphic(ids_a, ids_b):
        raise ConfigurationError(
            "identity assignments are not order-isomorphic; the comparison "
            "tells you nothing"
        )
    n = len(ids_a)
    result_a = run_traced(
        protocol_factory(), n, ids_a, sense_of_direction=sense_of_direction,
        seed=seed,
    )
    result_b = run_traced(
        protocol_factory(), n, ids_b, sense_of_direction=sense_of_direction,
        seed=seed,
    )
    trace_a = canonical_trace(result_a.trace.events, ids_a)
    trace_b = canonical_trace(result_b.trace.events, ids_b)
    if trace_a != trace_b:
        for index, (a, b) in enumerate(zip(trace_a, trace_b)):
            if a != b:
                raise AssertionError(
                    f"executions diverge at trace index {index}: {a} != {b}"
                )
        raise AssertionError(
            f"executions have different lengths: "
            f"{len(trace_a)} vs {len(trace_b)}"
        )
