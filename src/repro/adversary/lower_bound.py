"""Executable form of the Section 5 lower bound.

**Theorem 5.1.** Any comparison-based leader-election protocol on an
asynchronous complete network that sends fewer than ``Nd`` messages needs
at least ``N/16d`` time.  **Corollary:** message-optimal protocols
(O(N log N) messages) need Ω(N/log N) time.

A lower bound is a statement about *all* protocols, so it cannot be "run";
what can be run is the adversary it constructs, against each protocol we
have:

* **Port selection.**  Fresh edges resolve Up-first
  (:class:`~repro.topology.ports.UpDownPorts`): as long as a node stays in
  an order-symmetric state it talks only to its k identity-neighbours, so
  information that breaks symmetry must travel through the identity chain.
* **Delay scheduling.**  Unit latency everywhere
  (:func:`~repro.adversary.delays.worst_case_unit`), with
  :func:`~repro.adversary.delays.band_freeze` available as the qualitative
  rendition of the band-stretching ``h(ex, B)`` transformation.
* **Simultaneous wake-up** (condition (1) of the execution family ``Ex``).

:func:`adversarial_run` assembles that environment for one protocol;
:func:`theorem_bound` computes ``N/16d`` from a measured message count, so
benchmarks can check ``measured_time ≥ theorem_bound`` and watch both grow
together — the *shape* claim of the theorem.  The tradeoff version (sweep
``k`` in ℱ/𝒢 and verify ``time × messages/N = Ω(N)``) lives in experiment
E7.
"""

from __future__ import annotations

import math

from repro.core.protocol import ElectionProtocol
from repro.core.results import ElectionResult
from repro.sim.delays import DelayModel
from repro.sim.network import Network
from repro.topology.complete import complete_without_sense
from repro.topology.ports import UpDownPorts
from repro.adversary.delays import worst_case_unit


def theorem_bound(n: int, messages: int) -> float:
    """The Theorem 5.1 floor ``N / 16d`` for a run that sent ``messages``.

    ``d`` is the per-node message budget the theorem parameterises on; a
    run that sent ``M`` messages fits ``d = M/N``, giving ``N² / 16M``.
    """
    if messages <= 0:
        return math.inf
    return n * n / (16 * messages)


def corollary_bound(n: int) -> float:
    """The corollary floor Ω(N/log N) for message-optimal protocols."""
    return n / (16 * max(1.0, math.log2(n)))


def adversarial_run(
    protocol: ElectionProtocol,
    n: int,
    *,
    locality: int | None = None,
    delays: DelayModel | None = None,
    seed: int = 0,
) -> ElectionResult:
    """Run ``protocol`` against the Section 5 adversary.

    ``locality`` is the adversary's band width ``k`` (default ``⌈log₂ N⌉``,
    matching the message-optimal regime ``d = log N`` the corollary talks
    about).  Returns the finished :class:`ElectionResult`; compare its
    ``election_time`` against :func:`theorem_bound` of its
    ``messages_total``.
    """
    k = locality if locality is not None else max(1, math.ceil(math.log2(n)))
    topology = complete_without_sense(
        n, port_strategy=UpDownPorts(k), seed=seed
    )
    network = Network(
        protocol,
        topology,
        delays=delays if delays is not None else worst_case_unit(),
        seed=seed,
    )
    return network.run()
