"""Spanning-tree construction via leader election.

In a complete network a breadth-first tree rooted at the leader is a star,
so once a leader exists the tree costs one broadcast round: the leader
invites every neighbour, each non-leader adopts the inviting port as its
parent and acknowledges, and the leader records its children.  Total
overhead: 2(N-1) messages and 2 time units on top of the election —
establishing the Section 1 equivalence empirically (experiment E10).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.core.messages import Message
from repro.apps.wrapper import AppNode, AppProtocol


@dataclass(frozen=True, slots=True)
class TreeInvite(Message):
    """The leader's adoption offer, carrying its identity."""

    leader_id: int


@dataclass(frozen=True, slots=True)
class TreeAck(Message):
    """A node confirming it joined the tree."""


class SpanningTreeNode(AppNode):
    """Election plus star-tree construction."""

    APP_MESSAGES = (TreeInvite, TreeAck)

    def __init__(self, ctx, election) -> None:
        super().__init__(ctx, election)
        self.parent_port: int | None = None
        self.children = 0
        self.tree_complete = False
        self._acks_outstanding = 0

    def on_leader_elected(self) -> None:
        self._acks_outstanding = self.ctx.num_ports
        for port in range(self.ctx.num_ports):
            self.ctx.send(port, TreeInvite(self.ctx.node_id))

    def on_app_message(self, port: int, message: Message) -> None:
        match message:
            case TreeInvite():
                self.parent_port = port
                self.leader_id = message.leader_id
                self.ctx.send(port, TreeAck())
            case TreeAck():
                self.children += 1
                self._acks_outstanding -= 1
                if self._acks_outstanding == 0:
                    self.tree_complete = True
                    self.ctx.trace("tree_complete", children=self.children)

    def snapshot(self) -> dict[str, Any]:
        base = super().snapshot()
        base.update(
            parent_port=self.parent_port,
            children=self.children,
            tree_complete=self.tree_complete,
        )
        return base


class SpanningTree(AppProtocol):
    """Spanning tree on top of any election protocol."""

    name = "SpanningTree"
    node_class = SpanningTreeNode
