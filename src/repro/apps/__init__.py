"""Applications built on election (the Section 1 equivalences)."""
