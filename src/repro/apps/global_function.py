"""Computing a global function via leader election.

The second Section 1 equivalence: once a leader exists, any associative
function of per-node inputs (sum, max, min, count) is two rounds away —
the leader polls every node, folds the replies, and announces the result,
so every node ends up knowing the global value.  Overhead: 3(N-1) messages
and 3 time units on top of the election.

Inputs are supplied as ``input_fn(node_id) -> int`` so experiments can
compute, e.g., the sum of identities and check it exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.core.errors import ConfigurationError
from repro.core.messages import Message
from repro.core.node import NodeContext
from repro.core.protocol import ElectionProtocol
from repro.apps.wrapper import AppNode, AppProtocol

#: fold name -> (initial-from-first-value, combine)
FOLDS: dict[str, Callable[[int, int], int]] = {
    "sum": lambda a, b: a + b,
    "max": max,
    "min": min,
}


@dataclass(frozen=True, slots=True)
class GatherRequest(Message):
    """The leader asking for a node's input value."""


@dataclass(frozen=True, slots=True)
class GatherReply(Message):
    """A node's input value."""

    value: int


@dataclass(frozen=True, slots=True)
class ResultAnnounce(Message):
    """The folded global value, distributed to everyone."""

    value: int


class GlobalFunctionNode(AppNode):
    """Election plus a poll-fold-announce epilogue."""

    APP_MESSAGES = (GatherRequest, GatherReply, ResultAnnounce)

    def __init__(self, ctx: NodeContext, election, fold: str, input_fn) -> None:
        super().__init__(ctx, election)
        self.fold = fold
        self.input_value = int(input_fn(ctx.node_id))
        self.global_result: int | None = None
        self._replies_outstanding = 0

    def on_leader_elected(self) -> None:
        self._replies_outstanding = self.ctx.num_ports
        self.global_result = self.input_value
        if self._replies_outstanding == 0:
            self._announce()
            return
        for port in range(self.ctx.num_ports):
            self.ctx.send(port, GatherRequest())

    def _announce(self) -> None:
        self.ctx.trace("global_result", value=self.global_result)
        for port in range(self.ctx.num_ports):
            self.ctx.send(port, ResultAnnounce(self.global_result))

    def on_app_message(self, port: int, message: Message) -> None:
        match message:
            case GatherRequest():
                self.ctx.send(port, GatherReply(self.input_value))
            case GatherReply():
                combine = FOLDS[self.fold]
                self.global_result = combine(self.global_result, message.value)
                self._replies_outstanding -= 1
                if self._replies_outstanding == 0:
                    self._announce()
            case ResultAnnounce():
                self.global_result = message.value

    def snapshot(self) -> dict[str, Any]:
        base = super().snapshot()
        base.update(input_value=self.input_value, global_result=self.global_result)
        return base


class GlobalFunction(AppProtocol):
    """Global aggregate (sum/max/min) on top of any election protocol."""

    name = "GlobalFunction"

    def __init__(
        self,
        election: ElectionProtocol,
        *,
        fold: str = "sum",
        input_fn: Callable[[int], int] = lambda node_id: node_id,
    ) -> None:
        super().__init__(election)
        if fold not in FOLDS:
            raise ConfigurationError(
                f"unknown fold {fold!r}; choose from {sorted(FOLDS)}"
            )
        self.fold = fold
        self.input_fn = input_fn

    def create_node(self, ctx: NodeContext) -> GlobalFunctionNode:
        return GlobalFunctionNode(ctx, self.election, self.fold, self.input_fn)

    def describe(self) -> str:
        return f"{self.name}({self.fold})[{self.election.describe()}]"
