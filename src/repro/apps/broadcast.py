"""Reliable single-source broadcast via leader election.

The simplest of the Section 1 equivalences: electing a leader and having it
distribute a value is how a complete network agrees on anything (epoch
numbers, configuration, the leader's own identity).  Overhead: 2(N-1)
messages and 2 time units on top of the election.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.core.messages import Message
from repro.core.node import NodeContext
from repro.core.protocol import ElectionProtocol
from repro.apps.wrapper import AppNode, AppProtocol


@dataclass(frozen=True, slots=True)
class Payload(Message):
    """The value the leader distributes."""

    value: int


@dataclass(frozen=True, slots=True)
class PayloadAck(Message):
    """Delivery confirmation."""


class BroadcastNode(AppNode):
    """Election plus a broadcast-with-acks epilogue."""

    APP_MESSAGES = (Payload, PayloadAck)

    def __init__(self, ctx: NodeContext, election, payload_fn) -> None:
        super().__init__(ctx, election)
        self.payload_fn = payload_fn
        self.received: int | None = None
        self.delivered_to = 0
        self.broadcast_complete = False
        self._acks_outstanding = 0

    def on_leader_elected(self) -> None:
        value = int(self.payload_fn(self.ctx.node_id))
        self.received = value
        self._acks_outstanding = self.ctx.num_ports
        if self._acks_outstanding == 0:
            self.broadcast_complete = True
            return
        for port in range(self.ctx.num_ports):
            self.ctx.send(port, Payload(value))

    def on_app_message(self, port: int, message: Message) -> None:
        match message:
            case Payload():
                self.received = message.value
                self.ctx.send(port, PayloadAck())
            case PayloadAck():
                self.delivered_to += 1
                self._acks_outstanding -= 1
                if self._acks_outstanding == 0:
                    self.broadcast_complete = True

    def snapshot(self) -> dict[str, Any]:
        base = super().snapshot()
        base.update(
            received=self.received,
            broadcast_complete=self.broadcast_complete,
        )
        return base


class Broadcast(AppProtocol):
    """Leader-sourced broadcast on top of any election protocol."""

    name = "Broadcast"

    def __init__(
        self,
        election: ElectionProtocol,
        *,
        payload_fn: Callable[[int], int] = lambda leader_id: leader_id,
    ) -> None:
        super().__init__(election)
        self.payload_fn = payload_fn

    def create_node(self, ctx: NodeContext) -> BroadcastNode:
        return BroadcastNode(ctx, self.election, self.payload_fn)
