"""Composing applications on top of any election protocol.

Section 1: "There are many problems such as spanning tree construction,
computing a global function, etc. which are equivalent to leader election
in terms of message and time complexities."  The apps in this package make
that claim concrete: each wraps an arbitrary
:class:`~repro.core.protocol.ElectionProtocol`, lets it elect a leader, and
then runs a constant number of extra rounds costing O(N) messages — so the
app inherits the election's asymptotic message and time complexity.

The composition pattern: an :class:`AppNode` owns the election protocol's
node, hands it a wrapped context whose ``declare_leader`` is intercepted,
and dispatches messages by type — the app's own message classes to the app
handler, everything else to the inner election node.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.core.messages import Message
from repro.core.node import Node, NodeContext
from repro.core.protocol import ElectionProtocol

if TYPE_CHECKING:
    # repro: lint-ok[RPL003] typing-only, for the ctx.rng() forwarder
    # annotation; never imported at runtime
    import random


class _InterceptedContext(NodeContext):
    """Pass-through context that reports leadership to the app first."""

    def __init__(self, real: NodeContext, app: "AppNode") -> None:
        self._real = real
        self._app = app
        self.node_id = real.node_id
        self.n = real.n
        self.num_ports = real.num_ports
        self.has_sense_of_direction = real.has_sense_of_direction

    def send(self, port: int, message: Message) -> None:  # noqa: D102
        # repro: lint-ok[RPL041] this IS the accounting choke point: the
        # wrapper forwards to the real context, whose send() meters it
        self._real.send(port, message)

    def port_label(self, port: int) -> int | None:  # noqa: D102
        return self._real.port_label(port)

    def port_with_label(self, distance: int) -> int:  # noqa: D102
        return self._real.port_with_label(distance)

    def now(self) -> float:  # noqa: D102
        return self._real.now()

    def declare_leader(self) -> None:  # noqa: D102
        self._app._inner_declared_leader()
        self._real.declare_leader()

    def trace(self, kind: str, **detail: Any) -> None:  # noqa: D102
        self._real.trace(kind, **detail)

    def set_timer(self, delay: float, callback) -> None:  # noqa: D102
        self._real.set_timer(delay, callback)

    def count(self, metric: str, delta: int = 1) -> None:  # noqa: D102
        self._real.count(metric, delta)

    def rng(self) -> "random.Random":  # noqa: D102
        return self._real.rng()


class AppNode(Node):
    """A node running an election protocol plus an app epilogue.

    Subclasses define :attr:`APP_MESSAGES` (the message classes they own),
    :meth:`on_leader_elected` (the leader's first app action) and
    :meth:`on_app_message`.
    """

    APP_MESSAGES: tuple[type[Message], ...] = ()

    def __init__(self, ctx: NodeContext, election: ElectionProtocol) -> None:
        super().__init__(ctx)
        self.inner = election.create_node(_InterceptedContext(ctx, self))
        self.leader_id: int | None = None

    def on_wake(self, spontaneous: bool) -> None:
        self.inner.wake(spontaneous)

    def on_message(self, port: int, message: Message) -> None:
        if isinstance(message, self.APP_MESSAGES):
            self.on_app_message(port, message)
        else:
            self.inner.receive(port, message)

    def _inner_declared_leader(self) -> None:
        self.is_leader = True
        self.leader_id = self.ctx.node_id
        self.on_leader_elected()

    # -- subclass hooks -----------------------------------------------------

    def on_leader_elected(self) -> None:
        """The election just finished and this node won; start the app."""
        raise NotImplementedError

    def on_app_message(self, port: int, message: Message) -> None:
        """Handle one of this app's own messages."""
        raise NotImplementedError

    def snapshot(self) -> dict[str, Any]:
        base = self.inner.snapshot()
        base.update(
            awake=self.awake,
            is_base=self.is_base,
            is_leader=self.is_leader,
            leader_id=self.leader_id,
        )
        return base


class AppProtocol(ElectionProtocol):
    """Base for app protocol factories wrapping an election protocol."""

    node_class: type[AppNode]

    def __init__(self, election: ElectionProtocol) -> None:
        self.election = election

    def validate(self, topology) -> None:  # noqa: D102
        self.election.validate(topology)

    def create_node(self, ctx: NodeContext) -> AppNode:
        return self.node_class(ctx, self.election)

    def describe(self) -> str:
        return f"{self.name}[{self.election.describe()}]"
