"""The paper's election protocols, their baselines, and shared machinery."""
