"""State shared by the capture-style protocols.

Every protocol in the paper except D is a *capture* protocol: candidates
absorb nodes one contest at a time, contests compare a lexicographic
strength, and a candidate that loses a contest stops initiating.  This
module holds the role vocabulary and the strength bookkeeping those
protocols share; the per-protocol rules stay in their own modules because
the paper's whole point is how the rules differ.
"""

from __future__ import annotations

import enum

from repro.core.strength import Strength


class Role(enum.Enum):
    """Lifecycle of a node in a capture protocol.

    PASSIVE    never woke spontaneously; obeys whoever captures it.
    CANDIDATE  a base node actively running the protocol.
    STALLED    a candidate that lost a contest ("killed" in the paper) but
               has not been absorbed: it still holds its level and keeps
               winning or losing future contests with it.
    CAPTURED   absorbed into a stronger candidate's set.
    LEADER     declared itself elected.
    """

    PASSIVE = "passive"
    CANDIDATE = "candidate"
    STALLED = "stalled"
    CAPTURED = "captured"
    LEADER = "leader"


#: Strength rank awarded to a declared leader so it wins every later
#: contest.  Any candidate's level/step is at most n; n + 1 beats them all.
def leader_strength(n: int, node_id: int) -> Strength:
    """The unbeatable strength of a node that already declared leader."""
    return Strength(n + 1, node_id)
