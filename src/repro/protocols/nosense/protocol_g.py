"""Protocol 𝒢 — ℱ with wake-up ordering phases (Section 4, Lemma 4.3).

ℱ's O(N/k) bound needs wake-ups clustered within O(N/k) of each other
(Lemma 4.1); a staggered chain defeats it.  𝒢 prepends two phases that
*order* the base nodes by wake-up time, so that in every constant-length
interval either ≥ k nodes wake up or some node reaches level k — which,
with Lemma 4.2, yields O(N/k) time unconditionally.

**First phase** — a fresh base node asks k neighbours (its first k ports)
for permission:

* a passive neighbour is captured outright and *accepts*;
* a neighbour still inside its own first phase answers *proceed*;
* a neighbour that already finished its first phase answers *finish*;
* a captured neighbour consults its owner with a ``check`` round trip (one
  outstanding check per node; concurrent askers are queued and answered
  together, and a positive answer is cached — once the owner has finished,
  that fact never reverts).

A base node that hears any *finish* is killed: it woke demonstrably later
than an established candidate.  Otherwise it enters the second phase with
``level = #accepts``.

**Second phase** — the node captures every *proceed* neighbour with ℰ-rule
capture messages (nodes that have not started their second phase count as
passive).  Only when **all** of them accept does the level rise to k; any
rejection kills the node.  Survivors then execute ℱ (ℰ conquest from port
k onward, flood at level N/k).

The paper shows a base node finishes its first phase within 5 time units
of waking, giving the interval argument of Lemma 4.3.  Message cost stays
O(Nk): the pre-phases add O(k) messages per base node plus one check round
trip per first-phase message.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.core.errors import ConfigurationError
from repro.core.messages import Message
from repro.core.node import NodeContext
from repro.core.protocol import register
from repro.core.strength import Strength
from repro.protocols.common import Role
from repro.protocols.nosense.protocol_e import SeqAccept, SeqCapture
from repro.protocols.nosense.protocol_f import ProtocolF, ProtocolFNode
from repro.topology.complete import CompleteTopology

# -- messages -------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class FirstPhase(Message):
    """A fresh base node's permission request."""

    cand: int


@dataclass(frozen=True, slots=True)
class FPAccept(Message):
    """Permission granted by a passive node (which is now captured)."""


@dataclass(frozen=True, slots=True)
class FPProceed(Message):
    """The neighbour is itself still in its first phase."""


@dataclass(frozen=True, slots=True)
class FPFinish(Message):
    """The neighbour (or its owner) already finished its first phase."""


@dataclass(frozen=True, slots=True)
class CheckOwner(Message):
    """A captured node asking its owner: finished your first phase?"""


@dataclass(frozen=True, slots=True)
class CheckReply(Message):
    """The owner's answer to :class:`CheckOwner`."""

    finished: bool


# -- node ----------------------------------------------------------------------------


class ProtocolGNode(ProtocolFNode):
    """One node running 𝒢."""

    def __init__(self, ctx: NodeContext, k: int) -> None:
        super().__init__(ctx, k)
        self.stage = "idle"  # idle -> first -> second -> conquest
        self.first_finished = False
        self._fp_replies = 0
        self._fp_accepts = 0
        self._fp_finish = False
        self._fp_proceed_ports: list[int] = []
        self._second_outstanding = 0
        # check-owner bookkeeping (target side)
        self._check_busy = False
        self._check_cached_finished = False
        self._check_queue: list[int] = []

    # -- first phase, requester side ------------------------------------------------

    def on_wake(self, spontaneous: bool) -> None:
        if not spontaneous:
            return
        self.role = Role.CANDIDATE
        self.stage = "first"
        self.ctx.trace("first_phase")
        # repro: lint-ok[RPL021] the paper's two-phase trick: contact an
        # arbitrary fixed subset of k ports first (numeric = arbitrary)
        for port in range(self.k):
            self.ctx.send(port, FirstPhase(self.ctx.node_id))

    def _first_phase_reply(self, accepted: bool, finished: bool) -> None:
        if self.stage != "first" or self.role is not Role.CANDIDATE:
            return
        self._fp_replies += 1
        self._fp_accepts += int(accepted)
        self._fp_finish = self._fp_finish or finished
        if self._fp_replies == self.k:
            self._exit_first_phase()

    def _exit_first_phase(self) -> None:
        self.first_finished = True
        self.level = self._fp_accepts
        if self._fp_finish:
            # Ordered after an established candidate: killed.
            self.role = Role.STALLED
            self.stage = "conquest"
            self.ctx.trace("killed_by_finish")
            return
        self.stage = "second"
        self.ctx.trace("second_phase", accepts=self._fp_accepts)
        self._second_outstanding = len(self._fp_proceed_ports)
        if self._second_outstanding == 0:
            self._finish_second_phase()
            return
        for port in self._fp_proceed_ports:
            self.ctx.send(port, SeqCapture(self.level, self.ctx.node_id))

    def _finish_second_phase(self) -> None:
        self.stage = "conquest"
        self.level = self.k
        self._next_port = self.k
        self.ctx.trace("conquest", level=self.level)
        self.on_level_reached(self.level)
        if self.role is Role.CANDIDATE and not self.flooding:
            # on_level_reached only claims one port when below threshold;
            # nothing else to do here — conquest is sequential from now on.
            pass

    # -- responses in the second phase -----------------------------------------------

    def _handle_accept(self, port: int) -> None:
        if self.role is not Role.CANDIDATE:
            return
        if self.stage == "second":
            self._second_outstanding -= 1
            if self._second_outstanding == 0:
                self._finish_second_phase()
            return
        super()._handle_accept(port)

    # -- first phase, target side -------------------------------------------------------

    def _handle_first_phase(self, port: int, message: FirstPhase) -> None:
        if self.role is Role.CAPTURED:
            if self._check_cached_finished:
                self.ctx.send(port, FPFinish())
                return
            self._check_queue.append(port)
            if not self._check_busy:
                self._check_busy = True
                assert self.owner_port is not None
                self.ctx.send(self.owner_port, CheckOwner())
            return
        if self.first_finished or self.role is Role.LEADER:
            self.ctx.send(port, FPFinish())
            return
        if self.role is Role.PASSIVE:
            self.install_owner(port, Strength(0, message.cand))
            self.ctx.send(port, FPAccept())
            return
        # A base node still inside its own first phase.
        self.ctx.send(port, FPProceed())

    def _handle_check_reply(self, message: CheckReply) -> None:
        self._check_busy = False
        if message.finished:
            self._check_cached_finished = True
        queued, self._check_queue = self._check_queue, []
        for port in queued:
            self.ctx.send(port, FPFinish() if message.finished else FPProceed())

    # -- capture rules: pre-second-phase nodes count as passive ---------------------------

    def _handle_capture(self, port: int, message: SeqCapture) -> None:
        if (
            self.role is Role.CANDIDATE
            and self.stage in ("idle", "first")
        ):
            # "Nodes which have not started the second phase are regarded
            # as passive by these capture messages."
            incoming = Strength(message.level, message.cand)
            self.role = Role.CAPTURED
            self.install_owner(port, incoming)
            self.ctx.send(port, SeqAccept())
            return
        super()._handle_capture(port, message)

    # -- dispatch ----------------------------------------------------------------------------

    def on_message(self, port: int, message: Message) -> None:
        match message:
            case FirstPhase():
                self._handle_first_phase(port, message)
            case FPAccept():
                self._first_phase_reply(accepted=True, finished=False)
            case FPProceed():
                self._first_phase_reply(accepted=False, finished=False)
            case FPFinish():
                self._first_phase_reply(accepted=False, finished=True)
            case CheckOwner():
                self.ctx.send(port, CheckReply(self.first_finished))
            case CheckReply():
                self._handle_check_reply(message)
            case _:
                super().on_message(port, message)

    def snapshot(self) -> dict[str, Any]:
        base = super().snapshot()
        base.update(stage=self.stage, first_finished=self.first_finished)
        return base


@register
class ProtocolG(ProtocolF):
    """Protocol 𝒢: O(Nk) messages and O(N/k) time, unconditionally."""

    name = "G"
    needs_sense_of_direction = False

    def validate(self, topology: CompleteTopology) -> None:
        super().validate(topology)
        k = self.effective_k(topology.n)
        if k > topology.n - 1:
            raise ConfigurationError(
                f"protocol G asks permission from k neighbours, so it needs "
                f"k <= N-1; got k={k}, N={topology.n}"
            )

    def create_node(self, ctx: NodeContext) -> ProtocolGNode:
        return ProtocolGNode(ctx, self.effective_k(ctx.n))
