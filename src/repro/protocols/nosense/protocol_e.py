"""Protocol ℰ and the AG85 baseline — sequential capture (Section 4).

Setting: asynchronous complete network *without* sense of direction.

**AG85** (Afek & Gafni's protocol A, as summarised in the paper): a base
node captures nodes one untraversed port at a time, contesting on
``(level, id)``.  An uncaptured node grants iff the claim outranks its own
``(level, id)`` (a passive node holds level 0 and its own identity); a
captured node forwards the claim to its owner, who must be killed before
the node changes hands.  A candidate that captures all N-1 nodes is leader.
O(N log N) messages, O(N) time — but a *single capture* can take Θ(N) time,
because a popular captured node may have Θ(N) forwarded claims queued on
its owner link and inter-message delay on one link can be a full time unit.

**ℰ** is AG85 plus flow control at captured nodes: at most one forwarded
claim is outstanding on the owner link at any time.  While one is in
flight, the node buffers only the strongest waiting claim (weaker arrivals
are rejected outright — they lost to a demonstrably stronger live claim);
when the owner's verdict returns, the buffered claim is forwarded to the
(possibly new) owner.  This restores the constant-time-per-capture property
that ℱ's and 𝒢's O(N/k) bounds need (Lemma 4.2).

This module also hosts the shared sequential-capture node that protocols
ℱ and 𝒢 extend.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.core.errors import ConfigurationError
from repro.core.messages import Message
from repro.core.node import NodeContext
from repro.core.protocol import ElectionProtocol, register
from repro.core.strength import Strength
from repro.protocols.capture_base import Challenge, ChallengeVerdict, ContestNode
from repro.protocols.common import Role, leader_strength


@dataclass(frozen=True, slots=True)
class SeqCapture(Message):
    """A sequential capture claim carrying ``(level, id)``."""

    level: int
    cand: int


@dataclass(frozen=True, slots=True)
class SeqAccept(Message):
    """Capture granted: the target now belongs to the claimant."""


@dataclass(frozen=True, slots=True)
class SeqReject(Message):
    """Capture lost its contest; the claimant is killed."""


class SequentialCaptureNode(ContestNode):
    """AG85-style sequential capture, optionally flow controlled.

    Subclasses tune two knobs:

    * :attr:`flow_control` — ℰ's one-outstanding-forward rule;
    * :meth:`on_level_reached` — called whenever the candidate's level
      grows, letting ℱ switch to broadcast at level N/k and letting the
      plain protocols declare at level N-1.
    """

    flow_control = False

    def __init__(self, ctx: NodeContext) -> None:
        super().__init__(ctx)
        self.level = 0
        self._next_port = 0
        # ℰ flow control state: one claim in flight toward the owner, plus
        # at most the single strongest buffered claim.
        self._forward_busy = False
        self._buffered: tuple[int, Strength] | None = None

    # -- strength --------------------------------------------------------------

    def current_strength(self) -> Strength:
        if self.role is Role.LEADER:
            return leader_strength(self.ctx.n, self.ctx.node_id)
        return Strength(self.level, self.ctx.node_id)

    def make_reply(self, kind: str, won: bool) -> Message:
        if kind == "capture":
            return SeqAccept() if won else SeqReject()
        return super().make_reply(kind, won)

    # -- candidate side ----------------------------------------------------------

    def on_wake(self, spontaneous: bool) -> None:
        if not spontaneous:
            return
        self.role = Role.CANDIDATE
        self.start_conquest()

    def start_conquest(self) -> None:
        """Begin (or resume) claiming untraversed ports in index order."""
        self._claim_next_port()

    def _claim_next_port(self) -> None:
        if self.role is not Role.CANDIDATE:
            return
        if self._next_port >= self.ctx.num_ports:
            return  # all ports claimed; on_level_reached decides what's next
        port = self._next_port
        # repro: lint-ok[RPL021] sequential capture order is the algorithm
        self._next_port += 1
        self.ctx.send(port, SeqCapture(self.level, self.ctx.node_id))

    def on_level_reached(self, level: int) -> None:
        """Hook invoked after each successful capture (level just grew).

        The default (plain AG85 / ℰ) declares leader at level N-1 and
        otherwise keeps claiming.
        """
        if level >= self.ctx.n - 1:
            self.role = Role.LEADER
            self.become_leader()
            return
        self._claim_next_port()

    # -- target side -----------------------------------------------------------------

    def _handle_capture(self, port: int, message: SeqCapture) -> None:
        incoming = Strength(message.level, message.cand)
        if self.role in (Role.CANDIDATE, Role.STALLED, Role.LEADER):
            # An uncaptured node contests with its own (level, id).
            # repro: lint-ok[RPL020] (level, id) contest per the paper
            if incoming.outranks(self.current_strength()):
                if self.role is not Role.LEADER:
                    self.role = Role.CAPTURED
                self.install_owner(port, incoming)
                self.ctx.send(port, SeqAccept())
            else:
                self.ctx.send(port, SeqReject())
            return
        if self.role is Role.PASSIVE:
            # A passive, never-captured node grants its first claim: the
            # (level, id) contest is between base nodes' candidacies (and
            # owners), not bystanders — Lemma 4.3 case (a) relies on this.
            self.install_owner(port, incoming)
            self.ctx.send(port, SeqAccept())
            return
        # CAPTURED: the claim must kill the owner first.
        if self.flow_control:
            self._claim_flow_controlled(port, incoming)
        else:
            self.claim(port, incoming, "capture")

    def _claim_flow_controlled(self, port: int, incoming: Strength) -> None:
        if not self._forward_busy:
            self._forward_busy = True
            self._forward(port, incoming, "capture", reply_token=-1)
            return
        if self._buffered is None:
            self._buffered = (port, incoming)
            return
        held_port, held = self._buffered
        # repro: lint-ok[RPL020] (level, id) contest per the paper
        if incoming.outranks(held):
            self._buffered = (port, incoming)
            self.ctx.send(held_port, SeqReject())
        else:
            self.ctx.send(port, SeqReject())

    def handle_verdict(self, port: int, message: ChallengeVerdict) -> None:
        releases_flow = (
            self.flow_control
            and (entry := self._pending.get(message.token)) is not None
            and entry.kind == "capture"
        )
        super().handle_verdict(port, message)
        if releases_flow:
            self._forward_busy = False
            if self._buffered is not None:
                buffered_port, buffered = self._buffered
                self._buffered = None
                self._forward_busy = True
                self._forward(buffered_port, buffered, "capture", reply_token=-1)

    # -- candidate responses ------------------------------------------------------------

    def _handle_accept(self, port: int) -> None:
        if self.role is not Role.CANDIDATE:
            return
        self.level += 1
        self.ctx.trace("level", level=self.level)
        self.on_level_reached(self.level)

    def _handle_reject(self, port: int) -> None:
        if self.role is Role.CANDIDATE:
            self.role = Role.STALLED
            self.ctx.trace("stalled")

    # -- dispatch ----------------------------------------------------------------------

    def on_message(self, port: int, message: Message) -> None:
        match message:
            case SeqCapture():
                self._handle_capture(port, message)
            case SeqAccept():
                self._handle_accept(port)
            case SeqReject():
                self._handle_reject(port)
            case Challenge():
                self.handle_challenge(port, message)
            case ChallengeVerdict():
                self.handle_verdict(port, message)
            case _:
                raise ConfigurationError(
                    f"{type(self).__name__} cannot handle {message.type_name}"
                )

    def snapshot(self) -> dict[str, Any]:
        base = super().snapshot()
        base.update(level=self.level)
        return base


class AfekGafniNode(SequentialCaptureNode):
    """Plain AG85: forwarded claims are not flow controlled."""

    flow_control = False


class ProtocolENode(SequentialCaptureNode):
    """ℰ: one outstanding forwarded claim per owner link."""

    flow_control = True


@register
class AfekGafni(ElectionProtocol):
    """The AG85 baseline: O(N log N) messages, O(N) time."""

    name = "AG85"
    needs_sense_of_direction = False

    def create_node(self, ctx: NodeContext) -> AfekGafniNode:
        return AfekGafniNode(ctx)


@register
class ProtocolE(ElectionProtocol):
    """Protocol ℰ: AG85 with constant-time captures."""

    name = "E"
    needs_sense_of_direction = False

    def create_node(self, ctx: NodeContext) -> ProtocolENode:
        return ProtocolENode(ctx)
