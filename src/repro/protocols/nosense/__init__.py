"""Protocols for complete networks *without* sense of direction (Section 4)."""
