"""Protocol ℱ — ℰ until level N/k, then broadcast (Section 4).

Setting: asynchronous complete network without sense of direction, family
parameter ``k`` with ``log N ≤ k ≤ N``.

A base node runs ℰ's flow-controlled sequential capture until its level
reaches ``N/k``, then switches to Protocol D: it floods an ``elect``
carrying ``(N/k, id)`` on all incident edges.  A node grants the flood iff
its local strongest-known pair ``(level, maxid)`` — its own candidacy if it
is a base node, its owner's strength if captured — compares smaller; a
flooding node granted by all N-1 neighbours is leader.

Costs (paper): since ℰ admits at most ``k`` nodes at level ``N/k``, at most
``k`` nodes flood, giving O(N log N + Nk) = O(Nk) messages; each capture
takes O(1) time so a candidate needs O(N/k) time from its own wake-up
(Lemma 4.1) — but a staggered wake-up chain can still stretch the run to
Θ(N), which is exactly the problem Protocol 𝒢's ordering phases remove.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any

from repro.core.errors import ConfigurationError
from repro.core.messages import Message
from repro.core.node import NodeContext
from repro.core.protocol import ElectionProtocol, register
from repro.core.strength import ZERO_STRENGTH, Strength
from repro.protocols.common import Role
from repro.protocols.nosense.protocol_e import ProtocolENode
from repro.topology.complete import CompleteTopology


@dataclass(frozen=True, slots=True)
class FloodElect(Message):
    """The level-N/k flood, carrying ``(level, id)``."""

    level: int
    cand: int


@dataclass(frozen=True, slots=True)
class FloodAccept(Message):
    """The receiver grants the flood."""


@dataclass(frozen=True, slots=True)
class FloodReject(Message):
    """The receiver knows a strictly stronger pair (paper: no response)."""


def flood_threshold(n: int, k: int) -> int:
    """The level ``⌈N/k⌉`` at which ℱ switches from capture to flood."""
    return min(n - 1, max(1, math.ceil(n / k)))


class ProtocolFNode(ProtocolENode):
    """One node running ℱ: ℰ conquest with a broadcast finish."""

    def __init__(self, ctx: NodeContext, k: int) -> None:
        super().__init__(ctx)
        self.k = k
        self.threshold = flood_threshold(ctx.n, k)
        self.flooding = False
        self._flood_outstanding = 0

    # -- switching to the flood -------------------------------------------------

    def on_level_reached(self, level: int) -> None:
        if level >= self.threshold:
            self._start_flood()
            return
        self._claim_next_port()

    def _start_flood(self) -> None:
        if self.flooding or self.role is not Role.CANDIDATE:
            return
        self.flooding = True
        self.ctx.trace("flood", level=self.level)
        self._flood_outstanding = self.ctx.num_ports
        for port in range(self.ctx.num_ports):
            self.ctx.send(port, FloodElect(self.level, self.ctx.node_id))

    # -- flood handling ------------------------------------------------------------

    def _local_strongest(self) -> Strength:
        """The ``(level, maxid)`` pair this node holds against floods."""
        if self.role in (Role.CANDIDATE, Role.STALLED, Role.LEADER):
            return self.current_strength()
        if self.owner_strength is not None:
            return self.owner_strength
        return ZERO_STRENGTH

    def _handle_flood(self, port: int, message: FloodElect) -> None:
        incoming = Strength(message.level, message.cand)
        # repro: lint-ok[RPL020] (level, id) contest per the paper
        if incoming.outranks(self._local_strongest()):
            if self.role is Role.CANDIDATE:
                self.role = Role.STALLED  # the paper's "changes status to killed"
                self.ctx.trace("stalled")
            elif self.role in (Role.PASSIVE, Role.CAPTURED):
                self.install_owner(port, incoming)
            self.ctx.send(port, FloodAccept())
        else:
            self.ctx.send(port, FloodReject())

    def _handle_flood_accept(self) -> None:
        if self.role is not Role.CANDIDATE or not self.flooding:
            return
        self._flood_outstanding -= 1
        if self._flood_outstanding == 0:
            self.role = Role.LEADER
            self.become_leader()

    def _handle_flood_reject(self) -> None:
        """Someone out there holds a stronger pair: this flood is dead."""
        if self.role is Role.CANDIDATE:
            self.role = Role.STALLED
            self.ctx.trace("stalled")

    def on_message(self, port: int, message: Message) -> None:
        match message:
            case FloodElect():
                self._handle_flood(port, message)
            case FloodAccept():
                self._handle_flood_accept()
            case FloodReject():
                self._handle_flood_reject()
            case _:
                super().on_message(port, message)

    def snapshot(self) -> dict[str, Any]:
        base = super().snapshot()
        base.update(flooding=self.flooding, threshold=self.threshold)
        return base


@register
class ProtocolF(ElectionProtocol):
    """Protocol ℱ: O(Nk) messages; O(N/k) time given clustered wake-ups."""

    name = "F"
    needs_sense_of_direction = False

    def __init__(self, k: int | None = None) -> None:
        self.k = k

    def effective_k(self, n: int) -> int:
        """Default to the message-optimal end of the family, k = ⌈log₂ N⌉."""
        if self.k is not None:
            return self.k
        return max(1, math.ceil(math.log2(max(2, n))))

    def validate(self, topology: CompleteTopology) -> None:
        super().validate(topology)
        k = self.effective_k(topology.n)
        if not 1 <= k <= topology.n:
            raise ConfigurationError(
                f"protocol {self.name} needs 1 <= k <= N, got k={k}"
            )

    def create_node(self, ctx: NodeContext) -> ProtocolFNode:
        return ProtocolFNode(ctx, self.effective_k(ctx.n))

    def describe(self) -> str:
        return f"{self.name}(k={self.k if self.k is not None else 'logN'})"
