"""Fault-tolerant election under initial site failures (Section 4).

The paper closes Section 4 by noting that the BKWZ87 technique extends the
protocol to tolerate ``f < N/2`` *initial site failures* — nodes dead from
the start, which never respond — at a cost of O(Nf + N log N) messages and
O(N/log N) time.

BKWZ87 itself is a different paper; DESIGN.md §4 records the substitution
we make.  The implementation here keeps the paper's two load-bearing ideas:

* **Redundancy window.**  In an asynchronous system without timeouts a
  candidate cannot distinguish a dead neighbour from a slow one, so
  sequential capture could block forever on a corpse.  The candidate
  instead keeps a window of ``f + ⌈log N⌉`` claims outstanding on fresh
  ports; at most ``f`` of them can be black holes, so the window always
  contains a live claim and progress per unit time matches the parallelism
  — the source of the sub-linear time.  Each candidate addresses each port
  at most once, so dead nodes cost at most ``f`` wasted claims per
  candidate: the O(Nf) term.

* **Majority termination.**  Waiting for *all* grants is impossible (dead
  nodes never grant), so a candidate declares once it has captured
  ``⌊N/2⌋`` others — its set, including itself, is then a strict majority.
  Two majorities intersect at some node, and changing a node's owner
  requires killing the previous owner, so two candidates can never both
  complete: the second must first defeat the (by then unbeatable) first.
  Liveness needs ``N - 1 - f ≥ ⌊N/2⌋`` live peers, i.e. ``f < N/2``.

Capture, contest and kill-the-owner rules are exactly ℰ's (with flow
control), so the message potential stays O(N log N) plus the dead-claim
term.
"""

from __future__ import annotations

import math
from typing import Any

from repro.core.errors import ConfigurationError
from repro.core.node import NodeContext
from repro.core.protocol import ElectionProtocol, register
from repro.protocols.common import Role
from repro.protocols.nosense.protocol_e import SeqCapture, SequentialCaptureNode
from repro.topology.complete import CompleteTopology


class FaultTolerantNode(SequentialCaptureNode):
    """ℰ-style capture with a redundancy window and majority termination."""

    flow_control = True

    def __init__(
        self, ctx: NodeContext, max_failures: int, parallelism: int | None = None
    ) -> None:
        super().__init__(ctx)
        self.max_failures = max_failures
        if parallelism is None:
            parallelism = max(1, math.ceil(math.log2(ctx.n)))
        self.window = min(ctx.num_ports, max_failures + max(1, parallelism))
        self.majority = ctx.n // 2  # others to capture; with self that is > N/2
        self._outstanding = 0
        # port -> level the in-flight claim was sent at.
        self._in_flight: dict[int, int] = {}
        # Refused ports with the level their claim was *sent* at; a retry is
        # worthwhile only once the level has grown past that mark (an
        # identical retry would be refused verbatim).
        self._retry_ports: list[tuple[int, int]] = []

    def start_conquest(self) -> None:
        self._refill_window()

    def _pop_claimable_port(self) -> int | None:
        """Next port worth claiming: an eligible retry, else a fresh port."""
        for index, (port, sent_at) in enumerate(self._retry_ports):
            if self.level > sent_at:
                del self._retry_ports[index]
                return port
        if self._next_port < self.ctx.num_ports:
            port = self._next_port
            # repro: lint-ok[RPL021] sequential capture order is the
            # algorithm (any fixed order works; numeric is canonical)
            self._next_port += 1
            return port
        return None

    def _refill_window(self) -> None:
        while self.role is Role.CANDIDATE and self._outstanding < self.window:
            port = self._pop_claimable_port()
            if port is None:
                break
            self._outstanding += 1
            self._in_flight[port] = self.level
            self.ctx.send(port, SeqCapture(self.level, self.ctx.node_id))

    def on_level_reached(self, level: int) -> None:
        if level >= self.majority:
            self.role = Role.LEADER
            self.become_leader()
            return
        self._refill_window()

    def _handle_accept(self, port: int) -> None:
        self._outstanding -= 1
        self._in_flight.pop(port, None)
        super()._handle_accept(port)

    def _handle_reject(self, port: int) -> None:
        """A refused claim is retried later instead of killing the candidate.

        With several claims in flight, a refusal may merely mean the claim's
        ``(level, id)`` pair was stale by the time it arrived — unlike
        sequential ℰ, where the pair is always current and a refusal is
        fatal.  Defeats still happen through the owner-challenge path (a
        lost challenge stalls the candidate as usual); that keeps the
        "maximal candidate always progresses" liveness argument intact
        under parallelism.

        A refusal of a claim sent at the *current* level is a different
        matter: the refuser demonstrably holds a pair beating this
        candidate's live pair.  When the window has starved down to at most
        ``f`` claims (all possibly dead), no fresh ports remain, and every
        refused port's claim was sent at the current level, the candidate
        is genuinely beaten everywhere it still needs to go and stalls.
        The maximal pair in the network is never refused at its current
        level, so this rule cannot kill the eventual winner.
        """
        sent_at = self._in_flight.pop(port, self.level)
        self._outstanding -= 1
        if self.role is not Role.CANDIDATE:
            return
        self._retry_ports.append((port, sent_at))
        self._refill_window()
        starved = (
            self._outstanding <= self.max_failures
            and self._next_port >= self.ctx.num_ports
            and all(sent >= self.level for _, sent in self._retry_ports)
        )
        if starved:
            self.role = Role.STALLED
            self.ctx.trace("stalled")

    def snapshot(self) -> dict[str, Any]:
        base = super().snapshot()
        base.update(window=self.window)
        return base


@register
class FaultTolerantElection(ElectionProtocol):
    """Election tolerating up to f initial site failures, f < N/2."""

    name = "FT"
    needs_sense_of_direction = False

    def __init__(
        self, max_failures: int = 0, *, parallelism: int | None = None
    ) -> None:
        """``parallelism`` is the window headroom beyond ``f`` (default
        ⌈log₂ N⌉ — the term that keeps time sub-linear; 1 is the minimum
        that still guarantees progress, at Θ(N) time)."""
        if max_failures < 0:
            raise ConfigurationError(
                f"max_failures must be non-negative, got {max_failures}"
            )
        if parallelism is not None and parallelism < 1:
            raise ConfigurationError(
                f"parallelism must be >= 1, got {parallelism}"
            )
        self.max_failures = max_failures
        self.parallelism = parallelism

    def validate(self, topology: CompleteTopology) -> None:
        super().validate(topology)
        if self.max_failures >= topology.n / 2:
            raise ConfigurationError(
                f"fault tolerance requires f < N/2; got f={self.max_failures}, "
                f"N={topology.n}"
            )

    def create_node(self, ctx: NodeContext) -> FaultTolerantNode:
        return FaultTolerantNode(ctx, self.max_failures, self.parallelism)

    def describe(self) -> str:
        return f"FT(f={self.max_failures})"
