"""Protocol R — the base-node-sensitive refinement sketched via [Si92].

The paper closes Section 4 with: *"By using the capturing pattern of the
synchronous protocol in [AG85], we have obtained a message optimal protocol
which requires O(logN + min(r, N/logN))"*, where ``r`` is the number of
base nodes.  The construction itself lives in the cited technical report,
which this reproduction does not have; DESIGN.md §4 records this module as
a **reconstruction** built from the sentence's two ingredients:

* 𝒢's two ordering phases with ``k = ⌈log₂ N⌉`` (message-optimal end of
  the family, flood threshold ``N/k ≈ N/log N``), and
* the AG85 *synchronous capturing pattern*: instead of claiming one port at
  a time, a surviving candidate claims a **geometrically growing wave** of
  fresh ports — wave ``w`` has ``2^w``-ish width (implemented as
  ``window = max(1, level)``).

Why this yields the claimed shape: a lone base node (``r = 1``) doubles its
territory every constant time, reaching the flood threshold in O(log N)
waves; with many base nodes, contests must still burn through the
candidates between a claim and its grant, reproducing the ``min(r,
N/log N)`` term; and the flood threshold caps everything at O(N/log N).
Messages stay O(N log N): waves only widen with *granted* levels, so the
total claim volume telescopes, and refusals are retried at most once per
level (the ℱ𝒯-style retry rule below).

Wave claims can be *stale* (sent before the latest grants landed), so —
exactly as in the fault-tolerant variant — a refusal is not instantly
fatal: the port is retried once the level has grown, and a candidate is
defeated when a whole wave is refused at its current level (plus, as
always, when it loses an owner challenge).  Experiment E9 benchmarks R
against 𝒢 across ``r``.
"""

from __future__ import annotations

import math
from typing import Any

from repro.core.node import NodeContext
from repro.core.protocol import register
from repro.protocols.common import Role
from repro.protocols.nosense.protocol_e import SeqCapture
from repro.protocols.nosense.protocol_g import ProtocolG, ProtocolGNode


class ProtocolRNode(ProtocolGNode):
    """𝒢's phases with a geometric-wave conquest."""

    def __init__(self, ctx: NodeContext, k: int) -> None:
        super().__init__(ctx, k)
        self._outstanding = 0
        self._in_flight: dict[int, int] = {}  # port -> level at send
        self._retry_ports: list[tuple[int, int]] = []  # (port, sent level)

    # -- wave machinery -------------------------------------------------------

    def _wave_width(self) -> int:
        """The AG85 doubling pattern: claim as many ports as you hold."""
        return max(1, min(self.level, self.threshold))

    def _pop_claimable_port(self) -> int | None:
        for index, (port, sent_at) in enumerate(self._retry_ports):
            if self.level > sent_at:
                del self._retry_ports[index]
                return port
        if self._next_port < self.ctx.num_ports:
            port = self._next_port
            # repro: lint-ok[RPL021] sequential capture order is the
            # algorithm (any fixed order works; numeric is canonical)
            self._next_port += 1
            return port
        return None

    def _refill_wave(self) -> None:
        while (
            self.role is Role.CANDIDATE
            and not self.flooding
            and self._outstanding < self._wave_width()
        ):
            port = self._pop_claimable_port()
            if port is None:
                break
            self._outstanding += 1
            self._in_flight[port] = self.level
            self.ctx.send(port, SeqCapture(self.level, self.ctx.node_id))

    # -- overrides of the sequential conquest ------------------------------------

    def _claim_next_port(self) -> None:
        # Called by on_level_reached below the flood threshold: grow the
        # wave instead of probing a single port.
        self._refill_wave()

    def _handle_accept(self, port: int) -> None:
        if self.role is not Role.CANDIDATE:
            return
        if self.stage == "second":
            super()._handle_accept(port)
            return
        self._outstanding -= 1
        self._in_flight.pop(port, None)
        if self.flooding:
            # The level is frozen once the flood is out: all flooders must
            # compare at exactly (threshold, id), as in sequential ℱ —
            # otherwise a late wave grant would let a *beaten* candidate
            # out-rank every live flood and veto the election.
            return
        self.level += 1
        self.ctx.trace("level", level=self.level)
        self.on_level_reached(self.level)

    def _handle_reject(self, port: int) -> None:
        """Wave claims may be stale; retry at a higher level (see the
        fault-tolerant variant for the full liveness argument).  A whole
        wave refused at the current level is a genuine defeat."""
        if self.stage == "second" or self.role is not Role.CANDIDATE:
            super()._handle_reject(port)
            return
        sent_at = self._in_flight.pop(port, self.level)
        self._outstanding -= 1
        if self.flooding:
            return  # the flood's verdict decides now; stale wave noise
        self._retry_ports.append((port, sent_at))
        self._refill_wave()
        starved = (
            self._outstanding == 0
            and self._next_port >= self.ctx.num_ports
            and all(sent >= self.level for _, sent in self._retry_ports)
        )
        if starved:
            self.role = Role.STALLED
            self.ctx.trace("stalled")

    def snapshot(self) -> dict[str, Any]:
        base = super().snapshot()
        base.update(wave_width=self._wave_width())
        return base


@register
class ProtocolR(ProtocolG):
    """Protocol R (reconstructed): message optimal,
    O(log N + min(r, N/log N)) time."""

    name = "R"
    needs_sense_of_direction = False

    def effective_k(self, n: int) -> int:
        # Pinned to the message-optimal end of the family; an explicit k is
        # still honoured for experiments.
        if self.k is not None:
            return self.k
        return max(1, min(n - 1, math.ceil(math.log2(max(2, n)))))

    def create_node(self, ctx: NodeContext) -> ProtocolRNode:
        return ProtocolRNode(ctx, self.effective_k(ctx.n))
