"""Protocol D — parallel broadcast election (Section 4).

Setting: asynchronous complete network *without* sense of direction.

On waking spontaneously, a base node sends its identity in an ``elect``
message on **all** incident edges.  A base node that receives an elect from
a smaller identity simply does not grant it; every other node grants.  A
node granted by all N-1 neighbours declares itself leader.

Costs (paper): O(1) time — one round trip — but O(N²) messages, since up to
N base nodes each broadcast N-1 messages.  D is the "all time, no message
thrift" endpoint of the family; protocol ℱ uses it as the closing move once
ℰ has whittled the candidates down to O(k).

Deviation noted in DESIGN.md §4: where the paper's loser receives no
response, we send an explicit rejection so the simulator can observe the
kill and drain cleanly; the O(N²) bound is unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.core.errors import ConfigurationError
from repro.core.messages import Message
from repro.core.node import Node, NodeContext
from repro.core.protocol import ElectionProtocol, register
from repro.protocols.common import Role


@dataclass(frozen=True, slots=True)
class BroadcastElect(Message):
    """A base node's identity, flooded on every incident edge."""

    cand: int


@dataclass(frozen=True, slots=True)
class BroadcastAccept(Message):
    """The receiver grants the broadcaster."""


@dataclass(frozen=True, slots=True)
class BroadcastReject(Message):
    """The receiver is a base node with a larger identity."""


class ProtocolDNode(Node):
    """One node running Protocol D."""

    def __init__(self, ctx: NodeContext) -> None:
        super().__init__(ctx)
        self.role = Role.PASSIVE
        self._accepts_outstanding = 0

    def on_wake(self, spontaneous: bool) -> None:
        if not spontaneous:
            return
        self.role = Role.CANDIDATE
        self._accepts_outstanding = self.ctx.num_ports
        for port in range(self.ctx.num_ports):
            self.ctx.send(port, BroadcastElect(self.ctx.node_id))

    def on_message(self, port: int, message: Message) -> None:
        match message:
            case BroadcastElect():
                # repro: lint-ok[RPL020] extinction by id order is the
                # whole of protocol D
                if self.role is Role.CANDIDATE and self.ctx.node_id > message.cand:
                    self.ctx.send(port, BroadcastReject())
                else:
                    self.ctx.send(port, BroadcastAccept())
            case BroadcastAccept():
                if self.role is not Role.CANDIDATE:
                    return
                self._accepts_outstanding -= 1
                if self._accepts_outstanding == 0:
                    self.role = Role.LEADER
                    self.become_leader()
            case BroadcastReject():
                if self.role is Role.CANDIDATE:
                    self.role = Role.STALLED
            case _:
                raise ConfigurationError(
                    f"protocol D cannot handle {message.type_name}"
                )

    def snapshot(self) -> dict[str, Any]:
        base = super().snapshot()
        base.update(role=self.role.value)
        return base


@register
class ProtocolD(ElectionProtocol):
    """Protocol D: O(1) time, O(N²) messages."""

    name = "D"
    needs_sense_of_direction = False

    def create_node(self, ctx: NodeContext) -> ProtocolDNode:
        return ProtocolDNode(ctx)
