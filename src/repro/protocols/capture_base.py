"""Kill-the-owner contest machinery shared by the capture protocols.

The paper resolves ownership conflicts the same way in Protocol C's second
phase, in ℰ/ℱ/𝒢 and (implicitly — see DESIGN.md §4) in A's second phase:
when a claim reaches a node that is already owned, the node *forwards* the
challenge to its current owner, the owner compares strengths, and the loser
is killed; the verdict travels back and the node switches owners iff the
challenger won.  Forwarded challenges can hop again when the recorded owner
has itself been captured ("each message can be forwarded at most twice" in
the paper's setting; hops strictly increase in strength so the chain always
terminates).

:class:`ContestNode` packages that state machine:

* owner bookkeeping (``owner_port``/``owner_strength``),
* tokenised pending-challenge tracking, so verdicts returning out of order
  from *different* owners are matched to the right challenger, and
* verdict relay for multi-hop chains.

Protocol subclasses supply how a live candidate resolves a challenge
(:meth:`resolve_challenge`) and what reply the original claimant receives
(:meth:`make_reply`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.core.errors import ProtocolViolation
from repro.core.messages import Message
from repro.core.node import Node, NodeContext
from repro.core.strength import Strength
from repro.protocols.common import Role


@dataclass(frozen=True, slots=True)
class Challenge(Message):
    """A claim forwarded to the current owner for adjudication.

    ``hops`` counts forwarding steps — the paper argues it stays ≤ 2 in
    Protocol C's structure ("each message can be forwarded at most twice");
    the trace event ``challenge_hops`` lets tests verify that empirically.
    """

    rank: int
    cand: int
    token: int
    hops: int = 1


@dataclass(frozen=True, slots=True)
class ChallengeVerdict(Message):
    """The owner's ruling on a forwarded :class:`Challenge`."""

    token: int
    won: bool


@dataclass(frozen=True, slots=True)
class _Pending:
    """One outstanding forwarded challenge at this node."""

    reply_port: int
    kind: str  # protocol reply kind, or "relay" for mid-chain hops
    strength: Strength
    reply_token: int  # token to echo when kind == "relay"


class ContestNode(Node):
    """A node that can be owned, challenged, and switch owners."""

    def __init__(self, ctx: NodeContext) -> None:
        super().__init__(ctx)
        self.role = Role.PASSIVE
        self.owner_port: int | None = None
        self.owner_strength: Strength | None = None
        self._pending: dict[int, _Pending] = {}
        self._next_token = 0

    # -- protocol hooks -------------------------------------------------------

    def current_strength(self) -> Strength:
        """This node's strength in contests (override in candidates)."""
        raise NotImplementedError

    def resolve_challenge(self, challenger: Strength) -> bool:
        """Adjudicate a challenge against this (candidate) node.

        Returns True when the challenger wins; a losing incumbent must
        transition itself to :attr:`Role.STALLED` here.
        """
        # repro: lint-ok[RPL020] the paper's contest rule: strengths are
        # ordered lexicographically by (level, id), so capture protocols
        # are inherently id-comparing and never prune-safe
        if challenger.outranks(self.current_strength()):
            if self.role is Role.CANDIDATE:
                self.role = Role.STALLED
                self.on_stalled()
            return True
        return False

    def on_stalled(self) -> None:
        """Hook: a candidate just lost a contest (default: nothing extra)."""

    def make_reply(self, kind: str, won: bool) -> Message:
        """Build the protocol-level reply for the original claimant."""
        raise NotImplementedError(f"no reply defined for kind {kind!r}")

    def on_owner_installed(self, port: int, strength: Strength) -> None:
        """Hook: this node just switched to a new owner."""

    # -- claims at owned nodes -------------------------------------------------

    def install_owner(self, port: int, strength: Strength) -> None:
        """Record ``strength`` (reachable via ``port``) as the new owner."""
        self.owner_port = port
        self.owner_strength = strength
        if self.role is Role.PASSIVE:
            self.role = Role.CAPTURED
        self.on_owner_installed(port, strength)

    def claim(self, port: int, strength: Strength, kind: str) -> None:
        """Process an ownership claim arriving on ``port``.

        If unowned, the claim succeeds immediately; otherwise it is
        forwarded to the current owner and answered when the verdict
        returns.  ``kind`` selects the reply message via :meth:`make_reply`.
        """
        if self.owner_strength is None:
            self.install_owner(port, strength)
            self.ctx.send(port, self.make_reply(kind, True))
            return
        self._forward(port, strength, kind, reply_token=-1)

    def _forward(
        self,
        reply_port: int,
        strength: Strength,
        kind: str,
        reply_token: int,
        hops: int = 1,
    ) -> None:
        if self.owner_port is None:  # pragma: no cover - defensive
            raise ProtocolViolation(
                f"node {self.ctx.node_id} has owner strength but no owner port"
            )
        token = self._next_token
        self._next_token += 1
        self._pending[token] = _Pending(reply_port, kind, strength, reply_token)
        self.ctx.trace("challenge_hops", hops=hops)
        self.ctx.send(
            self.owner_port,
            Challenge(strength.rank, strength.node_id, token, hops),
        )

    # -- message handlers (call from on_message) --------------------------------

    def handle_challenge(self, port: int, message: Challenge) -> None:
        """A forwarded claim reached this node: adjudicate or relay."""
        challenger = Strength(message.rank, message.cand)
        if message.cand == self.ctx.node_id:
            # An ownership chain led a claim back to its own issuer (the
            # claimed node's stale owner was captured by the claimant).
            # There is nobody left to defeat: the claim stands.
            self.ctx.send(port, ChallengeVerdict(message.token, True))
            return
        if self.role in (Role.CANDIDATE, Role.STALLED, Role.LEADER):
            won = self.resolve_challenge(challenger)
            self.ctx.send(port, ChallengeVerdict(message.token, won))
            return
        if self.owner_strength is not None:
            # The recorded owner was itself captured; hop once more.
            self._forward(
                port, challenger, "relay",
                reply_token=message.token, hops=message.hops + 1,
            )
            return
        # Nothing here to defeat: the claim stands.
        self.ctx.send(port, ChallengeVerdict(message.token, True))

    def handle_verdict(self, port: int, message: ChallengeVerdict) -> None:
        """A verdict returned for a challenge this node forwarded."""
        entry = self._pending.pop(message.token, None)
        if entry is None:  # pragma: no cover - defensive
            raise ProtocolViolation(
                f"node {self.ctx.node_id} got a verdict for unknown token "
                f"{message.token}"
            )
        if entry.kind == "relay":
            self.ctx.send(
                entry.reply_port, ChallengeVerdict(entry.reply_token, message.won)
            )
            return
        if message.won:
            self.install_owner(entry.reply_port, entry.strength)
        self.ctx.send(entry.reply_port, self.make_reply(entry.kind, message.won))

    # -- snapshots ---------------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        base = super().snapshot()
        base.update(
            role=self.role.value,
            owner_strength=self.owner_strength,
        )
        return base
