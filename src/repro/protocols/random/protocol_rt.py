"""Protocol RT — wave-doubling randomized sampling (arXiv 2301.08235).

Same setting, rank space, referee sample and claim rule as RS — the
safety argument is shared verbatim — but the probes are paced in
geometrically growing waves, the message/time tradeoff move of Kutten,
Robinson, Tan and Zhu: a candidate first shows its rank to ``⌈ln N⌉``
referees, then to twice as many, doubling until the cumulative sample
reaches ``s = ⌈√(3·N·ln N)⌉``, and waits for the wave's acks before
spending the next wave.  A candidate that learns of a better rank in an
early wave stalls having paid only O(log N) messages instead of O(√N·
log^{1/2} N), so the *expected* message total drops while the time cost
rises from two round trips to O(log N) of them — a different point on
the same w.h.p. tradeoff curve, which E13 plots against RS and the
deterministic baseline.

The claim phase is unchanged (all ``s`` referees, unanimous grants), so
the w.h.p. safety bound is identical to RS's.
"""

from __future__ import annotations

from typing import Any

from repro.core.node import NodeContext
from repro.core.protocol import ElectionProtocol, register
from repro.protocols.random.common import SamplingNode, initial_wave_size


class ProtocolRTNode(SamplingNode):
    """One node running RT: the sample probed in doubling waves."""

    def __init__(self, ctx: NodeContext) -> None:
        super().__init__(ctx)
        self._probed = 0  # prefix of ``self.sample`` already probed

    def _next_wave(self) -> None:
        remaining = len(self.sample) - self._probed
        # Wave sizes double against the probed prefix, floored at the
        # initial wave size: w0, then w0, 2·w0, 4·w0, ...
        wave = min(remaining, max(initial_wave_size(self.ctx.n), self._probed))
        chunk = self.sample[self._probed : self._probed + wave]
        self._probed += len(chunk)
        self.send_probes(chunk)

    def start_probing(self) -> None:
        self._next_wave()

    def on_probes_clean(self) -> None:
        if self._probed < len(self.sample):
            self._next_wave()
        else:
            self.claim_leadership()

    def snapshot(self) -> dict[str, Any]:
        base = super().snapshot()
        base.update(probed=self._probed)
        return base


@register
class RandomizedTradeoff(ElectionProtocol):
    """Protocol RT: fewer expected messages than RS, O(log N) time."""

    name = "RT"
    needs_sense_of_direction = False

    def create_node(self, ctx: NodeContext) -> ProtocolRTNode:
        return ProtocolRTNode(ctx)
