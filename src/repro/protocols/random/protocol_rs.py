"""Protocol RS — one-shot randomized candidate sampling (arXiv 1210.4822).

Setting: asynchronous complete network, no sense of direction, coins
from the per-node ``ctx.rng()`` streams.

A woken node flips for candidacy (probability ``3·ln N / N``); a
candidate draws a rank and probes all ``s = ⌈√(3·N·ln N)⌉`` of its
sampled referees *at once*.  If every ack reports the candidate's rank
as the best its referee has seen, the candidate claims at the same
referees; ``s`` unanimous grants elect it.  One referee refusal or one
"better rank exists" ack stalls the candidate permanently.

Costs, with high probability: O(√N · log^{3/2} N) messages — Θ(log N)
candidates times 4s+O(1) request/replies — and O(1) time (two round
trips: probe+ack, claim+grant).  This is the family's "all speed" point;
protocol RT spends more round trips to let beaten candidates quit
before paying the full sample.

Safety and liveness are w.h.p., not certain (see
:mod:`repro.protocols.random.common` for the failure modes); the
statistical checker ``verify --stat`` puts confidence bounds on both.
"""

from __future__ import annotations

from repro.core.node import NodeContext
from repro.core.protocol import ElectionProtocol, register
from repro.protocols.random.common import SamplingNode


class ProtocolRSNode(SamplingNode):
    """One node running RS: the whole sample probed in a single burst."""

    def start_probing(self) -> None:
        self.send_probes(self.sample)

    def on_probes_clean(self) -> None:
        self.claim_leadership()


@register
class RandomizedSampling(ElectionProtocol):
    """Protocol RS: O(√N log^{3/2} N) messages w.h.p., O(1) time."""

    name = "RS"
    needs_sense_of_direction = False

    def create_node(self, ctx: NodeContext) -> ProtocolRSNode:
        return ProtocolRSNode(ctx)
