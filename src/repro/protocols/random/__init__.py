"""The randomized (coin-flipping) election family.

Everything before this package is deterministic: the paper's A–𝒢
protocols and the baselines pay Ω(N log N) messages, the lower bound for
deterministic election in a complete network.  Randomization breaks that
bound: Kutten, Pandurangan, Peleg, Robinson and Trehan (arXiv 1210.4822)
elect with O(√N log^{3/2} N) messages *with high probability* by
thinning candidates with coin flips and letting each survivor talk to a
random √N-sized sample of "referees" instead of to everyone; Kutten,
Robinson, Tan and Zhu (arXiv 2301.08235) trade more rounds for fewer
expected messages along the same sampling skeleton.

* :mod:`repro.protocols.random.common` — the referee role, the shared
  probe/claim message vocabulary, and the sampling math;
* :mod:`repro.protocols.random.protocol_rs` — ``RS``, the one-shot
  candidate-sampling protocol (1210.4822);
* :mod:`repro.protocols.random.protocol_rt` — ``RT``, the wave-doubling
  tradeoff point (2301.08235): same safety argument, probes spread over
  geometrically growing waves so beaten candidates stop early.

All coins come from ``ctx.rng()`` — per-node streams derived from
``(run_seed, node_id)`` (:mod:`repro.sim.rng`), never from module-level
entropy — so every run is byte-replayable and the flow analyzer records
the family as ``uses_ctx_rng`` rather than refusing it outright.
Correctness here is *probabilistic*: safety and election each hold with
high probability, not always, which is why these protocols are checked
by ``python -m repro verify --stat`` (:mod:`repro.verification.stat`)
instead of exhaustive exploration.
"""

from repro.protocols.random.protocol_rs import RandomizedSampling
from repro.protocols.random.protocol_rt import RandomizedTradeoff

__all__ = ["RandomizedSampling", "RandomizedTradeoff"]
