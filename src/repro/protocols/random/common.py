"""Shared machinery of the randomized sampling protocols (RS, RT).

Both protocols follow the same three-move skeleton from arXiv 1210.4822:

1. **Candidacy coin.**  Each spontaneously-woken node becomes a candidate
   with probability Θ(log N / N), so about Θ(log N) candidates exist and
   at least one does with probability 1 − N^{-Θ(1)}.
2. **Probe.**  Each candidate draws a random *rank* ``(coin, id)`` and
   asks a uniform sample of ``s = ⌈√(3·N·ln N)⌉`` referees whether any
   higher rank has been seen.  Any two samples of that size share a
   referee with probability ≥ 1 − N^{-3} (birthday bound), which is what
   couples candidates to each other without all-to-all traffic.
3. **Claim.**  A candidate whose probes all came back clean claims
   leadership at the same referees.  A referee grants **at most one
   claim, ever**, and only to the best rank it has seen.  Election
   therefore needs every one of the candidate's ``s`` grants; since any
   two candidates share a referee w.h.p. and a shared referee grants at
   most one of them, two leaders require two *disjoint* samples — a
   probability-N^{-Θ(1)} event.  That is the whole safety argument, and
   it is statistical: ``verify --stat`` measures it with Clopper–Pearson
   bounds rather than proving it per-run.

Liveness is also w.h.p. only: all candidacy coins can come up tails, or
every claimant can be rejected by a referee whose single grant went to a
candidate that later stalled elsewhere.  Such runs quiesce without a
leader (every message is a request with exactly one reply, so the
network always drains); the statistical checker reports the election
rate separately from safety.

The messages here carry at most two integer fields, each < N² (coins are
drawn from ``range(N²)``, identities are < N), so the O(log N)-bit audit
admits them at two words.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any

from repro.core.errors import ConfigurationError
from repro.core.messages import Message
from repro.core.node import Node, NodeContext
from repro.protocols.common import Role

# ---------------------------------------------------------------------------
# sampling math


def candidacy_probability(n: int) -> float:
    """P(a woken node runs): ``min(1, 3·ln N / N)``.

    Expected candidates ≈ 3·ln N; zero candidates (a liveness miss) has
    probability ≤ N^{-3} when all N nodes wake.
    """
    return min(1.0, 3.0 * math.log(n) / n)


def referee_sample_size(n: int) -> int:
    """Sample size ``s = ⌈√(3·N·ln N)⌉`` (capped at the port count).

    Two independent samples of this size from N nodes are disjoint with
    probability ≤ (1 − s/N)^s ≤ e^{−s²/N} = N^{-3}.
    """
    return min(n - 1, math.ceil(math.sqrt(3.0 * n * math.log(n))))


def initial_wave_size(n: int) -> int:
    """RT's first-wave probe chunk: ``⌈ln N⌉`` (at least 1)."""
    return max(1, math.ceil(math.log(n)))


def whp_message_bound(n: int) -> int:
    """A message-count ceiling both protocols respect w.h.p.

    Candidates number ≤ 9·ln N except with probability ≤ N^{-4}
    (Chernoff at three times the mean), and each candidate causes at
    most ``4·s + 4`` messages (probe + ack + claim + grant/reject, one
    reply per request).  The statistical checker tests this bound per
    trial; it is sublinear in N — Θ(√N · log^{3/2} N) — which is the
    measurable claim E13 plots against the deterministic N log N family.
    """
    candidates = math.ceil(9.0 * math.log(max(n, 2)))
    return candidates * (4 * referee_sample_size(n) + 4)


def draw_rank(stream: Any, n: int, node_id: int) -> tuple[int, int]:
    """A candidate's random rank: ``(coin, id)``, compared lexically.

    The coin comes from ``range(N²)`` so it fits one O(log N) word of
    the bit audit; the identity breaks coin ties, so ranks are unique.
    """
    return (stream.randrange(n * n), node_id)


def sample_ports(stream: Any, num_ports: int, count: int) -> tuple[int, ...]:
    """``count`` distinct ports, uniform without replacement.

    An explicit partial Fisher–Yates over ``randrange`` draws rather
    than ``Random.sample``: sample() switches algorithms on the
    count/population ratio, and pinned cross-version fixture digests
    should not hinge on that implementation detail.
    """
    pool = list(range(num_ports))
    for i in range(count):
        j = stream.randrange(i, num_ports)
        pool[i], pool[j] = pool[j], pool[i]
    return tuple(pool[:count])


# ---------------------------------------------------------------------------
# message vocabulary (shared by RS and RT)


@dataclass(frozen=True, slots=True)
class SampleProbe(Message):
    """A candidate's rank, shown to one sampled referee."""

    coin: int
    cand: int


@dataclass(frozen=True, slots=True)
class SampleAck(Message):
    """Referee's probe answer: is the prober the best rank I have seen?"""

    ok: bool


@dataclass(frozen=True, slots=True)
class SampleClaim(Message):
    """A fully-acked candidate asks its referees for the leadership grant."""

    coin: int
    cand: int


@dataclass(frozen=True, slots=True)
class SampleGrant(Message):
    """Referee's single, unrepeatable grant."""


@dataclass(frozen=True, slots=True)
class SampleReject(Message):
    """Referee refusal: grant spent, or a better rank is known."""


# ---------------------------------------------------------------------------
# the shared node skeleton


class SamplingNode(Node):
    """Referee bookkeeping plus the candidate claim half, shared by RS/RT.

    Every node is a referee: it tracks the best rank it has ever been
    shown (its own candidacy rank included) and owns one leadership
    grant.  Subclasses decide only *how probes are paced* — RS sends the
    whole sample at once, RT doubles through waves — by implementing
    :meth:`start_probing` and :meth:`on_probes_clean`.
    """

    def __init__(self, ctx: NodeContext) -> None:
        super().__init__(ctx)
        self.role = Role.PASSIVE
        self.rank: tuple[int, int] | None = None
        self.best_seen: tuple[int, int] | None = None
        self.grant_spent = False
        self.sample: tuple[int, ...] = ()
        self._acks_pending = 0
        self._grants_pending = 0

    # -- candidate side ------------------------------------------------------

    def on_wake(self, spontaneous: bool) -> None:
        if not spontaneous:
            return
        stream = self.ctx.rng()
        n = self.ctx.n
        if stream.random() >= candidacy_probability(n):
            return  # declined candidacy: this node referees only
        self.role = Role.CANDIDATE
        self.rank = draw_rank(stream, n, self.ctx.node_id)
        self._note_rank(self.rank)
        self.sample = sample_ports(
            stream, self.ctx.num_ports, referee_sample_size(n)
        )
        self.start_probing()

    def start_probing(self) -> None:
        """Send the first probes (all at once, or the first wave)."""
        raise NotImplementedError

    def on_probes_clean(self) -> None:
        """All probes sent so far were acked ``ok``; continue or claim."""
        raise NotImplementedError

    def send_probes(self, ports: tuple[int, ...]) -> None:
        """Probe ``ports`` and expect one ack each."""
        assert self.rank is not None
        self._acks_pending = len(ports)
        coin, cand = self.rank
        for probe_port in ports:
            self.ctx.send(probe_port, SampleProbe(coin, cand))

    def claim_leadership(self) -> None:
        """Ask every sampled referee for its grant."""
        assert self.rank is not None
        self._grants_pending = len(self.sample)
        coin, cand = self.rank
        for claim_port in self.sample:
            self.ctx.send(claim_port, SampleClaim(coin, cand))

    def _stall(self) -> None:
        """Stop competing (a referee knows a better rank, or a grant
        was refused); keep refereeing for everyone else."""
        self.role = Role.STALLED

    # -- referee side --------------------------------------------------------

    def _note_rank(self, rank: tuple[int, int]) -> None:
        if self.best_seen is None or rank > self.best_seen:
            self.best_seen = rank

    def on_message(self, port: int, message: Message) -> None:
        match message:
            case SampleProbe(coin=coin, cand=cand):
                rank = (coin, cand)
                self._note_rank(rank)
                self.ctx.send(port, SampleAck(ok=rank == self.best_seen))
            case SampleClaim(coin=coin, cand=cand):
                rank = (coin, cand)
                self._note_rank(rank)
                if not self.grant_spent and rank == self.best_seen:
                    self.grant_spent = True
                    self.ctx.send(port, SampleGrant())
                else:
                    self.ctx.send(port, SampleReject())
            case SampleAck(ok=ok):
                if self.role is not Role.CANDIDATE:
                    return
                if not ok:
                    self._stall()
                    return
                self._acks_pending -= 1
                if self._acks_pending == 0:
                    self.on_probes_clean()
            case SampleGrant():
                if self.role is not Role.CANDIDATE:
                    return
                self._grants_pending -= 1
                if self._grants_pending == 0:
                    self.role = Role.LEADER
                    self.become_leader()
            case SampleReject():
                if self.role is Role.CANDIDATE:
                    self._stall()
            case _:
                raise ConfigurationError(
                    f"randomized sampling protocols cannot handle "
                    f"{message.type_name}"
                )

    def snapshot(self) -> dict[str, Any]:
        base = super().snapshot()
        base.update(
            role=self.role.value,
            rank=list(self.rank) if self.rank is not None else None,
            grant_spent=self.grant_spent,
        )
        return base
