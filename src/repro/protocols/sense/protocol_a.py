"""Protocol A (and its wake-up-spreading variant A′) — Section 3.

Setting: asynchronous complete network *with* sense of direction.

Phase 1 — a base node ``i`` captures the window ``i[1..k]`` sequentially.
Contests compare ``(level, id)`` lexicographically; a captured base node
surrenders the nodes it had captured, so a candidate's set is always the
contiguous window ``i[1..level]``.

Phase 2 — a candidate that reached level ``k`` installs itself as owner of
``i[1..k]`` (owner messages, acknowledged), then claims the lattice
``{i[2k], i[3k], ..., i[N-k]}`` with elect messages.  A node that is already
owned forwards the claim to its owner, who is killed if it compares smaller
(see DESIGN.md §4 — the kill-the-owner rule the paper spells out in
Protocol C).  A candidate holding acknowledgements from its whole window and
acceptances from the whole lattice declares itself leader.

Costs (paper): ``O(N + N²/k²)`` messages and, because a chain of unlucky
wake-ups can serialise the first phase, Θ(N) worst-case time.  At
``k = ⌈√N⌉`` the message complexity is O(N).

Protocol A′ additionally has every node, upon waking, nudge ``i[1]`` and
``i[k]`` awake, which bounds the wake-up spread by ``O(k + N/k)`` and hence
the running time by ``O(k + N/k)`` — ``O(√N)`` at ``k = ⌈√N⌉``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any

from repro.core.errors import ConfigurationError
from repro.core.messages import Message, Wakeup
from repro.core.node import NodeContext
from repro.core.protocol import ElectionProtocol, register
from repro.core.strength import Strength
from repro.protocols.capture_base import Challenge, ChallengeVerdict, ContestNode
from repro.protocols.common import Role, leader_strength
from repro.topology.complete import CompleteTopology

# -- messages ----------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class Capture(Message):
    """Phase-1 sequential capture attempt, carrying ``(level, id)``."""

    level: int
    cand: int


@dataclass(frozen=True, slots=True)
class CaptureAccept(Message):
    """Capture succeeded; ``surrendered`` nodes change hands with the target."""

    surrendered: int


@dataclass(frozen=True, slots=True)
class CaptureReject(Message):
    """Capture lost its contest (the paper's silent 'ignore', made explicit)."""


@dataclass(frozen=True, slots=True)
class Owner(Message):
    """Phase-2 ownership installation over the captured window."""

    level: int
    cand: int


@dataclass(frozen=True, slots=True)
class OwnerAck(Message):
    """Ownership acknowledged."""


@dataclass(frozen=True, slots=True)
class OwnerReject(Message):
    """Ownership claim lost its forwarded contest."""


@dataclass(frozen=True, slots=True)
class Elect(Message):
    """Phase-2 claim on a lattice node."""

    level: int
    cand: int


@dataclass(frozen=True, slots=True)
class ElectAccept(Message):
    """Lattice claim granted."""


@dataclass(frozen=True, slots=True)
class ElectReject(Message):
    """Lattice claim lost its contest."""


# -- node ----------------------------------------------------------------------


class ProtocolANode(ContestNode):
    """One node running Protocol A."""

    def __init__(self, ctx: NodeContext, k: int, *, spread_wakeup: bool) -> None:
        super().__init__(ctx)
        self.k = k
        self.spread_wakeup = spread_wakeup
        self.level = 0
        self.phase = 1
        self._acks_outstanding = 0
        self._elects_outstanding = 0

    # -- strength ---------------------------------------------------------------

    def current_strength(self) -> Strength:
        if self.role is Role.LEADER:
            return leader_strength(self.ctx.n, self.ctx.node_id)
        return Strength(self.level, self.ctx.node_id)

    def make_reply(self, kind: str, won: bool) -> Message:
        if kind == "owner":
            return OwnerAck() if won else OwnerReject()
        if kind == "elect":
            return ElectAccept() if won else ElectReject()
        return super().make_reply(kind, won)

    # -- wake-up ------------------------------------------------------------------

    def on_wake(self, spontaneous: bool) -> None:
        if self.spread_wakeup:
            self.ctx.send(self.ctx.port_with_label(1), Wakeup())
            if self.k != 1:
                self.ctx.send(self.ctx.port_with_label(self.k), Wakeup())
        if not spontaneous:
            return
        self.role = Role.CANDIDATE
        self._advance_phase1()

    def _advance_phase1(self) -> None:
        if self.level >= self.k:
            self._enter_phase2()
            return
        port = self.ctx.port_with_label(self.level + 1)
        self.ctx.send(port, Capture(self.level, self.ctx.node_id))

    # -- phase 2 --------------------------------------------------------------------

    def _enter_phase2(self) -> None:
        self.phase = 2
        self.ctx.trace("phase2", level=self.level)
        window = min(self.k, self.ctx.n - 1)
        self._acks_outstanding = window
        for distance in range(1, window + 1):
            self.ctx.send(
                self.ctx.port_with_label(distance),
                Owner(self.level, self.ctx.node_id),
            )

    def _lattice_distances(self) -> list[int]:
        """The elect targets ``{i[2k], i[3k], ..., i[N-k]}``."""
        return list(range(2 * self.k, self.ctx.n, self.k))

    def _send_elects(self) -> None:
        lattice = self._lattice_distances()
        self._elects_outstanding = len(lattice)
        if not lattice:
            # k >= N/2: the window alone is a majority (the LMW86 regime).
            self._declare()
            return
        for distance in lattice:
            self.ctx.send(
                self.ctx.port_with_label(distance),
                Elect(self.level, self.ctx.node_id),
            )

    def _declare(self) -> None:
        if self.role is Role.CANDIDATE:
            self.role = Role.LEADER
            self.become_leader()

    # -- message dispatch ---------------------------------------------------------

    def on_message(self, port: int, message: Message) -> None:
        match message:
            case Wakeup():
                pass  # waking happened in receive()
            case Capture():
                self._handle_capture(port, message)
            case CaptureAccept():
                self._handle_capture_accept(message)
            case CaptureReject():
                self._handle_capture_reject()
            case Owner():
                self.claim(port, Strength(message.level, message.cand), "owner")
            case Elect():
                self._handle_elect(port, message)
            case OwnerAck():
                self._handle_owner_ack()
            case OwnerReject():
                self._stall()
            case ElectAccept():
                self._handle_elect_accept()
            case ElectReject():
                self._stall()
            case Challenge():
                self.handle_challenge(port, message)
            case ChallengeVerdict():
                self.handle_verdict(port, message)
            case _:
                raise ConfigurationError(
                    f"protocol A cannot handle {message.type_name}"
                )

    # -- phase-1 handlers -----------------------------------------------------------

    def _handle_capture(self, port: int, message: Capture) -> None:
        incoming = Strength(message.level, message.cand)
        if self.role in (Role.PASSIVE, Role.CAPTURED):
            if self.role is Role.PASSIVE:
                self.role = Role.CAPTURED
            self.ctx.send(port, CaptureAccept(0))
            return
        if self.role is Role.LEADER:
            self.ctx.send(port, CaptureReject())
            return
        # CANDIDATE or STALLED: contest on (level, id).
        # repro: lint-ok[RPL020] (level, id) contest per the paper
        if incoming.outranks(self.current_strength()):
            surrendered = self.level
            self.role = Role.CAPTURED
            self.ctx.trace("captured_by", cand=message.cand)
            self.ctx.send(port, CaptureAccept(surrendered))
        else:
            self.ctx.send(port, CaptureReject())

    def _handle_capture_accept(self, message: CaptureAccept) -> None:
        if self.role is not Role.CANDIDATE or self.phase != 1:
            return
        self.level += message.surrendered + 1
        self.ctx.trace("level", level=self.level)
        self._advance_phase1()

    def _handle_capture_reject(self) -> None:
        if self.role is Role.CANDIDATE and self.phase == 1:
            self._stall()

    def _stall(self) -> None:
        if self.role is Role.CANDIDATE:
            self.role = Role.STALLED
            self.ctx.trace("stalled")

    # -- phase-2 handlers --------------------------------------------------------------

    def _handle_elect(self, port: int, message: Elect) -> None:
        incoming = Strength(message.level, message.cand)
        if self.role in (Role.CANDIDATE, Role.STALLED, Role.LEADER):
            # Direct contest with another candidate.
            # repro: lint-ok[RPL020] (level, id) contest per the paper
            if incoming.outranks(self.current_strength()):
                self.role = Role.CAPTURED
                self.install_owner(port, incoming)
                self.ctx.send(port, ElectAccept())
            else:
                self.ctx.send(port, ElectReject())
            return
        self.claim(port, incoming, "elect")

    def _handle_owner_ack(self) -> None:
        if self.role is not Role.CANDIDATE or self.phase != 2:
            return
        self._acks_outstanding -= 1
        if self._acks_outstanding == 0:
            self._send_elects()

    def _handle_elect_accept(self) -> None:
        if self.role is not Role.CANDIDATE or self.phase != 2:
            return
        self._elects_outstanding -= 1
        if self._elects_outstanding == 0:
            self._declare()

    # -- snapshot --------------------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        base = super().snapshot()
        base.update(level=self.level, phase=self.phase)
        return base


# -- protocol factories ----------------------------------------------------------------


def default_k(n: int) -> int:
    """The paper's message-optimal choice ``k = ⌈√N⌉`` (clamped to N-1)."""
    return min(n - 1, max(1, math.ceil(math.sqrt(n))))


@register
class ProtocolA(ElectionProtocol):
    """Protocol A: O(N + N²/k²) messages, Θ(N) worst-case time."""

    name = "A"
    needs_sense_of_direction = True
    spread_wakeup = False

    def __init__(self, k: int | None = None) -> None:
        self.k = k

    def validate(self, topology: CompleteTopology) -> None:
        super().validate(topology)
        k = self.effective_k(topology.n)
        if not 1 <= k <= topology.n - 1:
            raise ConfigurationError(
                f"protocol {self.name} needs 1 <= k <= N-1, got k={k}, "
                f"N={topology.n}"
            )

    def effective_k(self, n: int) -> int:
        """The window width in use: the explicit ``k`` or the √N default."""
        return self.k if self.k is not None else default_k(n)

    def create_node(self, ctx: NodeContext) -> ProtocolANode:
        return ProtocolANode(
            ctx, self.effective_k(ctx.n), spread_wakeup=self.spread_wakeup
        )

    def describe(self) -> str:
        return f"{self.name}(k={self.k if self.k is not None else '√N'})"


@register
class ProtocolAPrime(ProtocolA):
    """Protocol A′: A plus wake-up spreading; O(k + N/k) time."""

    name = "A'"
    spread_wakeup = True
