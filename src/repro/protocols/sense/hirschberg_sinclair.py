"""Hirschberg–Sinclair ring election — the second classical baseline.

Complements Chang–Roberts: a *bidirectional* ring election with guaranteed
O(N log N) messages (CR's worst case is O(N²)) at the price of Θ(N) time.
Like CR it runs on the distance-1/distance-(N-1) chords, so it works on
complete networks with sense of direction and on the ALSZ89 chordal rings.
Useful in experiments E2/E3 as the strongest classical ring contender that
the paper's Protocol C still beats on both axes.

Rules: a candidate proceeds in phases; in phase ``p`` it sends probes
``2^p`` hops both ways.  A relay with a larger identity swallows the probe
(replying *defeat* so the loser stalls cleanly — the textbook's silence,
made observable); a probe that exhausts its hop budget echoes back; a
candidate needs both echoes to enter the next phase; a probe that travels
all the way home means its owner beat everyone — leader.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.core.errors import ConfigurationError
from repro.core.messages import Message
from repro.core.node import Node, NodeContext
from repro.core.protocol import ElectionProtocol, register
from repro.protocols.common import Role


@dataclass(frozen=True, slots=True)
class Probe(Message):
    """A candidate's probe: identity, phase, and remaining hop budget."""

    cand: int
    phase: int
    ttl: int


@dataclass(frozen=True, slots=True)
class Echo(Message):
    """The probe survived its full range; travels back to the candidate."""

    cand: int
    phase: int


@dataclass(frozen=True, slots=True)
class Defeat(Message):
    """The probe met a larger identity; travels back to kill the candidate."""

    cand: int


class HirschbergSinclairNode(Node):
    """One node running Hirschberg–Sinclair on the ring chords."""

    def __init__(self, ctx: NodeContext) -> None:
        super().__init__(ctx)
        self.role = Role.PASSIVE
        self.phase = 0
        self._echoes_outstanding = 0

    # -- ring geometry -----------------------------------------------------

    def _forward_port(self, arrival_port: int) -> int:
        """The port that continues a message's direction of travel.

        A message from my ring neighbour arrives on my port labeled ``d``;
        the same direction continues through my port labeled ``N - d``.
        """
        label = self.ctx.port_label(arrival_port)
        if label is None:  # pragma: no cover - guarded by validate()
            raise ConfigurationError("HS needs labeled ring ports")
        return self.ctx.port_with_label(self.ctx.n - label)

    def _send_probes(self) -> None:
        ttl = 2**self.phase
        self._echoes_outstanding = 2
        probe = Probe(self.ctx.node_id, self.phase, ttl)
        clockwise = self.ctx.port_with_label(1)
        counter = self.ctx.port_with_label(self.ctx.n - 1)
        self.ctx.send(clockwise, probe)
        if counter == clockwise:  # N = 2: both directions share the link
            self._echoes_outstanding = 1
        else:
            self.ctx.send(counter, probe)

    # -- lifecycle -----------------------------------------------------------

    def on_wake(self, spontaneous: bool) -> None:
        if not spontaneous:
            return
        self.role = Role.CANDIDATE
        self._send_probes()

    def on_message(self, port: int, message: Message) -> None:
        match message:
            case Probe():
                self._handle_probe(port, message)
            case Echo():
                self._handle_echo(port, message)
            case Defeat():
                self._handle_defeat(port, message)
            case _:
                raise ConfigurationError(
                    f"Hirschberg-Sinclair cannot handle {message.type_name}"
                )

    def _handle_probe(self, port: int, message: Probe) -> None:
        if message.cand == self.ctx.node_id:
            # The probe circled the whole ring: nobody beat it.
            if self.role is Role.CANDIDATE:
                self.role = Role.LEADER
                self.become_leader()
            return
        contender = self.role in (Role.CANDIDATE, Role.STALLED, Role.LEADER)
        # repro: lint-ok[RPL020] probes are swallowed by larger ids: the
        # id order drives HS's elimination rounds
        if message.cand < self.ctx.node_id and contender:
            # Only base nodes swallow: a passive bystander with a large
            # identity never stood for election (validity would break if it
            # could veto every candidate); it just relays.
            self.ctx.send(port, Defeat(message.cand))
            return
        if self.role is Role.CANDIDATE:
            self.role = Role.STALLED  # out-ranked; keep relaying
        if message.ttl > 1:
            self.ctx.send(
                self._forward_port(port),
                Probe(message.cand, message.phase, message.ttl - 1),
            )
        else:
            self.ctx.send(port, Echo(message.cand, message.phase))

    def _handle_echo(self, port: int, message: Echo) -> None:
        if message.cand != self.ctx.node_id:
            self.ctx.send(self._forward_port(port), message)
            return
        if self.role is not Role.CANDIDATE or message.phase != self.phase:
            return
        self._echoes_outstanding -= 1
        if self._echoes_outstanding == 0:
            self.phase += 1
            self.ctx.trace("phase", phase=self.phase)
            self._send_probes()

    def _handle_defeat(self, port: int, message: Defeat) -> None:
        if message.cand != self.ctx.node_id:
            self.ctx.send(self._forward_port(port), message)
            return
        if self.role is Role.CANDIDATE:
            self.role = Role.STALLED
            self.ctx.trace("stalled")

    def snapshot(self) -> dict[str, Any]:
        base = super().snapshot()
        base.update(role=self.role.value, phase=self.phase)
        return base


@register
class HirschbergSinclair(ElectionProtocol):
    """Hirschberg–Sinclair: O(N log N) messages guaranteed, Θ(N) time."""

    name = "HS"
    needs_sense_of_direction = True

    def create_node(self, ctx: NodeContext) -> HirschbergSinclairNode:
        return HirschbergSinclairNode(ctx)
