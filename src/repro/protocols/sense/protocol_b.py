"""Protocol B — the asynchronous doubling protocol (Section 3).

An asynchronous rendition of the synchronous AG85 election, used by the
paper as the second ingredient of Protocol C.  Requires ``N = 2^r``.

A candidate captures all other nodes in ``log N`` doubling steps: step ``s``
claims the ``2^(s-1)`` nodes at distances ``{(2j-1)·N/2^s : j = 1..2^(s-1)}``
— so step 1 claims ``i[N/2]``, step 2 claims ``i[N/4]`` and ``i[3N/4]``, and
after ``log N`` steps every distance ``1..N-1`` has been claimed exactly
once.  Contests compare ``(step, id)``; claims on owned nodes are forwarded
to the owner (kill-the-owner), and a candidate advances a step only when all
of the step's claims are accepted.

Costs (paper): O(log N) time but O(N log N) messages — only one of ``i`` and
``i[N/2]`` survives step 1, only one of four candidates survives step 2, and
so on, so step ``s`` is run by at most ``N/2^(s-1)`` candidates each sending
``2^(s-1)`` messages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.core.errors import ConfigurationError
from repro.core.messages import Message
from repro.core.node import NodeContext
from repro.core.protocol import ElectionProtocol, register
from repro.core.strength import Strength
from repro.protocols.capture_base import Challenge, ChallengeVerdict, ContestNode
from repro.protocols.common import Role, leader_strength
from repro.topology.complete import CompleteTopology


@dataclass(frozen=True, slots=True)
class StepCapture(Message):
    """A doubling-step claim, carrying ``(step, id)``."""

    step: int
    cand: int


@dataclass(frozen=True, slots=True)
class StepAccept(Message):
    """Claim granted."""


@dataclass(frozen=True, slots=True)
class StepReject(Message):
    """Claim lost its contest."""


def doubling_distances(span: int, step: int) -> list[int]:
    """Distances claimed in ``step`` of a doubling schedule over ``span``.

    ``{(2j-1) * span/2^step : j = 1..2^(step-1)}`` — the paper's capture
    pattern for both Protocol B (``span = N``) and Protocol C's second phase
    (``span = k``).
    """
    stride = span >> step
    if stride == 0:
        raise ConfigurationError(f"step {step} too deep for span {span}")
    return [(2 * j - 1) * stride for j in range(1, 2 ** (step - 1) + 1)]


def exact_log2(value: int, what: str) -> int:
    """``log2(value)`` for exact powers of two; raises otherwise."""
    if value < 1 or value & (value - 1):
        raise ConfigurationError(f"{what} must be a power of two, got {value}")
    return value.bit_length() - 1


class ProtocolBNode(ContestNode):
    """One node running Protocol B."""

    def __init__(self, ctx: NodeContext) -> None:
        super().__init__(ctx)
        self.steps_done = 0
        self._outstanding = 0
        self._total_steps = exact_log2(ctx.n, "N")

    def current_strength(self) -> Strength:
        if self.role is Role.LEADER:
            return leader_strength(self.ctx.n, self.ctx.node_id)
        return Strength(self.steps_done, self.ctx.node_id)

    def make_reply(self, kind: str, won: bool) -> Message:
        if kind == "step":
            return StepAccept() if won else StepReject()
        return super().make_reply(kind, won)

    def on_wake(self, spontaneous: bool) -> None:
        if not spontaneous:
            return
        self.role = Role.CANDIDATE
        self._start_step()

    def _start_step(self) -> None:
        if self.steps_done >= self._total_steps:
            if self.role is Role.CANDIDATE:
                self.role = Role.LEADER
                self.become_leader()
            return
        distances = doubling_distances(self.ctx.n, self.steps_done + 1)
        self._outstanding = len(distances)
        for distance in distances:
            self.ctx.send(
                self.ctx.port_with_label(distance),
                StepCapture(self.steps_done, self.ctx.node_id),
            )

    def on_message(self, port: int, message: Message) -> None:
        match message:
            case StepCapture():
                self._handle_claim(port, message)
            case StepAccept():
                self._handle_accept()
            case StepReject():
                self._handle_reject()
            case Challenge():
                self.handle_challenge(port, message)
            case ChallengeVerdict():
                self.handle_verdict(port, message)
            case _:
                raise ConfigurationError(
                    f"protocol B cannot handle {message.type_name}"
                )

    def _handle_claim(self, port: int, message: StepCapture) -> None:
        incoming = Strength(message.step, message.cand)
        if self.role in (Role.CANDIDATE, Role.STALLED, Role.LEADER):
            # repro: lint-ok[RPL020] (step, id) contest per the paper
            if incoming.outranks(self.current_strength()):
                self.role = Role.CAPTURED
                self.install_owner(port, incoming)
                self.ctx.send(port, StepAccept())
            else:
                self.ctx.send(port, StepReject())
            return
        self.claim(port, incoming, "step")

    def _handle_accept(self) -> None:
        if self.role is not Role.CANDIDATE:
            return
        self._outstanding -= 1
        if self._outstanding == 0:
            self.steps_done += 1
            self.ctx.trace("step", step=self.steps_done)
            self._start_step()

    def _handle_reject(self) -> None:
        if self.role is Role.CANDIDATE:
            self.role = Role.STALLED
            self.ctx.trace("stalled")

    def snapshot(self) -> dict[str, Any]:
        base = super().snapshot()
        base.update(steps_done=self.steps_done)
        return base


@register
class ProtocolB(ElectionProtocol):
    """Protocol B: O(N log N) messages, O(log N) time; needs N = 2^r."""

    name = "B"
    needs_sense_of_direction = True

    def validate(self, topology: CompleteTopology) -> None:
        super().validate(topology)
        exact_log2(topology.n, "N")

    def create_node(self, ctx: NodeContext) -> ProtocolBNode:
        return ProtocolBNode(ctx)
