"""Chang–Roberts ring election — a classical baseline.

The paper situates complete networks between two extremes of topological
knowledge; rings are the classical substrate where election was first
studied.  Any network with sense of direction contains a directed
Hamiltonian ring (the distance-1 chords), so Chang–Roberts runs unmodified
on our complete networks *and* on the ALSZ89 chordal rings — a useful
sanity baseline for experiments E2/E3: O(N log N) expected / O(N²) worst
messages and Θ(N) time, strictly dominated by the paper's protocols.

Rules: a base node sends its identity clockwise.  A node forwards tokens
larger than the largest it has seen, swallows smaller ones, and a candidate
that receives its own identity back has circled the ring and is leader.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.core.errors import ConfigurationError
from repro.core.messages import Message
from repro.core.node import Node, NodeContext
from repro.core.protocol import ElectionProtocol, register
from repro.protocols.common import Role


@dataclass(frozen=True, slots=True)
class Token(Message):
    """An identity travelling clockwise around the ring."""

    cand: int


class ChangRobertsNode(Node):
    """One node running Chang–Roberts on the distance-1 ring."""

    def __init__(self, ctx: NodeContext) -> None:
        super().__init__(ctx)
        self.role = Role.PASSIVE
        self.max_seen = -1

    def on_wake(self, spontaneous: bool) -> None:
        if not spontaneous:
            return
        self.role = Role.CANDIDATE
        self.max_seen = self.ctx.node_id
        self.ctx.send(self.ctx.port_with_label(1), Token(self.ctx.node_id))

    def on_message(self, port: int, message: Message) -> None:
        if not isinstance(message, Token):
            raise ConfigurationError(
                f"Chang-Roberts cannot handle {message.type_name}"
            )
        if message.cand == self.ctx.node_id:
            self.role = Role.LEADER
            self.become_leader()
            return
        # repro: lint-ok[RPL020] extinction by id order is the whole of
        # Chang–Roberts
        if message.cand > self.max_seen:
            self.max_seen = message.cand
            if self.role is Role.CANDIDATE:
                self.role = Role.STALLED  # a larger identity passed through
            self.ctx.send(self.ctx.port_with_label(1), message)
        # Smaller tokens are swallowed.

    def snapshot(self) -> dict[str, Any]:
        base = super().snapshot()
        base.update(role=self.role.value, max_seen=self.max_seen)
        return base


@register
class ChangRoberts(ElectionProtocol):
    """Chang–Roberts: O(N log N) average messages, Θ(N) time."""

    name = "CR"
    needs_sense_of_direction = True

    def create_node(self, ctx: NodeContext) -> ChangRobertsNode:
        return ChangRobertsNode(ctx)
