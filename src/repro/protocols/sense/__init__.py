"""Protocols for complete networks *with* sense of direction (Section 3)."""
