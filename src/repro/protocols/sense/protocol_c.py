"""Protocol C — O(N) messages *and* O(log N) time (Section 3).

The paper's headline result for networks with sense of direction, combining
the capture discipline of Protocol A with the doubling schedule of
Protocol B.  Requires ``N = 2^r``; uses ``k = N / 2^⌈log log N⌉`` (a power
of two, ``k = Θ(N / log N)``).

Nodes are partitioned, relative to any reference node, into ``k`` residue
classes ``R_j = {i[j+k], i[j+2k], ...}`` of size ``m = N/k = Θ(log N)``.

**Phase 1** — a base node captures its own class sequentially: targets
``i[k], i[2k], ..., i[N-k]``, contests on ``(lattice-level, id)`` with the
surrender/inheritance rule of Protocol A ("if i[xk] had already captured
i[(x+1)k] ... i[xk] surrenders it").  At most one candidate per class
survives, and each candidate raced only the ``m-1 = O(log N)`` members of
its class, so phase 1 costs O(N) messages and O(log N) time.

**Phase 2** — the class winner updates ``owner`` at every class member,
then claims the remaining distances ``1..k-1`` in ``log k`` doubling steps
(step ``s`` claims the ``2^(s-1)`` distances ``(2j-1)·k/2^s``).  A claim on
an owned node is forwarded to the owner — at most twice, when the owner was
itself captured — and the loser of the ``(step, id)`` comparison is killed.
At most ``k/2^(s-1)`` candidates reach step ``s``, giving O(N) messages and
O(log N) time overall.

Strengths are unified across phases as ``rank = lattice-level`` in phase 1
and ``rank = (m-1) + completed-steps`` in phase 2, so a cross-phase contest
(a still-capturing class member challenged by another class's winner) is
always decided in favour of the farther-along candidate, as the paper's
analysis assumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.core.errors import ConfigurationError
from repro.core.messages import Message
from repro.core.node import NodeContext
from repro.core.protocol import ElectionProtocol, register
from repro.core.strength import Strength
from repro.protocols.capture_base import Challenge, ChallengeVerdict, ContestNode
from repro.protocols.common import Role, leader_strength
from repro.protocols.sense.protocol_b import doubling_distances, exact_log2
from repro.topology.complete import CompleteTopology

# -- messages ----------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class LatticeCapture(Message):
    """Phase-1 sequential claim on the next class member."""

    rank: int
    cand: int


@dataclass(frozen=True, slots=True)
class LatticeAccept(Message):
    """Phase-1 claim granted; ``surrendered`` class members change hands."""

    surrendered: int


@dataclass(frozen=True, slots=True)
class LatticeReject(Message):
    """Phase-1 claim lost its contest."""


@dataclass(frozen=True, slots=True)
class OwnerUpdate(Message):
    """Phase-2 entry: install the class winner as owner of its class."""

    rank: int
    cand: int


@dataclass(frozen=True, slots=True)
class OwnerUpdateAck(Message):
    """Ownership update acknowledged."""


@dataclass(frozen=True, slots=True)
class OwnerUpdateReject(Message):
    """Ownership update lost a forwarded contest."""


@dataclass(frozen=True, slots=True)
class Sweep(Message):
    """Phase-2 doubling-step claim on another class's territory."""

    rank: int
    cand: int


@dataclass(frozen=True, slots=True)
class SweepAccept(Message):
    """Sweep claim granted."""


@dataclass(frozen=True, slots=True)
class SweepReject(Message):
    """Sweep claim lost its contest."""


# -- node ----------------------------------------------------------------------


def protocol_c_k(n: int) -> int:
    """The paper's ``k = N / 2^⌈log₂ log₂ N⌉`` (defined for ``N = 2^r``)."""
    r = exact_log2(n, "N")
    if r == 0:
        raise ConfigurationError("protocol C needs N >= 2")
    ceil_log_r = max(0, (r - 1).bit_length())
    return max(1, n >> ceil_log_r)


class ProtocolCNode(ContestNode):
    """One node running Protocol C."""

    def __init__(self, ctx: NodeContext, k: int) -> None:
        super().__init__(ctx)
        self.k = k
        self.class_size = ctx.n // k  # m = N/k
        self.lattice_level = 0  # class members captured (phase 1)
        self.steps_done = 0  # doubling steps completed (phase 2)
        self.phase = 1
        self._acks_outstanding = 0
        self._sweeps_outstanding = 0
        self._total_steps = exact_log2(k, "k")

    # -- strength ---------------------------------------------------------------

    def current_strength(self) -> Strength:
        if self.role is Role.LEADER:
            return leader_strength(self.ctx.n, self.ctx.node_id)
        if self.phase == 1:
            rank = self.lattice_level
        else:
            rank = (self.class_size - 1) + self.steps_done
        return Strength(rank, self.ctx.node_id)

    def make_reply(self, kind: str, won: bool) -> Message:
        if kind == "ownerupd":
            return OwnerUpdateAck() if won else OwnerUpdateReject()
        if kind == "sweep":
            return SweepAccept() if won else SweepReject()
        return super().make_reply(kind, won)

    # -- wake-up / phase 1 ---------------------------------------------------------

    def on_wake(self, spontaneous: bool) -> None:
        if not spontaneous:
            return
        self.role = Role.CANDIDATE
        self._advance_phase1()

    def _advance_phase1(self) -> None:
        if self.lattice_level >= self.class_size - 1:
            self._enter_phase2()
            return
        distance = (self.lattice_level + 1) * self.k
        self.ctx.send(
            self.ctx.port_with_label(distance),
            LatticeCapture(self.lattice_level, self.ctx.node_id),
        )

    # -- phase 2 ----------------------------------------------------------------------

    def _enter_phase2(self) -> None:
        self.phase = 2
        self.ctx.trace("phase2")
        lattice = [x * self.k for x in range(1, self.class_size)]
        self._acks_outstanding = len(lattice)
        if not lattice:
            self._start_sweep_step()
            return
        strength = self.current_strength()
        for distance in lattice:
            self.ctx.send(
                self.ctx.port_with_label(distance),
                OwnerUpdate(strength.rank, self.ctx.node_id),
            )

    def _start_sweep_step(self) -> None:
        if self.steps_done >= self._total_steps:
            if self.role is Role.CANDIDATE:
                self.role = Role.LEADER
                self.become_leader()
            return
        distances = doubling_distances(self.k, self.steps_done + 1)
        self._sweeps_outstanding = len(distances)
        strength = self.current_strength()
        for distance in distances:
            self.ctx.send(
                self.ctx.port_with_label(distance),
                Sweep(strength.rank, self.ctx.node_id),
            )

    # -- dispatch -----------------------------------------------------------------------

    def on_message(self, port: int, message: Message) -> None:
        match message:
            case LatticeCapture():
                self._handle_lattice_capture(port, message)
            case LatticeAccept():
                self._handle_lattice_accept(message)
            case LatticeReject():
                self._stall()
            case OwnerUpdate():
                self.claim(port, Strength(message.rank, message.cand), "ownerupd")
            case OwnerUpdateAck():
                self._handle_owner_ack()
            case OwnerUpdateReject():
                self._stall()
            case Sweep():
                self._handle_sweep(port, message)
            case SweepAccept():
                self._handle_sweep_accept()
            case SweepReject():
                self._stall()
            case Challenge():
                self.handle_challenge(port, message)
            case ChallengeVerdict():
                self.handle_verdict(port, message)
            case _:
                raise ConfigurationError(
                    f"protocol C cannot handle {message.type_name}"
                )

    # -- handlers ---------------------------------------------------------------------

    def _handle_lattice_capture(self, port: int, message: LatticeCapture) -> None:
        incoming = Strength(message.rank, message.cand)
        if self.role in (Role.PASSIVE, Role.CAPTURED):
            if self.role is Role.PASSIVE:
                self.role = Role.CAPTURED
            self.ctx.send(port, LatticeAccept(0))
            return
        if self.role is Role.LEADER:
            self.ctx.send(port, LatticeReject())
            return
        # repro: lint-ok[RPL020] (lattice level, id) contest per the paper
        if incoming.outranks(self.current_strength()):
            surrendered = self.lattice_level
            self.role = Role.CAPTURED
            self.ctx.trace("captured_by", cand=message.cand)
            self.ctx.send(port, LatticeAccept(surrendered))
        else:
            self.ctx.send(port, LatticeReject())

    def _handle_lattice_accept(self, message: LatticeAccept) -> None:
        if self.role is not Role.CANDIDATE or self.phase != 1:
            return
        self.lattice_level += message.surrendered + 1
        self.ctx.trace("lattice_level", level=self.lattice_level)
        self._advance_phase1()

    def _handle_owner_ack(self) -> None:
        if self.role is not Role.CANDIDATE or self.phase != 2:
            return
        self._acks_outstanding -= 1
        if self._acks_outstanding == 0:
            self._start_sweep_step()

    def _handle_sweep(self, port: int, message: Sweep) -> None:
        incoming = Strength(message.rank, message.cand)
        if self.role in (Role.CANDIDATE, Role.STALLED, Role.LEADER):
            # repro: lint-ok[RPL020] (rank, id) contest per the paper
            if incoming.outranks(self.current_strength()):
                self.role = Role.CAPTURED
                self.install_owner(port, incoming)
                self.ctx.send(port, SweepAccept())
            else:
                self.ctx.send(port, SweepReject())
            return
        self.claim(port, incoming, "sweep")

    def _handle_sweep_accept(self) -> None:
        if self.role is not Role.CANDIDATE or self.phase != 2:
            return
        self._sweeps_outstanding -= 1
        if self._sweeps_outstanding == 0:
            self.steps_done += 1
            self.ctx.trace("sweep_step", step=self.steps_done)
            self._start_sweep_step()

    def _stall(self) -> None:
        if self.role is Role.CANDIDATE:
            self.role = Role.STALLED
            self.ctx.trace("stalled")

    def snapshot(self) -> dict[str, Any]:
        base = super().snapshot()
        base.update(
            phase=self.phase,
            lattice_level=self.lattice_level,
            steps_done=self.steps_done,
        )
        return base


@register
class ProtocolC(ElectionProtocol):
    """Protocol C: O(N) messages and O(log N) time; needs N = 2^r."""

    name = "C"
    needs_sense_of_direction = True

    def __init__(self, k: int | None = None) -> None:
        self.k = k

    def effective_k(self, n: int) -> int:
        """The class width in use: the explicit ``k`` or the paper's formula."""
        return self.k if self.k is not None else protocol_c_k(n)

    def validate(self, topology: CompleteTopology) -> None:
        super().validate(topology)
        n = topology.n
        exact_log2(n, "N")
        k = self.effective_k(n)
        exact_log2(k, "k")
        if not 1 <= k <= n or n % k:
            raise ConfigurationError(
                f"protocol C needs k to divide N with 1 <= k <= N; "
                f"got k={k}, N={n}"
            )

    def create_node(self, ctx: NodeContext) -> ProtocolCNode:
        return ProtocolCNode(ctx, self.effective_k(ctx.n))

    def describe(self) -> str:
        return "C" if self.k is None else f"C(k={self.k})"
