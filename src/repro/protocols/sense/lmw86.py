"""The LMW86 baseline — majority capture with sense of direction.

Loui, Matsushita and West (1986) showed that sense of direction breaks the
Ω(N log N) message lower bound: a candidate that captures the *majority
window* ``i[1..⌈N/2⌉]`` can safely declare itself leader, because any two
majority windows overlap and the overlap forces a contest that kills one of
the two candidates.  O(N) messages, O(N) time.

Singh's Protocol A is exactly this scheme with the majority threshold
replaced by a window of ``k`` plus a sparse lattice; so the baseline is
implemented as Protocol A with ``k = ⌈N/2⌉`` (the lattice is then empty and
phase 2 degenerates to the ownership round).  This mirrors the paper's own
presentation, which derives A from LMW86's capture rules.
"""

from __future__ import annotations

import math

from repro.core.protocol import register
from repro.protocols.sense.protocol_a import ProtocolA


@register
class LMW86(ProtocolA):
    """Majority-capture election: O(N) messages, O(N) time."""

    name = "LMW86"

    def __init__(self) -> None:
        super().__init__(k=None)

    def effective_k(self, n: int) -> int:
        """The majority window ⌈N/2⌉ (clamped to the N-1 ports)."""
        return min(n - 1, math.ceil(n / 2))

    def describe(self) -> str:
        return self.name
