"""``python -m repro lint`` — argument parsing and exit codes.

Exit status: 0 when no unsuppressed findings, 1 when findings were
reported, 2 on usage errors (unknown codes, missing paths).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from .capabilities import render_capability_table
from .core import RULES, lint_paths
from .reporters import render_json, render_text


def default_paths() -> list[Path]:
    """The self-hosted target set: the protocol and app layers."""
    import repro

    root = Path(repro.__file__).resolve().parent
    return [root / "protocols", root / "apps"]


def build_parser(prog: str = "repro lint") -> argparse.ArgumentParser:
    """The ``repro lint`` argument parser (kept separate for tests)."""
    parser = argparse.ArgumentParser(
        prog=prog,
        description=(
            "Static protocol-contract checks: purity (RPL00x), message "
            "hygiene (RPL01x), symmetry equivariance (RPL02x), and "
            "accounting (RPL04x). See docs/lint.md for the rule catalogue."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint "
        "(default: the installed repro protocols/ and apps/)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        action="append",
        metavar="CODES",
        help="comma-separated rule codes to enable exclusively",
    )
    parser.add_argument(
        "--ignore",
        action="append",
        metavar="CODES",
        help="comma-separated rule codes to disable",
    )
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="also list suppressed findings (text format)",
    )
    parser.add_argument(
        "--capabilities",
        action="store_true",
        help="emit the derived per-protocol symmetry capability table as "
        "JSON and exit (regenerates src/repro/verification/"
        "capabilities.json content)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list every registered rule code and exit",
    )
    return parser


def _split_codes(values: list[str] | None) -> list[str] | None:
    if not values:
        return None
    codes: list[str] = []
    for value in values:
        codes.extend(c.strip() for c in value.split(",") if c.strip())
    return codes


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point for ``python -m repro lint``; returns the exit code."""
    parser = build_parser()
    options = parser.parse_args(argv)

    if options.list_rules:
        for code, entry in sorted(RULES.items()):
            print(f"{code}  {entry.name:28s} [{entry.family}] {entry.summary}")
        return 0

    if options.capabilities:
        sys.stdout.write(render_capability_table())
        return 0

    paths = options.paths or default_paths()
    try:
        result = lint_paths(
            paths,
            select=_split_codes(options.select),
            ignore=_split_codes(options.ignore),
        )
    except (FileNotFoundError, ValueError) as exc:
        print(f"repro lint: error: {exc}", file=sys.stderr)
        return 2

    if options.format == "json":
        sys.stdout.write(render_json(result))
    else:
        sys.stdout.write(render_text(result, verbose=options.verbose))
    return 0 if result.ok else 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
