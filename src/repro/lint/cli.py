"""``python -m repro lint`` — argument parsing and exit codes.

Exit status: 0 when no unsuppressed findings, 1 when findings were
reported, 2 on usage errors (unknown codes, missing paths).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from .capabilities import render_capability_table
from .core import RULES, lint_paths
from .reporters import render_json, render_sarif, render_text


def default_paths() -> list[Path]:
    """The self-hosted target set: the protocol and app layers."""
    import repro

    root = Path(repro.__file__).resolve().parent
    return [root / "protocols", root / "apps"]


def build_parser(prog: str = "repro lint") -> argparse.ArgumentParser:
    """The ``repro lint`` argument parser (kept separate for tests)."""
    parser = argparse.ArgumentParser(
        prog=prog,
        description=(
            "Static protocol-contract checks: purity (RPL00x), message "
            "hygiene (RPL01x), symmetry equivariance (RPL02x), flow "
            "(RPL03x, with --flow), and accounting (RPL04x). See "
            "docs/lint.md for the rule catalogue."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint "
        "(default: the installed repro protocols/ and apps/)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--flow",
        action="store_true",
        help="also run the interprocedural RPL03x flow family "
        "(amplification cycles, dead handlers, unbounded fan-out)",
    )
    parser.add_argument(
        "--select",
        action="append",
        metavar="CODES",
        help="comma-separated rule codes to enable exclusively",
    )
    parser.add_argument(
        "--ignore",
        action="append",
        metavar="CODES",
        help="comma-separated rule codes to disable",
    )
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="also list suppressed findings (text format)",
    )
    parser.add_argument(
        "--capabilities",
        action="store_true",
        help="emit the derived per-protocol capability table as "
        "JSON and exit (regenerates src/repro/verification/"
        "capabilities.json content)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="with --capabilities: exit 1 if the checked-in "
        "capabilities.json differs from the live derivation "
        "(drift gate for CI)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list every registered rule code and exit",
    )
    return parser


def _split_codes(values: list[str] | None) -> list[str] | None:
    if not values:
        return None
    codes: list[str] = []
    for value in values:
        codes.extend(c.strip() for c in value.split(",") if c.strip())
    return codes


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point for ``python -m repro lint``; returns the exit code."""
    parser = build_parser()
    options = parser.parse_args(argv)

    if options.list_rules:
        for code, entry in sorted(RULES.items()):
            print(f"{code}  {entry.name:28s} [{entry.family}] {entry.summary}")
        return 0

    if options.capabilities:
        if options.check:
            return check_capability_drift()
        sys.stdout.write(render_capability_table())
        return 0

    if options.check:
        print(
            "repro lint: error: --check requires --capabilities",
            file=sys.stderr,
        )
        return 2

    paths = options.paths or default_paths()
    try:
        result = lint_paths(
            paths,
            select=_split_codes(options.select),
            ignore=_split_codes(options.ignore),
            flow=options.flow,
        )
    except (FileNotFoundError, ValueError) as exc:
        print(f"repro lint: error: {exc}", file=sys.stderr)
        return 2

    if options.format == "json":
        sys.stdout.write(render_json(result))
    elif options.format == "sarif":
        sys.stdout.write(render_sarif(result))
    else:
        sys.stdout.write(render_text(result, verbose=options.verbose))
    return 0 if result.ok else 1


def check_capability_drift() -> int:
    """``--capabilities --check``: diff the snapshot against the live
    derivation; exit 1 on staleness so CI catches un-regenerated tables."""
    from .capabilities import (
        derive_capability_table,
        load_packaged_table,
        packaged_table_path,
    )

    live = derive_capability_table()
    packaged = load_packaged_table()
    if packaged is None:
        print(
            f"capability snapshot missing: {packaged_table_path()}",
            file=sys.stderr,
        )
        return 1
    packaged.pop("deprecation", None)
    if packaged == live:
        print(f"capabilities.json is current ({len(live['protocols'])} "
              "protocols)")
        return 0
    print(
        "capabilities.json is stale; regenerate with "
        "`python -m repro lint --capabilities > "
        "src/repro/verification/capabilities.json`",
        file=sys.stderr,
    )
    stale = sorted(
        set(live["protocols"]) ^ set(packaged.get("protocols", {}))
    )
    for name in sorted(live["protocols"]):
        if name in packaged.get("protocols", {}) and (
            live["protocols"][name] != packaged["protocols"][name]
        ):
            stale.append(name)
    for name in sorted(set(stale)):
        print(f"  drifted: {name}", file=sys.stderr)
    if packaged.get("version") != live.get("version"):
        print(
            f"  schema version: packaged {packaged.get('version')} "
            f"vs live {live.get('version')}",
            file=sys.stderr,
        )
    return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
