"""Text and JSON renderings of a :class:`~repro.lint.core.LintResult`.

The JSON shape is a stable contract (golden-tested): ``version`` bumps on
any schema change, findings are sorted by ``(path, line, col, code)``,
columns are 1-based, and paths are POSIX-style relative to the working
directory — so downstream tooling (and the capability-table generator)
can parse it without sniffing.
"""

from __future__ import annotations

import json

from .core import Finding, LintResult, RULES

JSON_SCHEMA_VERSION = 1


def render_text(result: LintResult, *, verbose: bool = False) -> str:
    """Human-readable report: one ``path:line:col: CODE`` row per finding
    plus a summary line; ``verbose`` also lists suppressed findings."""
    lines = []
    for finding in result.findings:
        lines.append(
            f"{finding.path}:{finding.line}:{finding.col}: "
            f"{finding.code} [{RULES[finding.code].name}] {finding.message}"
        )
    if verbose:
        for finding in result.suppressed:
            reason = finding.suppression_reason or "(no reason given)"
            lines.append(
                f"{finding.path}:{finding.line}:{finding.col}: "
                f"{finding.code} suppressed: {reason}"
            )
    if result.findings:
        total = len(result.findings)
        noun = "finding" if total == 1 else "findings"
        lines.append(
            f"{total} {noun} in {result.files} file(s) "
            f"({len(result.suppressed)} suppressed)"
        )
    else:
        lines.append(
            f"clean: {result.files} file(s), "
            f"{len(result.suppressed)} suppressed finding(s)"
        )
    return "\n".join(lines) + "\n"


def _finding_dict(finding: Finding) -> dict:
    entry = {
        "code": finding.code,
        "rule": RULES[finding.code].name,
        "family": RULES[finding.code].family,
        "path": finding.path,
        "line": finding.line,
        "col": finding.col,
        "end_line": finding.end_line,
        "end_col": finding.end_col,
        "message": finding.message,
    }
    if finding.suppressed:
        entry["suppressed"] = True
        entry["suppression_reason"] = finding.suppression_reason
    return entry


def render_json(result: LintResult) -> str:
    """The stable machine-readable report (see module docstring)."""
    payload = {
        "version": JSON_SCHEMA_VERSION,
        "tool": "repro-lint",
        "checked_files": result.files,
        "findings": [_finding_dict(f) for f in result.findings],
        "suppressed": [_finding_dict(f) for f in result.suppressed],
        "counts": result.counts,
    }
    return json.dumps(payload, indent=2, sort_keys=False) + "\n"


#: The SARIF spec revision the reporter targets.
SARIF_VERSION = "2.1.0"
_SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def _sarif_result(finding: Finding) -> dict:
    result = {
        "ruleId": finding.code,
        "level": "error",
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path,
                        "uriBaseId": "%SRCROOT%",
                    },
                    "region": {
                        "startLine": finding.line,
                        "startColumn": finding.col,
                        "endLine": finding.end_line,
                        "endColumn": finding.end_col,
                    },
                }
            }
        ],
    }
    if finding.suppressed:
        result["level"] = "note"
        result["suppressions"] = [
            {
                "kind": "inSource",
                "justification": finding.suppression_reason or "",
            }
        ]
    return result


def render_sarif(result: LintResult) -> str:
    """SARIF 2.1.0 report for code-scanning upload (``--format sarif``).

    Findings become ``error``-level results; suppressed findings are
    included as ``note``-level results carrying an ``inSource``
    suppression object, so code-scanning UIs show the acknowledged sites
    without failing the scan.  Only rules with at least one result are
    listed in the driver, keeping the document small and diff-stable.
    """
    used_codes = sorted(
        {f.code for f in result.findings}
        | {f.code for f in result.suppressed}
    )
    payload = {
        "$schema": _SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": "docs/lint.md",
                        "rules": [
                            {
                                "id": code,
                                "name": RULES[code].name,
                                "shortDescription": {
                                    "text": RULES[code].summary
                                },
                                "properties": {
                                    "family": RULES[code].family
                                },
                            }
                            for code in used_codes
                        ],
                    }
                },
                "results": [
                    _sarif_result(f)
                    for f in sorted(
                        result.findings + result.suppressed,
                        key=lambda f: f.sort_key,
                    )
                ],
            }
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=False) + "\n"
