"""Message-accounting rules (RPL040–RPL042).

The paper's O(N)–O(N log N) claims are *message-complexity* bounds, and
every measurement in ``harness/`` and ``verification/`` counts messages
at exactly one choke point: ``NodeContext.send``.  A protocol that
reaches around the context — importing the scheduler, poking a link, or
touching private simulator attributes through ``ctx`` — produces traffic
the meters never see, silently invalidating every reported bound.

* **RPL040** — protocol/app modules must not import the simulator,
  harness, verification, or adversary layers at all.
* **RPL041** — the only ``.send(...)`` allowed is on a context
  (``ctx.send`` / ``self.ctx.send``); anything else bypasses accounting.
* **RPL042** — attribute access on a context is limited to the public
  ``NodeContext`` API, so private simulator state cannot leak in.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .core import Finding, ModuleContext, module_checker, rule, terminal_name

RPL040 = rule(
    "RPL040",
    "layer-import",
    "accounting",
    "Protocol module imports a simulator/harness/verification layer",
)
RPL041 = rule(
    "RPL041",
    "send-bypass",
    "accounting",
    ".send() on something other than the node context",
)
RPL042 = rule(
    "RPL042",
    "context-api-escape",
    "accounting",
    "Attribute access on ctx outside the NodeContext API",
)

#: Layers whose import from protocol code means the protocol can reach
#: the machinery that is supposed to be measuring it.
FORBIDDEN_LAYERS = (
    "repro.sim",
    "repro.harness",
    "repro.verification",
    "repro.adversary",
)

#: The public ``NodeContext`` surface (see ``repro/core/node.py``).
#: ``rng`` is the seeded per-node coin stream of the randomized family —
#: protocol-facing by design (unlike ``set_timer``/``count``, which stay
#: overlay-only and are deliberately absent here); the flow analyzer
#: tracks its use as the ``uses_ctx_rng`` capability.
CONTEXT_API = {
    "send",
    "port_label",
    "port_with_label",
    "now",
    "declare_leader",
    "trace",
    "rng",
    "node_id",
    "n",
    "num_ports",
    "has_sense_of_direction",
}


def _is_ctx_receiver(node: ast.AST) -> bool:
    """True for ``ctx`` or any ``*.ctx`` chain (e.g. ``self.ctx``)."""
    name = terminal_name(node)
    return name == "ctx"


def _layer_import_findings(ctx: ModuleContext) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        modules: list[str] = []
        if isinstance(node, ast.Import):
            modules = [alias.name for alias in node.names]
        elif isinstance(node, ast.ImportFrom) and node.module:
            modules = [node.module]
        for module in modules:
            for layer in FORBIDDEN_LAYERS:
                if module == layer or module.startswith(layer + "."):
                    yield ctx.finding(
                        "RPL040",
                        node,
                        f"import of '{module}': protocol code must stay "
                        "below the simulator/measurement boundary and "
                        "interact with the world only through its "
                        "NodeContext",
                    )


def _send_bypass_findings(ctx: ModuleContext) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr == "send"):
            continue
        if _is_ctx_receiver(func.value):
            continue
        receiver = terminal_name(func.value) or "<expr>"
        yield ctx.finding(
            "RPL041",
            node,
            f"'{receiver}.send(...)': all sends must go through ctx.send "
            "so message-complexity accounting sees them",
        )


def _context_escape_findings(ctx: ModuleContext) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Attribute):
            continue
        if not _is_ctx_receiver(node.value):
            continue
        if node.attr in CONTEXT_API:
            continue
        yield ctx.finding(
            "RPL042",
            node,
            f"ctx.{node.attr}: not part of the NodeContext API "
            f"({', '.join(sorted(CONTEXT_API))}); private simulator "
            "state must not leak into protocol code",
        )


@module_checker
def check_accounting(ctx: ModuleContext) -> Iterator[Finding]:
    """Run the accounting family (RPL040–RPL042) over one module."""
    yield from _layer_import_findings(ctx)
    yield from _send_bypass_findings(ctx)
    yield from _context_escape_findings(ctx)
