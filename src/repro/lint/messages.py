"""Message-hygiene rules (RPL010–RPL012).

RPL010 is structural: every ``Message`` subclass must be declared
``@dataclass(frozen=True, slots=True)`` — frozen so a queued message can
never be mutated after sending (the checker's copy-on-write worlds and
transition memo share message objects between branches), slotted so the
per-message footprint stays flat at scale.

RPL011/RPL012 are a whole-run flow analysis: a message *kind* that is
constructed-and-sent but matched by no handler is dead protocol surface
(usually a typo'd ``match`` arm), and a kind that handlers match but
nothing ever sends is unreachable code.  Because protocols are layered —
``capture_base`` constructs ``Challenge`` while the concrete protocol
modules match it — sends and handles are unioned across *all* files in
the run plus the transitive closure of their ``repro.*`` imports; only
classes *defined in the target files* are reported, so the shared
``core.messages`` kinds never false-positive.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterator, Sequence

from .core import (
    Finding,
    ModuleContext,
    project_checker,
    rule,
    terminal_name,
)

RPL010 = rule(
    "RPL010",
    "message-not-frozen-slotted",
    "messages",
    "Message subclass is not a frozen slotted dataclass",
)
RPL011 = rule(
    "RPL011",
    "message-never-handled",
    "messages",
    "Message kind is sent but no handler matches it",
)
RPL012 = rule(
    "RPL012",
    "message-never-sent",
    "messages",
    "Message kind is handled but nothing sends it",
)


def message_classes(tree: ast.Module) -> list[ast.ClassDef]:
    """Classes whose base-name chain ends in ``Message``."""
    result = []
    for stmt in tree.body:
        if not isinstance(stmt, ast.ClassDef):
            continue
        for base in stmt.bases:
            name = terminal_name(base)
            if name is not None and name.endswith("Message"):
                result.append(stmt)
                break
    return result


def _is_frozen_slotted_dataclass(cls: ast.ClassDef) -> bool:
    for deco in cls.decorator_list:
        if isinstance(deco, ast.Call):
            if terminal_name(deco.func) != "dataclass":
                continue
            flags = {
                kw.arg: (
                    isinstance(kw.value, ast.Constant) and kw.value.value is True
                )
                for kw in deco.keywords
                if kw.arg is not None
            }
            if flags.get("frozen") and flags.get("slots"):
                return True
        elif terminal_name(deco) == "dataclass":
            # bare @dataclass: neither frozen nor slotted
            continue
    return False


def _sent_names(tree: ast.Module) -> set[str]:
    """Class names constructed anywhere in the module.

    A message that is constructed is treated as sent: in this codebase
    messages are only ever built to be passed to ``ctx.send`` (directly
    or via a local variable / helper), and tracking dataflow to the send
    call would only add escape hatches.
    """
    names: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            name = terminal_name(node.func)
            if name is not None and name[:1].isupper():
                names.add(name)
    return names


def _handled_names(tree: ast.Module) -> set[str]:
    names: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.MatchClass):
            name = terminal_name(node.cls)
            if name is not None:
                names.add(name)
        elif isinstance(node, ast.Call):
            if (
                terminal_name(node.func) == "isinstance"
                and len(node.args) == 2
            ):
                spec = node.args[1]
                elts = spec.elts if isinstance(spec, ast.Tuple) else [spec]
                for elt in elts:
                    name = terminal_name(elt)
                    if name is not None:
                        names.add(name)
        elif isinstance(node, ast.Assign):
            # App nodes declare the kinds they consume in an
            # ``APP_MESSAGES = (Foo, Bar)`` class attribute.
            for target in node.targets:
                if (
                    isinstance(target, ast.Name)
                    and target.id == "APP_MESSAGES"
                ):
                    value = node.value
                    elts = (
                        value.elts
                        if isinstance(value, (ast.Tuple, ast.List))
                        else [value]
                    )
                    for elt in elts:
                        name = terminal_name(elt)
                        if name is not None:
                            names.add(name)
    return names


def _repro_root() -> Path | None:
    try:
        import repro
    except ImportError:  # pragma: no cover - repro is always importable here
        return None
    return Path(repro.__file__).resolve().parent


def _imported_repro_files(
    contexts: Sequence[ModuleContext],
) -> list[ast.Module]:
    """Parse the transitive ``repro.*`` import closure of the run's files.

    Returns extra parsed trees (support modules) whose sends/handles join
    the union; their classes are *not* checked.
    """
    root = _repro_root()
    if root is None:
        return []
    seen = {ctx.path.resolve() for ctx in contexts}
    queue: list[ast.Module] = [ctx.tree for ctx in contexts]
    support: list[ast.Module] = []
    while queue:
        tree = queue.pop()
        for node in ast.walk(tree):
            modules: list[str] = []
            if isinstance(node, ast.Import):
                modules = [
                    a.name for a in node.names if a.name.startswith("repro")
                ]
            elif isinstance(node, ast.ImportFrom) and node.module:
                if node.module.startswith("repro"):
                    modules = [node.module]
            for module in modules:
                rel = module.split(".")[1:]
                candidates = [
                    root.joinpath(*rel).with_suffix(".py"),
                    root.joinpath(*rel, "__init__.py"),
                ]
                for candidate in candidates:
                    if candidate.exists():
                        resolved = candidate.resolve()
                        if resolved in seen:
                            continue
                        seen.add(resolved)
                        try:
                            parsed = ast.parse(
                                resolved.read_text(), filename=str(resolved)
                            )
                        except SyntaxError:  # pragma: no cover
                            continue
                        support.append(parsed)
                        queue.append(parsed)
                        break
    return support


@project_checker
def check_messages(contexts: Sequence[ModuleContext]) -> Iterator[Finding]:
    """Run the message-hygiene family (RPL010–RPL012) over the run."""
    defined: dict[str, tuple[ModuleContext, ast.ClassDef]] = {}
    for ctx in contexts:
        for cls in message_classes(ctx.tree):
            defined[cls.name] = (ctx, cls)
            if not _is_frozen_slotted_dataclass(cls):
                yield ctx.finding(
                    "RPL010",
                    cls,
                    f"message class {cls.name} must be declared "
                    "@dataclass(frozen=True, slots=True)",
                )

    if not defined:
        return

    trees = [ctx.tree for ctx in contexts]
    trees.extend(_imported_repro_files(contexts))
    sent: set[str] = set()
    handled: set[str] = set()
    for tree in trees:
        sent |= _sent_names(tree)
        handled |= _handled_names(tree)

    for name, (ctx, cls) in defined.items():
        if name in sent and name not in handled:
            yield ctx.finding(
                "RPL011",
                cls,
                f"message {name} is sent but never handled (no match arm, "
                "isinstance check, or APP_MESSAGES entry consumes it)",
            )
        elif name in handled and name not in sent:
            yield ctx.finding(
                "RPL012",
                cls,
                f"message {name} is handled but never sent "
                "(dead protocol surface)",
            )
