"""Symmetry-equivariance rules (RPL020–RPL021).

``--symmetry prune`` explores one representative per orbit of the
relabelling group (rotations under sense of direction, the full symmetric
group under hidden wiring).  That quotient only preserves *outcomes* if
the protocol is equivariant under the group: relabelling the nodes must
relabel the execution.  Two syntactic constructs break that:

* **RPL020 — id-order site.**  Ordering identifiers (``<``, ``>``,
  ``.outranks(...)``) or doing arithmetic on them pins the execution to
  the concrete labelling — a rotation maps "node 3 beats node 1" to
  "node 4 beats node 2", which is a *different* contest outcome.
  Equality tests (``==``/``is``) commute with any bijective relabelling
  and are allowed.
* **RPL021 — port-order scan.**  Under hidden wiring the group also
  permutes each node's port numbering, so iterating ports in a fixed
  numeric order (``self._next_port += 1``, ``range(k)`` not derived from
  ``num_ports``) is only rotation-safe, never relabelling-safe.

These findings double as *measurements*: :mod:`repro.lint.capabilities`
counts them per protocol (suppressed or not — a ``lint-ok`` comment
acknowledges a site, it does not make the construct equivariant) to
derive the capability table that gates ``--symmetry prune``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .core import Finding, ModuleContext, module_checker, rule, terminal_name

RPL020 = rule(
    "RPL020",
    "id-order-site",
    "equivariance",
    "Identifier ordering/arithmetic breaks relabelling-equivariance",
)
RPL021 = rule(
    "RPL021",
    "port-order-scan",
    "equivariance",
    "Fixed port-numbering scan breaks hidden-wiring equivariance",
)

#: Terminal names whose values carry node identities.  ``cand`` and
#: ``leader_id`` are the field names every protocol/message in this repo
#: uses for "a candidate's identity in flight".
ID_NAMES = {"node_id", "cand", "leader_id"}

_ORDER_OPS = (ast.Lt, ast.LtE, ast.Gt, ast.GtE)


def _mentions_id(node: ast.AST) -> str | None:
    """The first id-carrying terminal name inside ``node``, if any."""
    for sub in ast.walk(node):
        name = terminal_name(sub)
        if name in ID_NAMES:
            return name
    return None


def _id_order_findings(ctx: ModuleContext) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Compare):
            if not any(isinstance(op, _ORDER_OPS) for op in node.ops):
                continue
            operands = [node.left, *node.comparators]
            for operand in operands:
                name = _mentions_id(operand)
                if name is not None:
                    yield ctx.finding(
                        "RPL020",
                        node,
                        f"order comparison involving identifier '{name}': "
                        "relabelling the nodes changes the outcome "
                        "(equality tests are equivariant, orderings are "
                        "not)",
                    )
                    break
        elif isinstance(node, ast.Call):
            if terminal_name(node.func) == "outranks":
                yield ctx.finding(
                    "RPL020",
                    node,
                    "Strength.outranks() resolves contests by identifier "
                    "order (lexicographic (rank, node_id)): not "
                    "relabelling-equivariant",
                )
        elif isinstance(node, ast.BinOp):
            name = _mentions_id(node)
            if name is not None:
                yield ctx.finding(
                    "RPL020",
                    node,
                    f"arithmetic on identifier '{name}': identifier values "
                    "must be treated as opaque tokens for symmetry pruning "
                    "to be sound",
                )


def _port_scan_findings(ctx: ModuleContext) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.AugAssign):
            name = terminal_name(node.target)
            if name is not None and "port" in name.lower():
                yield ctx.finding(
                    "RPL021",
                    node,
                    f"sequential port cursor '{name}': scanning ports in "
                    "numeric order fixes a traversal the hidden-wiring "
                    "relabelling group does not preserve",
                )
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            target = node.target
            target_name = (
                target.id if isinstance(target, ast.Name) else None
            )
            if target_name is None or "port" not in target_name.lower():
                continue
            it = node.iter
            if not (
                isinstance(it, ast.Call)
                and terminal_name(it.func) == "range"
            ):
                continue
            bounds_ok = all(
                terminal_name(arg) == "num_ports" for arg in it.args
            ) and it.args
            if not bounds_ok:
                yield ctx.finding(
                    "RPL021",
                    node,
                    f"'for {target_name} in range(...)' over a bound other "
                    "than num_ports: a partial numeric port scan is not "
                    "relabelling-equivariant",
                )


@module_checker
def check_equivariance(ctx: ModuleContext) -> Iterator[Finding]:
    """Run the equivariance family (RPL020–RPL021) over one module."""
    yield from _id_order_findings(ctx)
    yield from _port_scan_findings(ctx)
