"""Static protocol-contract analysis (``python -m repro lint``).

The optimisations in ``verification/`` are sound only under contracts the
type system cannot express: handler purity (transition memoisation,
deterministic replay), frozen message values (copy-on-write worlds),
relabelling-equivariance (``--symmetry prune``), and single-choke-point
sends (message-complexity accounting).  This package checks those
contracts syntactically, with stable ``RPL0xx`` codes, source spans,
inline ``# repro: lint-ok[RPL0xx] reason`` suppressions, and text/JSON
reporters — and derives the per-protocol capability table that gates the
symmetry optimisation (:mod:`repro.lint.capabilities`).

Importing this package registers every rule family.
"""

from __future__ import annotations

from . import accounting, equivariance, messages, purity  # noqa: F401
from .capabilities import (
    ProtocolCapability,
    capability_for,
    derive_capability_table,
    load_packaged_table,
    packaged_table_path,
)
from .core import (
    Finding,
    LintResult,
    ModuleContext,
    Rule,
    RULES,
    lint_paths,
)
from .flow import (  # noqa: F401  (registers the RPL03x rule family)
    FanOut,
    FlowAutomaton,
    analyze_node_class,
    analyze_protocol,
    analyze_registered_protocols,
    flow_findings,
)
from .reporters import render_json, render_sarif, render_text

__all__ = [
    "FanOut",
    "Finding",
    "FlowAutomaton",
    "LintResult",
    "ModuleContext",
    "ProtocolCapability",
    "RULES",
    "Rule",
    "analyze_node_class",
    "analyze_protocol",
    "analyze_registered_protocols",
    "capability_for",
    "derive_capability_table",
    "flow_findings",
    "lint_paths",
    "load_packaged_table",
    "packaged_table_path",
    "render_json",
    "render_sarif",
    "render_text",
]
