"""Purity/determinism rules (RPL001–RPL005).

The checker's transition memo caches ``(node state, port, message) ->
successor`` and deterministic replay re-runs a recorded schedule byte for
byte; both are only sound if handlers are pure functions of their inputs.
These rules reject the ways that contract is usually broken in Python:
shared module- or class-level mutable state, wall clocks and entropy
sources, and iteration over sets of objects whose ordering depends on
``PYTHONHASHSEED`` or on ``id()``.

Scoping: RPL001/RPL002 fire only inside methods of node classes (a class
whose base-name chain ends in ``Node``) because that is where the purity
contract binds; RPL003/RPL004/RPL005 fire module-wide because an impure
helper called from a handler is just as fatal.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from .core import Finding, ModuleContext, module_checker, rule, terminal_name

RPL001 = rule(
    "RPL001",
    "module-state-write",
    "purity",
    "Handler writes module-level mutable state",
)
RPL002 = rule(
    "RPL002",
    "class-state-write",
    "purity",
    "Handler writes class-level (shared) state",
)
RPL003 = rule(
    "RPL003",
    "forbidden-import",
    "purity",
    "Module imports an entropy/clock/OS source",
)
RPL004 = rule(
    "RPL004",
    "nondeterministic-call",
    "purity",
    "Call into an entropy/clock/OS source or id()",
)
RPL005 = rule(
    "RPL005",
    "set-iteration",
    "purity",
    "Iteration over a set of non-canonical objects",
)

#: Modules whose presence in protocol code breaks determinism.  ``math``
#: is deliberately allowed; time must come from ``ctx.now()``.
FORBIDDEN_MODULES = {
    "random",
    "secrets",
    "uuid",
    "time",
    "datetime",
    "os",
    "threading",
    "socket",
}

#: Methods that mutate their receiver in place.
_MUTATORS = {
    "append",
    "add",
    "update",
    "extend",
    "insert",
    "remove",
    "discard",
    "pop",
    "popitem",
    "clear",
    "setdefault",
    "sort",
    "reverse",
}


def _module_level_names(tree: ast.Module) -> set[str]:
    """Names bound by top-level statements (candidates for shared state)."""
    names: set[str] = set()
    for stmt in tree.body:
        if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (
                stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            )
            for target in targets:
                for node in ast.walk(target):
                    if isinstance(node, ast.Name):
                        names.add(node.id)
    return names


def _class_names(tree: ast.Module) -> set[str]:
    return {
        stmt.name for stmt in tree.body if isinstance(stmt, ast.ClassDef)
    }


def node_classes(tree: ast.Module) -> list[ast.ClassDef]:
    """Classes that look like ``Node`` subclasses (base name ends 'Node')."""
    result = []
    for stmt in tree.body:
        if not isinstance(stmt, ast.ClassDef):
            continue
        for base in stmt.bases:
            name = terminal_name(base)
            if name is not None and name.endswith("Node"):
                result.append(stmt)
                break
    return result


def _root_name(node: ast.AST) -> str | None:
    """The leftmost name of an attribute/subscript chain."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Call):
        # type(self).registry -> root is the type(self) call
        func = terminal_name(node.func)
        if func == "type":
            return "type(self)"
    return None


def _iter_handler_bodies(cls: ast.ClassDef) -> Iterator[ast.FunctionDef]:
    for stmt in cls.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield stmt


def _check_shared_state(
    ctx: ModuleContext,
    method: ast.FunctionDef,
    module_names: set[str],
    class_names: set[str],
) -> Iterator[Finding]:
    class_roots = class_names | {"cls", "type(self)"}
    for node in ast.walk(method):
        if isinstance(node, ast.Global):
            yield ctx.finding(
                "RPL001",
                node,
                f"handler {method.name}() declares "
                f"'global {', '.join(node.names)}': handlers must be pure "
                "functions of (state, port, message)",
            )
        elif isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                if not isinstance(target, (ast.Subscript, ast.Attribute)):
                    continue
                root = _root_name(target)
                if root in module_names:
                    yield ctx.finding(
                        "RPL001",
                        node,
                        f"handler {method.name}() writes module-level "
                        f"state through '{root}'",
                    )
                elif root in class_roots:
                    yield ctx.finding(
                        "RPL002",
                        node,
                        f"handler {method.name}() writes class-level "
                        f"state through '{root}'",
                    )
        elif isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _MUTATORS
            ):
                root = _root_name(func.value)
                if root in module_names:
                    yield ctx.finding(
                        "RPL001",
                        node,
                        f"handler {method.name}() mutates module-level "
                        f"'{root}' via .{func.attr}()",
                    )
                elif root in class_roots:
                    yield ctx.finding(
                        "RPL002",
                        node,
                        f"handler {method.name}() mutates class-level "
                        f"state via '{root}.{func.attr}()'",
                    )


def _forbidden_import_findings(ctx: ModuleContext) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                top = alias.name.split(".")[0]
                if top in FORBIDDEN_MODULES:
                    yield ctx.finding(
                        "RPL003",
                        node,
                        f"import of '{alias.name}': protocol code must be "
                        "deterministic (time comes from ctx.now(), "
                        "randomness is not allowed)",
                    )
        elif isinstance(node, ast.ImportFrom):
            top = (node.module or "").split(".")[0]
            if top in FORBIDDEN_MODULES:
                yield ctx.finding(
                    "RPL003",
                    node,
                    f"import from '{node.module}': protocol code must be "
                    "deterministic",
                )


def _nondeterministic_aliases(tree: ast.Module) -> set[str]:
    """Names bound by ``from random import randrange``-style imports."""
    aliases: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom):
            top = (node.module or "").split(".")[0]
            if top in FORBIDDEN_MODULES:
                for alias in node.names:
                    aliases.add(alias.asname or alias.name)
        elif isinstance(node, ast.Import):
            for alias in node.names:
                top = alias.name.split(".")[0]
                if top in FORBIDDEN_MODULES:
                    aliases.add((alias.asname or alias.name).split(".")[0])
    return aliases


def _nondeterministic_call_findings(ctx: ModuleContext) -> Iterator[Finding]:
    aliases = _nondeterministic_aliases(ctx.tree)
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Name):
            if func.id == "id":
                yield ctx.finding(
                    "RPL004",
                    node,
                    "call to builtin id(): object identity varies between "
                    "runs and breaks deterministic replay",
                )
            elif func.id in aliases:
                yield ctx.finding(
                    "RPL004",
                    node,
                    f"call to '{func.id}' imported from a nondeterministic "
                    "module",
                )
        elif isinstance(func, ast.Attribute):
            root = _root_name(func)
            if root in FORBIDDEN_MODULES or root in aliases:
                yield ctx.finding(
                    "RPL004",
                    node,
                    f"call to nondeterministic '{root}.{func.attr}()'",
                )


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = terminal_name(node.func)
        return name in {"set", "frozenset"}
    return False


def _set_iteration_findings(ctx: ModuleContext) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        iters: Iterable[ast.AST]
        if isinstance(node, (ast.For, ast.AsyncFor)):
            iters = [node.iter]
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                               ast.GeneratorExp)):
            iters = [gen.iter for gen in node.generators]
        else:
            continue
        for it in iters:
            if _is_set_expr(it):
                yield ctx.finding(
                    "RPL005",
                    it,
                    "iteration over a set literal/constructor: set order "
                    "depends on hashing and is not canonical; iterate a "
                    "sorted sequence instead",
                )


@module_checker
def check_purity(ctx: ModuleContext) -> Iterator[Finding]:
    """Run the purity family (RPL001–RPL005) over one module."""
    module_names = _module_level_names(ctx.tree)
    class_names = _class_names(ctx.tree)
    for cls in node_classes(ctx.tree):
        for method in _iter_handler_bodies(cls):
            yield from _check_shared_state(
                ctx, method, module_names, class_names
            )
    yield from _forbidden_import_findings(ctx)
    yield from _nondeterministic_call_findings(ctx)
    yield from _set_iteration_findings(ctx)
