"""Per-protocol symmetry capabilities, derived from the equivariance rules.

For each registered protocol we resolve the set of source modules its
implementation actually consists of — the protocol class's MRO plus the
MRO of the node class named by ``create_node``'s return annotation,
minus the framework layers (``repro.core``, stdlib) — and count the
RPL020/RPL021 sites the linter finds in them.  Suppressed findings count
too: a ``lint-ok`` comment acknowledges an id-ordering site, it does not
make the construct equivariant.

The derived booleans:

* ``rotation_equivariant`` — no id-order sites.  Sound to orbit-prune
  under sense of direction (the rotation group never touches port
  numbering there).
* ``relabelling_equivariant`` — no id-order sites *and* no port-order
  scans.  Sound to orbit-prune under hidden wiring, where the group also
  permutes every node's port labels.

``derive_capability_table()`` snapshots this for every registered
protocol; the snapshot is checked in at
``src/repro/verification/capabilities.json`` and ``verification/symmetry``
cross-checks the live derivation against it every time ``--symmetry
prune`` is requested, erroring out on disagreement (code changed, table
stale → regenerate with ``python -m repro lint --capabilities``).
"""

from __future__ import annotations

import inspect
import json
import typing
from dataclasses import dataclass
from pathlib import Path

from .core import ModuleContext
from .equivariance import check_equivariance

#: Version 2 adds the flow-derived behavioural fields (``uses_timers``,
#: ``uses_rng``, ``max_fanout``, ``quiescent_kinds``).  Version-1 tables
#: still load (see :func:`load_packaged_table`) so downstream checkouts
#: with an old snapshot degrade to the v1 equivariance gating instead of
#: crashing.
CAPABILITY_TABLE_VERSION = 2

#: Modules that are framework (or stdlib plumbing), not protocol
#: implementation.  Everything else in a protocol/node MRO — including
#: third-party or test-fixture protocols living outside ``repro`` — is
#: part of the implementation and gets analysed.
_FRAMEWORK_PREFIXES = ("repro.core", "repro.topology")
_STDLIB_MODULES = {"builtins", "abc", "typing", "dataclasses", "enum"}


@dataclass(frozen=True)
class ProtocolCapability:
    """What the equivariance and flow analyses measured for one protocol.

    The v2 fields come from the interprocedural flow automaton
    (:mod:`repro.lint.flow`): timers and entropy make exhaustive
    exploration and sharded scheduling unsound to optimise, ``max_fanout``
    is the symbolic per-activation send bound the conformance probe
    enforces at runtime, and ``quiescent_kinds`` are handled kinds that
    provably send nothing (pure sinks).
    """

    protocol: str
    modules: tuple[str, ...]
    id_order_sites: int
    port_scan_sites: int
    uses_timers: bool = False
    uses_rng: bool = False
    #: Draws from the seeded per-node ``ctx.rng()`` stream — deterministic
    #: under a pinned run seed (and digest-safe to shard), unlike
    #: ``uses_rng``'s module-level entropy, but still outside what the
    #: equivariance argument covers, so symmetry pruning refuses it.
    uses_ctx_rng: bool = False
    max_fanout: str = "0"
    quiescent_kinds: tuple[str, ...] = ()

    @property
    def rotation_equivariant(self) -> bool:
        return self.id_order_sites == 0

    @property
    def relabelling_equivariant(self) -> bool:
        return self.id_order_sites == 0 and self.port_scan_sites == 0

    def to_dict(self) -> dict:
        """JSON-ready form, matching ``capabilities.json`` entries."""
        return {
            "modules": list(self.modules),
            "id_order_sites": self.id_order_sites,
            "port_scan_sites": self.port_scan_sites,
            "rotation_equivariant": self.rotation_equivariant,
            "relabelling_equivariant": self.relabelling_equivariant,
            "uses_timers": self.uses_timers,
            "uses_rng": self.uses_rng,
            "uses_ctx_rng": self.uses_ctx_rng,
            "max_fanout": self.max_fanout,
            "quiescent_kinds": list(self.quiescent_kinds),
        }


def _is_framework_module(name: str) -> bool:
    if name in _STDLIB_MODULES:
        return True
    return any(
        name == prefix or name.startswith(prefix + ".")
        for prefix in _FRAMEWORK_PREFIXES
    )


def _node_class(protocol_cls: type) -> type | None:
    """The node class named by ``create_node``'s return annotation."""
    for klass in protocol_cls.__mro__:
        fn = klass.__dict__.get("create_node")
        if fn is None:
            continue
        try:
            hints = typing.get_type_hints(fn)
        except Exception:
            return None
        returned = hints.get("return")
        if isinstance(returned, type):
            return returned
        return None
    return None


def implementation_modules(protocol_cls: type) -> tuple[str, ...]:
    """Sorted module names making up one protocol's implementation."""
    classes: list[type] = list(protocol_cls.__mro__)
    node_cls = _node_class(protocol_cls)
    if node_cls is not None:
        classes.extend(node_cls.__mro__)
    modules: set[str] = set()
    for klass in classes:
        module = getattr(klass, "__module__", "")
        if module and not _is_framework_module(module):
            modules.add(module)
    return tuple(sorted(modules))


def _module_source_file(module_name: str) -> Path | None:
    import importlib
    import sys

    module = sys.modules.get(module_name)
    if module is None:
        module = importlib.import_module(module_name)
    try:
        source = inspect.getsourcefile(module)
    except TypeError:  # built-in or extension module: nothing to analyse
        return None
    return Path(source) if source else None


_CAPABILITY_CACHE: dict[type, ProtocolCapability] = {}


def capability_for(protocol_cls: type) -> ProtocolCapability:
    """Derive (and cache) the capability of one protocol class."""
    cached = _CAPABILITY_CACHE.get(protocol_cls)
    if cached is not None:
        return cached
    modules = implementation_modules(protocol_cls)
    id_sites = 0
    port_sites = 0
    for module_name in modules:
        path = _module_source_file(module_name)
        if path is None:  # pragma: no cover - all repro modules have files
            continue
        ctx = ModuleContext(path)
        for finding in check_equivariance(ctx):
            if finding.code == "RPL020":
                id_sites += 1
            elif finding.code == "RPL021":
                port_sites += 1
    from .flow import analyze_protocol

    automaton = analyze_protocol(protocol_cls)
    capability = ProtocolCapability(
        protocol=getattr(protocol_cls, "name", protocol_cls.__name__),
        modules=modules,
        id_order_sites=id_sites,
        port_scan_sites=port_sites,
        uses_timers=automaton.uses_timers,
        uses_rng=automaton.uses_rng,
        uses_ctx_rng=automaton.uses_ctx_rng,
        max_fanout=automaton.max_fanout.describe(),
        quiescent_kinds=automaton.quiescent_kinds,
    )
    _CAPABILITY_CACHE[protocol_cls] = capability
    return capability


def derive_capability_table() -> dict:
    """Live capability table for every registered protocol."""
    import repro  # noqa: F401  (importing repro registers all protocols)
    from repro.core.protocol import registered_protocols

    protocols = {
        name: capability_for(cls).to_dict()
        for name, cls in sorted(registered_protocols().items())
    }
    return {
        "version": CAPABILITY_TABLE_VERSION,
        "tool": "repro-lint",
        "protocols": protocols,
    }


def packaged_table_path() -> Path:
    """Location of the checked-in capability snapshot."""
    from repro import verification

    return Path(verification.__file__).resolve().parent / "capabilities.json"


def load_packaged_table() -> dict | None:
    """The checked-in capability snapshot, or None if absent.

    Version-1 tables (pre flow analysis) still load: the v2 behavioural
    keys are simply absent from their entries, and consumers fall back
    to v1 semantics.  A ``deprecation`` note is attached so reports can
    surface that the snapshot predates the flow fields and should be
    regenerated.
    """
    path = packaged_table_path()
    if not path.exists():
        return None
    table = json.loads(path.read_text())
    if table.get("version", 1) < CAPABILITY_TABLE_VERSION:
        table["deprecation"] = (
            f"capability table version {table.get('version', 1)} predates "
            f"the flow-derived fields (current: "
            f"{CAPABILITY_TABLE_VERSION}); regenerate with `python -m "
            "repro lint --capabilities`"
        )
    return table


def render_capability_table() -> str:
    """The live table as the JSON text ``--capabilities`` prints."""
    return json.dumps(derive_capability_table(), indent=2) + "\n"
