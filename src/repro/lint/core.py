"""The rule framework: findings, the rule registry, suppressions, the engine.

A *rule* is a stable code (``RPL0xx``), a short name, and prose describing
the contract it enforces; a *checker* is a function that walks one parsed
module (or, for whole-run rules like the send/handle flow graph, every
module at once) and yields :class:`Finding` objects.  The engine parses
each target file once into a :class:`ModuleContext`, resolves inline
suppressions (``# repro: lint-ok[RPL0xx] <reason>`` on the finding's line
or the line above it), applies ``--select``/``--ignore`` filters, and
returns findings in a stable ``(path, line, col, code)`` order so reports
are diffable and the JSON output can be golden-tested.

The contracts themselves live in the four family modules (:mod:`purity`,
:mod:`messages`, :mod:`equivariance`, :mod:`accounting`); this module knows
nothing about any specific rule.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Callable, Iterable, Sequence

#: Inline suppression: ``# repro: lint-ok[RPL001] reason`` or a comma list
#: ``# repro: lint-ok[RPL001, RPL004] reason``.  It silences matching
#: findings on its own line and on the next code line below it (comment
#: continuation lines in between are skipped, so a multi-line
#: justification works).
_SUPPRESS_RE = re.compile(
    r"#\s*repro:\s*lint-ok\[(?P<codes>RPL\d{3}(?:\s*,\s*RPL\d{3})*)\]"
    r"\s*(?P<reason>.*?)\s*$"
)

_CODE_RE = re.compile(r"^RPL\d{3}$")


@dataclass(frozen=True)
class Rule:
    """One registered contract: stable code, name, and rationale."""

    code: str
    name: str
    family: str
    summary: str


@dataclass(frozen=True)
class Finding:
    """One rule violation anchored to a source span.

    ``line``/``col`` are 1-based (``col`` is ``ast.col_offset + 1``);
    ``end_line``/``end_col`` follow the same convention and are inclusive
    of the last line, exclusive of the last column, matching ``ast``.
    """

    code: str
    path: str
    line: int
    col: int
    end_line: int
    end_col: int
    message: str
    suppressed: bool = False
    suppression_reason: str | None = None

    @property
    def sort_key(self) -> tuple:
        return (self.path, self.line, self.col, self.code)


RULES: dict[str, Rule] = {}

#: Checkers over one module: ``fn(ctx) -> Iterable[Finding]``.
MODULE_CHECKERS: list[Callable[["ModuleContext"], Iterable[Finding]]] = []

#: Checkers over the whole run (cross-module flow analyses):
#: ``fn(contexts) -> Iterable[Finding]``.
PROJECT_CHECKERS: list[
    Callable[[Sequence["ModuleContext"]], Iterable[Finding]]
] = []


def rule(code: str, name: str, family: str, summary: str) -> Rule:
    """Register one rule; returns it so families can keep a handle."""
    if not _CODE_RE.match(code):
        raise ValueError(f"rule code {code!r} is not of the form RPL0xx")
    if code in RULES:
        raise ValueError(f"duplicate rule code {code}")
    entry = Rule(code, name, family, summary)
    RULES[code] = entry
    return entry


_ModuleChecker = Callable[["ModuleContext"], Iterable[Finding]]
_ProjectChecker = Callable[[Sequence["ModuleContext"]], Iterable[Finding]]


def module_checker(fn: _ModuleChecker) -> _ModuleChecker:
    """Decorator: register a per-module checker."""
    MODULE_CHECKERS.append(fn)
    return fn


def project_checker(fn: _ProjectChecker) -> _ProjectChecker:
    """Decorator: register a whole-run checker."""
    PROJECT_CHECKERS.append(fn)
    return fn


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def terminal_name(node: ast.AST) -> str | None:
    """The last attribute (or the bare name) of a Name/Attribute chain."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


class ModuleContext:
    """One parsed target file plus its suppression table."""

    def __init__(self, path: str | Path, source: str | None = None) -> None:
        self.path = Path(path)
        if source is None:
            source = self.path.read_text()
        self.source = source
        self.tree = ast.parse(source, filename=str(path))
        self.display = _display_path(self.path)
        self._lines = source.splitlines()
        #: line number -> {code: reason}
        self.suppressions: dict[int, dict[str, str]] = {}
        for lineno, line in enumerate(source.splitlines(), start=1):
            match = _SUPPRESS_RE.search(line)
            if match is None:
                continue
            reason = match.group("reason")
            entry = self.suppressions.setdefault(lineno, {})
            for code in re.split(r"\s*,\s*", match.group("codes")):
                entry[code] = reason

    def suppression_for(self, code: str, line: int) -> str | None:
        """The suppression reason covering ``code`` at ``line``, if any.

        A suppression covers its own line and the next code line below,
        looking up through any contiguous block of comment-only lines.
        """
        entry = self.suppressions.get(line)
        if entry is not None and code in entry:
            return entry[code]
        candidate = line - 1
        while candidate >= 1:
            entry = self.suppressions.get(candidate)
            if entry is not None and code in entry:
                return entry[code]
            text = self._lines[candidate - 1].strip()
            if not text.startswith("#"):
                break
            candidate -= 1
        return None

    def finding(self, code: str, node: ast.AST, message: str) -> Finding:
        """Build a finding at ``node``, resolving suppression."""
        if code not in RULES:
            raise ValueError(f"finding uses unregistered rule code {code}")
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0) + 1
        end_line = getattr(node, "end_lineno", None) or line
        end_col_offset = getattr(node, "end_col_offset", None)
        end_col = (end_col_offset + 1) if end_col_offset is not None else col
        reason = self.suppression_for(code, line)
        return Finding(
            code=code,
            path=self.display,
            line=line,
            col=col,
            end_line=end_line,
            end_col=end_col,
            message=message,
            suppressed=reason is not None,
            suppression_reason=reason,
        )


def _display_path(path: Path) -> str:
    """POSIX path relative to the current directory when possible."""
    resolved = path.resolve()
    try:
        return resolved.relative_to(Path.cwd()).as_posix()
    except ValueError:
        return resolved.as_posix()


@dataclass
class LintResult:
    """Everything one lint run produced."""

    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    files: int = 0

    @property
    def counts(self) -> dict[str, int]:
        tally: dict[str, int] = {}
        for finding in self.findings:
            tally[finding.code] = tally.get(finding.code, 0) + 1
        return dict(sorted(tally.items()))

    @property
    def ok(self) -> bool:
        return not self.findings


def iter_python_files(paths: Sequence[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    files: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.update(path.rglob("*.py"))
        elif path.suffix == ".py":
            files.add(path)
        else:
            raise FileNotFoundError(f"not a Python file or directory: {path}")
    return sorted(files)


def _normalise_codes(
    codes: Iterable[str] | None, flag: str
) -> set[str] | None:
    if codes is None:
        return None
    result = set(codes)
    unknown = sorted(code for code in result if code not in RULES)
    if unknown:
        raise ValueError(
            f"unknown rule code(s) for {flag}: {', '.join(unknown)}; "
            f"known: {', '.join(sorted(RULES))}"
        )
    return result


def lint_paths(
    paths: Sequence[str | Path],
    *,
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
    flow: bool = False,
) -> LintResult:
    """Run every registered rule over ``paths``.

    ``select`` keeps only the listed codes; ``ignore`` drops the listed
    codes (applied after ``select``).  Suppressed findings are filtered
    the same way but reported separately, so reporters can show what the
    inline ``lint-ok`` comments are hiding.  ``flow=True`` additionally
    runs the interprocedural RPL03x family (``repro lint --flow``),
    which is opt-in because it analyses the whole import closure of the
    targets rather than the target files alone.
    """
    selected = _normalise_codes(select, "--select")
    ignored = _normalise_codes(ignore, "--ignore")
    contexts = [ModuleContext(f) for f in iter_python_files(paths)]
    raw: list[Finding] = []
    for ctx in contexts:
        for checker in MODULE_CHECKERS:
            raw.extend(checker(ctx))
    for project_check in PROJECT_CHECKERS:
        raw.extend(project_check(contexts))
    if flow:
        from .flow import flow_findings

        raw.extend(flow_findings(contexts))

    result = LintResult(files=len(contexts))
    for finding in sorted(raw, key=lambda f: f.sort_key):
        if selected is not None and finding.code not in selected:
            continue
        if ignored is not None and finding.code in ignored:
            continue
        if finding.suppressed:
            result.suppressed.append(finding)
        else:
            result.findings.append(finding)
    return result


def strip_suppression(finding: Finding) -> Finding:
    """A copy of ``finding`` with suppression cleared (capability counts
    treat acknowledged sites exactly like unacknowledged ones)."""
    return replace(finding, suppressed=False, suppression_reason=None)
