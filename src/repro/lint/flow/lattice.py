"""The static fan-out lattice ``{0, const k, O(num_ports), ⊤}``.

Every send site in a handler contributes a :class:`FanOut`: how many
messages one activation of that handler can emit through the site.  The
lattice has three shapes:

* ``CONST`` — an exact integer (straight-line sends, constant-range
  loops).  ``FanOut.const(2)`` means "exactly up to 2".
* ``LINEAR`` — ``coeff·num_ports + const``: the send sits in a loop whose
  trip count is bounded by the node degree (``range(num_ports)``,
  ``range(self.k)`` with ``k ≤ N-1``, scans over port-derived state).
* ``TOP`` — no static bound (``while True``, recursion through the call
  graph).

``add`` models sequential composition, ``join`` models branch merge
(pointwise maximum), ``times`` models loop nesting.  ``bound(num_ports)``
evaluates the symbolic shape to a concrete message count for the runtime
conformance probe; ``TOP`` has no finite bound and returns ``None``.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class _Shape(Enum):
    CONST = "const"
    LINEAR = "linear"
    TOP = "top"


@dataclass(frozen=True)
class FanOut:
    """One point of the fan-out lattice (immutable, value-compared)."""

    shape: _Shape
    coeff: int = 0  # multiples of num_ports (LINEAR only)
    const: int = 0  # additive constant term

    # -- constructors -------------------------------------------------------

    @staticmethod
    def zero() -> "FanOut":
        return FanOut(_Shape.CONST, 0, 0)

    @staticmethod
    def constant(count: int) -> "FanOut":
        return FanOut(_Shape.CONST, 0, max(0, count))

    @staticmethod
    def linear(coeff: int = 1, const: int = 0) -> "FanOut":
        return FanOut(_Shape.LINEAR, max(1, coeff), max(0, const))

    @staticmethod
    def top() -> "FanOut":
        return FanOut(_Shape.TOP)

    # -- predicates ---------------------------------------------------------

    @property
    def is_zero(self) -> bool:
        return self.shape is _Shape.CONST and self.const == 0

    @property
    def is_top(self) -> bool:
        return self.shape is _Shape.TOP

    @property
    def is_finite(self) -> bool:
        return self.shape is not _Shape.TOP

    # -- lattice operations -------------------------------------------------

    def add(self, other: "FanOut") -> "FanOut":
        """Sequential composition: both sites run in one activation."""
        if self.is_top or other.is_top:
            return FanOut.top()
        coeff = self.coeff + other.coeff
        const = self.const + other.const
        if coeff:
            return FanOut(_Shape.LINEAR, coeff, const)
        return FanOut(_Shape.CONST, 0, const)

    def join(self, other: "FanOut") -> "FanOut":
        """Branch merge: either side may run; take the pointwise maximum."""
        if self.is_top or other.is_top:
            return FanOut.top()
        coeff = max(self.coeff, other.coeff)
        const = max(self.const, other.const)
        if coeff:
            return FanOut(_Shape.LINEAR, coeff, const)
        return FanOut(_Shape.CONST, 0, const)

    def times(self, multiplier: "FanOut") -> "FanOut":
        """Loop nesting: the body repeats up to ``multiplier`` times.

        ``LINEAR × LINEAR`` would be quadratic in ``num_ports``; the
        lattice has no square term, so it widens to ``TOP`` — honest,
        because no handler in the paper's protocols nests degree-bounded
        send loops.
        """
        if self.is_zero or multiplier.is_zero:
            return FanOut.zero()
        if self.is_top or multiplier.is_top:
            return FanOut.top()
        if multiplier.shape is _Shape.CONST:
            if multiplier.coeff:  # pragma: no cover - CONST has coeff 0
                return FanOut.top()
            return FanOut(
                self.shape,
                self.coeff * multiplier.const,
                self.const * multiplier.const,
            )
        # multiplier is LINEAR
        if self.shape is _Shape.LINEAR:
            return FanOut.top()
        return FanOut(
            _Shape.LINEAR,
            multiplier.coeff * self.const,
            multiplier.const * self.const,
        )

    # -- evaluation ---------------------------------------------------------

    def bound(self, num_ports: int) -> int | None:
        """Concrete per-activation bound at degree ``num_ports``.

        ``None`` means unbounded (``TOP``).
        """
        if self.is_top:
            return None
        return self.coeff * num_ports + self.const

    # -- display ------------------------------------------------------------

    def describe(self) -> str:
        """Human-readable symbolic form (``3``, ``O(num_ports)+1``, ...)."""
        if self.is_top:
            return "unbounded"
        if self.shape is _Shape.CONST:
            return str(self.const)
        if self.const:
            return f"O(num_ports)+{self.const}"
        return "O(num_ports)"

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.describe()
