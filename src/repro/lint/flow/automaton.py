"""The per-protocol message-flow automaton.

One :class:`FlowAutomaton` summarises one concrete node class: for every
trigger — spontaneous wake-up (``"wake"``), each handled message kind, or
the app-layer leader hook (``"leader"``) — a :class:`HandlerFlow` records
which kinds one activation can send, through which port class, and with
what static fan-out.  On top of that sit the derived facts the rest of
the repo consumes:

* ``max_fanout`` — the join of all handler totals, the per-activation
  bound the runtime conformance probe enforces;
* ``quiescent_kinds`` — handled kinds whose handler provably sends
  nothing (pure sinks: state updates, stall absorbers);
* ``amplification_edges()`` — edges of the *must*-send kind graph that
  sit on a cycle with multiplying product, i.e. potential message
  explosion (RPL030);
* ``uses_timers`` / ``uses_rng`` — behavioural capabilities v2.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Mapping, Sequence

from ..core import ModuleContext
from .extract import (
    Analyzer,
    ClassInfo,
    Effects,
    SendRecord,
    Universe,
    build_universe,
    scan_uses_ctx_rng,
    scan_uses_rng,
    scan_uses_timers,
)
from .lattice import FanOut

#: Automaton triggers that are not message kinds.
WAKE = "wake"
LEADER = "leader"


@dataclass(frozen=True)
class FlowSend:
    """One send surface of a handler, ready for display."""

    kinds: tuple[str, ...]
    port_class: str
    fanout: FanOut

    def to_dict(self) -> dict:
        """JSON-ready shape for the ``analyze`` report."""
        return {
            "kinds": list(self.kinds),
            "port_class": self.port_class,
            "fanout": self.fanout.describe(),
        }


@dataclass(frozen=True)
class HandlerFlow:
    """Everything one trigger of the automaton can do."""

    trigger: str
    sends: tuple[FlowSend, ...]
    may: tuple[tuple[str, FanOut], ...]
    must: tuple[tuple[str, int], ...]
    total: FanOut
    records: tuple[SendRecord, ...]  # raw sites, for the rule family

    @property
    def quiescent(self) -> bool:
        return self.total.is_zero

    def may_map(self) -> dict[str, FanOut]:
        """Kind -> worst-case fan-out for everything this trigger *may* send."""
        return dict(self.may)

    def must_map(self) -> dict[str, int]:
        """Kind -> guaranteed count for everything this trigger *must* send."""
        return dict(self.must)

    def bound(self, num_ports: int) -> int | None:
        """Concrete per-activation send bound at ``num_ports`` (None if ⊤)."""
        return self.total.bound(num_ports)

    def to_dict(self) -> dict:
        """JSON-ready shape for the ``analyze`` report."""
        return {
            "sends": [send.to_dict() for send in self.sends],
            "fanout": self.total.describe(),
        }


@dataclass(frozen=True)
class AmplificationEdge:
    """A must-send edge on a multiplying kind cycle."""

    trigger: str
    kind: str
    count: int
    cycle: tuple[str, ...]


@dataclass(frozen=True)
class FlowAutomaton:
    """The message-flow summary of one concrete node class."""

    node_class: str
    path: Path
    protocol: str | None
    handlers: Mapping[str, HandlerFlow]
    uses_timers: bool
    uses_rng: bool
    uses_ctx_rng: bool = False

    @property
    def max_fanout(self) -> FanOut:
        total = FanOut.zero()
        for flow in self.handlers.values():
            total = total.join(flow.total)
        return total

    @property
    def quiescent_kinds(self) -> tuple[str, ...]:
        return tuple(
            sorted(
                trigger
                for trigger, flow in self.handlers.items()
                if trigger not in (WAKE, LEADER) and flow.quiescent
            )
        )

    @property
    def handled_kinds(self) -> tuple[str, ...]:
        return tuple(
            sorted(t for t in self.handlers if t not in (WAKE, LEADER))
        )

    def amplification_edges(self) -> list[AmplificationEdge]:
        """Must-graph edges with count ≥ 2 inside a kind-graph cycle.

        Every must-edge has count ≥ 1, so a cycle's product fan-out
        exceeds 1 exactly when some edge on it multiplies.  Using the
        *must* counts (sends every execution path performs) keeps real
        protocols clean: a contest ladder that can bounce a kind back
        also has losing/terminating branches, so its guaranteed fan-out
        per traversal stays ≤ 1.
        """
        graph: dict[str, dict[str, int]] = {}
        for trigger, flow in self.handlers.items():
            if trigger in (WAKE, LEADER):
                continue
            for kind, count in flow.must:
                if kind in self.handlers:
                    graph.setdefault(trigger, {})[kind] = count
        edges: list[AmplificationEdge] = []
        for component in _strongly_connected(graph):
            members = set(component)
            cyclic = len(component) > 1 or any(
                src in graph.get(src, {}) for src in component
            )
            if not cyclic:
                continue
            for src in component:
                for dst, count in graph.get(src, {}).items():
                    if dst in members and count >= 2:
                        edges.append(
                            AmplificationEdge(
                                trigger=src,
                                kind=dst,
                                count=count,
                                cycle=tuple(sorted(members)),
                            )
                        )
        return sorted(edges, key=lambda e: (e.trigger, e.kind))

    def to_dict(self, num_ports: int | None = None) -> dict:
        """JSON-ready automaton summary, optionally bound at ``num_ports``."""
        payload: dict = {
            "node_class": self.node_class,
            "max_fanout": self.max_fanout.describe(),
            "quiescent_kinds": list(self.quiescent_kinds),
            "uses_timers": self.uses_timers,
            "uses_rng": self.uses_rng,
            "uses_ctx_rng": self.uses_ctx_rng,
            "handlers": {
                trigger: flow.to_dict()
                for trigger, flow in sorted(self.handlers.items())
            },
        }
        if self.protocol is not None:
            payload["protocol"] = self.protocol
        if num_ports is not None:
            payload["bound_at_num_ports"] = {
                "num_ports": num_ports,
                "max_messages_per_activation": self.max_fanout.bound(
                    num_ports
                ),
            }
        return payload


def _strongly_connected(
    graph: Mapping[str, Mapping[str, int]]
) -> list[list[str]]:
    """Tarjan's SCC over the kind graph (iterative, graphs are tiny)."""
    nodes = sorted(set(graph) | {d for e in graph.values() for d in e})
    index: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    components: list[list[str]] = []
    counter = [0]

    def visit(root: str) -> None:
        work: list[tuple[str, list[str], int]] = [
            (root, sorted(graph.get(root, {})), 0)
        ]
        index[root] = low[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, successors, cursor = work.pop()
            advanced = False
            while cursor < len(successors):
                succ = successors[cursor]
                cursor += 1
                if succ not in index:
                    work.append((node, successors, cursor))
                    index[succ] = low[succ] = counter[0]
                    counter[0] += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, sorted(graph.get(succ, {})), 0))
                    advanced = True
                    break
                if succ in on_stack:
                    low[node] = min(low[node], index[succ])
            if advanced:
                continue
            if low[node] == index[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                components.append(sorted(component))
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])

    for node in nodes:
        if node not in index:
            visit(node)
    return components


# ---------------------------------------------------------------------------
# Building automata.
# ---------------------------------------------------------------------------


def _handler_flow(trigger: str, effects: Effects) -> HandlerFlow:
    sends = tuple(
        sorted(
            {
                FlowSend(
                    kinds=record.kinds,
                    port_class=record.port_class,
                    fanout=record.fanout,
                )
                for record in effects.sites
                if not record.fanout.is_zero
            },
            key=lambda s: (s.kinds, s.port_class, s.fanout.describe()),
        )
    )
    return HandlerFlow(
        trigger=trigger,
        sends=sends,
        may=effects.may,
        must=effects.must,
        total=effects.total,
        records=effects.sites,
    )


def _framework_path(path: Path) -> bool:
    parts = path.parts
    for index, part in enumerate(parts):
        if part == "repro" and index + 1 < len(parts):
            return parts[index + 1] in ("core", "topology")
    return False


def _capability_trees(
    universe: Universe, class_name: str
) -> tuple[list[ast.AST], list[ast.Module]]:
    """(MRO class subtrees, defining non-framework module trees)."""
    subtrees: list[ast.AST] = []
    module_trees: list[ast.Module] = []
    seen_paths: set[Path] = set()
    trees_by_path = {path: tree for path, tree, _ in universe.files}
    for name in universe.mro(class_name):
        info = universe.classes.get(name)
        if info is None:
            continue
        subtrees.append(info.node)
        if info.path not in seen_paths and not _framework_path(info.path):
            seen_paths.add(info.path)
            tree = trees_by_path.get(info.path)
            if tree is not None:
                module_trees.append(tree)
    return subtrees, module_trees


def analyze_node_class(
    universe: Universe,
    class_name: str,
    *,
    analyzer: Analyzer | None = None,
    protocol: str | None = None,
) -> FlowAutomaton:
    """Summarise one concrete node class of the universe."""
    if analyzer is None:
        analyzer = Analyzer(universe)
    info = universe.classes[class_name]
    handlers: dict[str, HandlerFlow] = {}
    if analyzer.has_entry(class_name, "on_wake"):
        handlers[WAKE] = _handler_flow(
            WAKE, analyzer.wake_effects(class_name)
        )
    for kind in sorted(universe.handled_kinds(class_name)):
        handlers[kind] = _handler_flow(
            kind, analyzer.message_effects(class_name, kind)
        )
    if analyzer.has_entry(class_name, "on_leader_elected"):
        handlers[LEADER] = _handler_flow(
            LEADER, analyzer.leader_effects(class_name)
        )
    subtrees, module_trees = _capability_trees(universe, class_name)
    return FlowAutomaton(
        node_class=class_name,
        path=info.path,
        protocol=protocol,
        handlers=handlers,
        uses_timers=scan_uses_timers(subtrees),
        uses_rng=scan_uses_rng(module_trees),
        uses_ctx_rng=scan_uses_ctx_rng(subtrees),
    )


def _most_derived_node_class(universe: Universe) -> ClassInfo | None:
    """The node class no other target class derives from."""
    candidates = universe.node_classes()
    if not candidates:
        return None
    derived_from: set[str] = set()
    for info in candidates:
        derived_from.update(universe.mro(info.name)[1:])
    leaves = [c for c in candidates if c.name not in derived_from]
    return leaves[0] if leaves else candidates[0]


def analyze_protocol(protocol_cls: type) -> FlowAutomaton:
    """Automaton of one registered protocol's node class.

    The universe is the protocol's implementation modules (its class MRO
    plus the node-class MRO, framework layers excluded — the same module
    resolution capabilities v1 uses) closed over their ``repro.*``
    imports.
    """
    from ..capabilities import (
        _module_source_file,
        _node_class,
        implementation_modules,
    )

    paths = []
    for module_name in implementation_modules(protocol_cls):
        path = _module_source_file(module_name)
        if path is not None:
            paths.append(path)
    contexts = [ModuleContext(path) for path in sorted(set(paths))]
    universe = build_universe(contexts)
    node_cls = _node_class(protocol_cls)
    name: str | None = None
    if node_cls is not None and node_cls.__name__ in universe.classes:
        name = node_cls.__name__
    else:
        leaf = _most_derived_node_class(universe)
        if leaf is not None:
            name = leaf.name
    if name is None:
        raise ValueError(
            f"no node class found for protocol {protocol_cls!r}"
        )
    return analyze_node_class(
        universe,
        name,
        protocol=getattr(protocol_cls, "name", protocol_cls.__name__),
    )


def analyze_registered_protocols() -> dict[str, FlowAutomaton]:
    """Automata for every registered protocol, keyed by protocol name."""
    import repro  # noqa: F401  (importing repro registers all protocols)
    from repro.core.protocol import registered_protocols

    return {
        name: analyze_protocol(cls)
        for name, cls in sorted(registered_protocols().items())
    }


def analyze_targets(
    contexts: Sequence[ModuleContext],
) -> tuple[Universe, list[FlowAutomaton]]:
    """Automata for every concrete node class in the lint targets."""
    universe = build_universe(contexts)
    analyzer = Analyzer(universe)
    automata = []
    for info in universe.node_classes():
        automata.append(
            analyze_node_class(universe, info.name, analyzer=analyzer)
        )
    return universe, automata
