"""``python -m repro analyze`` — static message-complexity bounds.

For every registered protocol (or one, with ``--protocol``) this derives
the message-flow automaton and reports the per-activation fan-out bound
next to the paper's total message bound.  The consistency contract the
exit code enforces:

* every handler has a **finite** static fan-out (no ``⊤``), and
* the must-send kind graph has **no amplification cycle**,

which is exactly what the paper's O(N)/O(N log N) message table
presupposes — a protocol whose activations can emit unboundedly many
messages, or whose kind graph multiplies on every traversal, admits no
such bound.  Exit 0 when every analyzed protocol is consistent, 1
otherwise, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from .automaton import FlowAutomaton, analyze_protocol

#: The paper's total message bounds (docs/protocols.md), per protocol.
#: ``k`` is the protocol's window parameter, ``f`` the failure budget.
PAPER_MESSAGE_BOUNDS = {
    "A": "O(N + N^2/k^2)",
    "A'": "O(N)",
    "AG85": "O(N log N)",
    "B": "O(N log N)",
    "C": "O(N)",
    "CR": "O(N log N) exp.",
    "D": "O(N^2)",
    "E": "O(N log N)",
    "F": "O(Nk)",
    "FT": "O(Nf + N log N)",
    "G": "O(Nk)",
    "HS": "O(N log N)",
    "LMW86": "O(N)",
    "R": "O(N log N)",
    # The randomized family (docs/randomized.md): bounds hold w.h.p.,
    # not worst-case — `verify --stat` samples the tail probability.
    "RS": "O(sqrt(N) log^1.5 N) whp",
    "RT": "O(sqrt(N) log^1.5 N) whp",
}


def is_consistent(automaton: FlowAutomaton) -> bool:
    """Does the automaton admit the paper's finite message bounds?"""
    return automaton.max_fanout.is_finite and not (
        automaton.amplification_edges()
    )


def _protocol_row(name: str, automaton: FlowAutomaton, n: int) -> dict:
    bound = automaton.max_fanout.bound(n - 1)
    return {
        "protocol": name,
        "node_class": automaton.node_class,
        "max_fanout": automaton.max_fanout.describe(),
        "bound_at_n": bound,
        "paper_bound": PAPER_MESSAGE_BOUNDS.get(name, "?"),
        "amplification_cycles": len(automaton.amplification_edges()),
        "quiescent_kinds": list(automaton.quiescent_kinds),
        "uses_timers": automaton.uses_timers,
        "uses_rng": automaton.uses_rng,
        "consistent": is_consistent(automaton),
    }


def build_parser(prog: str = "repro analyze") -> argparse.ArgumentParser:
    """The ``repro analyze`` argument parser."""
    parser = argparse.ArgumentParser(
        prog=prog,
        description=(
            "Derive static per-activation message bounds for the "
            "registered protocols and check them against the paper's "
            "complexity table. See docs/lint.md."
        ),
    )
    parser.add_argument(
        "--protocol",
        default=None,
        help="analyze one protocol in detail (default: summary of all)",
    )
    parser.add_argument(
        "--n",
        type=int,
        default=64,
        help="network size at which to evaluate the symbolic bound "
        "(default: 64)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point for ``python -m repro analyze``."""
    from repro.analysis.tables import render_table
    from repro.core.protocol import registered_protocols

    parser = build_parser()
    options = parser.parse_args(argv)
    if options.n < 2:
        print("repro analyze: error: --n must be at least 2",
              file=sys.stderr)
        return 2

    protocols = registered_protocols()
    if options.protocol is not None:
        if options.protocol not in protocols:
            print(
                f"repro analyze: error: unknown protocol "
                f"{options.protocol!r}; known: "
                f"{', '.join(sorted(protocols))}",
                file=sys.stderr,
            )
            return 2
        names = [options.protocol]
    else:
        names = sorted(protocols)

    automata = {name: analyze_protocol(protocols[name]) for name in names}
    rows = [
        _protocol_row(name, automata[name], options.n) for name in names
    ]
    all_consistent = all(row["consistent"] for row in rows)

    if options.format == "json":
        payload: dict = {
            "n": options.n,
            "consistent": all_consistent,
            "protocols": {row["protocol"]: row for row in rows},
        }
        if options.protocol is not None:
            payload["automaton"] = automata[options.protocol].to_dict(
                num_ports=options.n - 1
            )
        print(json.dumps(payload, indent=2))
        return 0 if all_consistent else 1

    print(
        render_table(
            (
                "protocol",
                "max fan-out/activation",
                f"bound at N={options.n}",
                "paper total bound",
                "consistent",
            ),
            [
                (
                    row["protocol"],
                    row["max_fanout"],
                    "unbounded"
                    if row["bound_at_n"] is None
                    else str(row["bound_at_n"]),
                    row["paper_bound"],
                    "yes" if row["consistent"] else "NO",
                )
                for row in rows
            ],
        )
    )
    if options.protocol is not None:
        automaton = automata[options.protocol]
        print(f"\nnode class: {automaton.node_class}")
        print(f"uses_timers: {automaton.uses_timers}  "
              f"uses_rng: {automaton.uses_rng}")
        if automaton.quiescent_kinds:
            print("quiescent kinds: "
                  + ", ".join(automaton.quiescent_kinds))
        print("\nhandlers:")
        for trigger, flow in sorted(automaton.handlers.items()):
            print(f"  {trigger}: fan-out {flow.total.describe()}")
            for send in flow.sends:
                kinds = "|".join(send.kinds)
                print(
                    f"    -> {kinds} via {send.port_class} port "
                    f"(x{send.fanout.describe()})"
                )
        for edge in automaton.amplification_edges():
            cycle = " -> ".join(edge.cycle + (edge.cycle[0],))
            print(
                f"  AMPLIFICATION [{cycle}]: {edge.trigger} always "
                f"sends {edge.count}x {edge.kind}"
            )
    if not all_consistent:
        bad = ", ".join(r["protocol"] for r in rows if not r["consistent"])
        print(
            f"\ninconsistent with the paper's bounds: {bad}",
            file=sys.stderr,
        )
    return 0 if all_consistent else 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
