"""The RPL03x flow rule family.

Unlike RPL010-012 (name-level liveness), these rules consume the
interprocedural automata, so they are *opt-in*: ``lint_paths(...,
flow=True)`` / ``repro lint --flow`` runs them on top of the default
families.  The codes are registered at import time either way, so
``--select RPL030`` validates even without ``--flow``.

* **RPL030 amplification-cycle** — a cycle in the must-send kind graph
  whose product fan-out exceeds 1: every traversal of the cycle
  multiplies the message population, a statically provable
  explosion/livelock.
* **RPL031 dead-handler** — a dispatch arm for a kind nothing in the
  analyzed universe constructs, or a ``match`` arm that can never be
  reached (after a wildcard, or duplicating an earlier unguarded class
  arm).
* **RPL032 unbounded-fanout** — a send site whose static fan-out is ``⊤``
  (a ``while True`` send loop, recursion through the call graph): the
  conformance probe cannot bound it and the paper's complexity table
  cannot admit it.
"""

from __future__ import annotations

import ast
from typing import Iterable, Sequence

from ..core import Finding, ModuleContext, rule, terminal_name
from .automaton import LEADER, WAKE, FlowAutomaton, analyze_targets
from .extract import Universe

AMPLIFICATION = rule(
    "RPL030",
    "amplification-cycle",
    "flow",
    "A kind-graph cycle whose guaranteed fan-out product exceeds 1: "
    "every traversal multiplies the message population.",
)

DEAD_HANDLER = rule(
    "RPL031",
    "dead-handler",
    "flow",
    "A dispatch arm that can never run: its kind is constructed nowhere "
    "in the analyzed universe, or the arm is shadowed by an earlier one.",
)

UNBOUNDED_FANOUT = rule(
    "RPL032",
    "unbounded-fanout",
    "flow",
    "A send site with no static fan-out bound (unbounded loop or "
    "recursion); the conformance probe cannot check it.",
)


def flow_findings(contexts: Sequence[ModuleContext]) -> list[Finding]:
    """Run the flow rule family over the lint targets."""
    universe, automata = analyze_targets(contexts)
    findings: list[Finding] = []
    findings.extend(_amplification_findings(automata))
    findings.extend(_dead_handler_findings(universe, automata))
    findings.extend(_unreachable_arm_findings(contexts))
    findings.extend(_unbounded_findings(automata))
    return findings


# ---------------------------------------------------------------------------
# RPL030 — amplification cycles.
# ---------------------------------------------------------------------------


def _amplification_findings(
    automata: Sequence[FlowAutomaton],
) -> Iterable[Finding]:
    seen: set[tuple] = set()
    for automaton in automata:
        for edge in automaton.amplification_edges():
            flow = automaton.handlers[edge.trigger]
            anchor = None
            for record in flow.records:
                if record.module is not None and record.kinds == (edge.kind,):
                    anchor = record
                    break
            if anchor is None:
                continue  # cycle closes through support files only
            key = (
                anchor.module.display,
                anchor.call.lineno,
                edge.trigger,
                edge.kind,
            )
            if key in seen:
                continue
            seen.add(key)
            cycle = " -> ".join(edge.cycle + (edge.cycle[0],))
            yield anchor.module.finding(
                AMPLIFICATION.code,
                anchor.call,
                f"amplification cycle [{cycle}]: handling {edge.trigger} "
                f"always sends {edge.count}x {edge.kind} "
                f"({automaton.node_class})",
            )


# ---------------------------------------------------------------------------
# RPL031 — dead handlers and unreachable arms.
# ---------------------------------------------------------------------------


def _dead_handler_findings(
    universe: Universe, automata: Sequence[FlowAutomaton]
) -> Iterable[Finding]:
    seen: set[tuple] = set()
    for automaton in automata:
        for kind in automaton.handled_kinds:
            if kind in universe.loose_sent:
                continue
            anchor = _find_dispatch_arm(universe, automaton.node_class, kind)
            if anchor is None:
                continue
            ctx, node = anchor
            key = (ctx.display, node.lineno, kind)
            if key in seen:
                continue
            seen.add(key)
            yield ctx.finding(
                DEAD_HANDLER.code,
                node,
                f"handler arm for {kind} is dead: nothing in the analyzed "
                f"universe constructs {kind}",
            )


def _find_dispatch_arm(
    universe: Universe, class_name: str, kind: str
) -> tuple[ModuleContext, ast.AST] | None:
    """The dispatch site for ``kind``, preferring an exact-name arm."""
    fallback: tuple[ModuleContext, ast.AST] | None = None
    for name in universe.mro(class_name):
        info = universe.classes.get(name)
        if info is None or info.module is None:
            continue
        for func in info.methods.values():
            for node in ast.walk(func):
                matched: str | None = None
                if isinstance(node, ast.MatchClass):
                    matched = terminal_name(node.cls)
                elif (
                    isinstance(node, ast.Call)
                    and terminal_name(node.func) == "isinstance"
                    and len(node.args) == 2
                ):
                    spec = node.args[1]
                    elts = (
                        spec.elts if isinstance(spec, ast.Tuple) else [spec]
                    )
                    for elt in elts:
                        elt_name = terminal_name(elt)
                        if elt_name == kind or (
                            elt_name is not None
                            and universe.is_message_subclass(kind, elt_name)
                        ):
                            matched = elt_name
                            break
                if matched is None:
                    continue
                if matched == kind:
                    return info.module, node
                if fallback is None and universe.is_message_subclass(
                    kind, matched
                ):
                    fallback = (info.module, node)
        if fallback is None and kind in info.app_messages:
            fallback = (info.module, info.node)
    return fallback


def _unreachable_arm_findings(
    contexts: Sequence[ModuleContext],
) -> Iterable[Finding]:
    # A wildcard arm before the end is already a SyntaxError in Python,
    # so the only statically unreachable arm a parseable file can contain
    # is one repeating an earlier unguarded class pattern.
    for ctx in contexts:
        for match in ast.walk(ctx.tree):
            if not isinstance(match, ast.Match):
                continue
            seen_classes: set[str] = set()
            for case in match.cases:
                pattern = case.pattern
                if not isinstance(pattern, ast.MatchClass):
                    continue
                name = terminal_name(pattern.cls)
                if name is None:
                    continue
                if name in seen_classes and case.guard is None:
                    yield ctx.finding(
                        DEAD_HANDLER.code,
                        pattern,
                        f"match arm is unreachable: an earlier unguarded "
                        f"arm already matches {name}",
                    )
                    continue
                if case.guard is None:
                    seen_classes.add(name)


# ---------------------------------------------------------------------------
# RPL032 — unbounded fan-out.
# ---------------------------------------------------------------------------


def _unbounded_findings(
    automata: Sequence[FlowAutomaton],
) -> Iterable[Finding]:
    seen: set[tuple] = set()
    for automaton in automata:
        for trigger, flow in sorted(automaton.handlers.items()):
            if flow.total.is_finite:
                continue
            for record in flow.records:
                if record.module is None or not record.fanout.is_top:
                    continue
                key = (record.module.display, record.call.lineno,
                       record.call.col_offset)
                if key in seen:
                    continue
                seen.add(key)
                label = {
                    WAKE: "spontaneous wake-up",
                    LEADER: "leader election",
                }.get(trigger, f"messages of kind {trigger}")
                yield record.module.finding(
                    UNBOUNDED_FANOUT.code,
                    record.call,
                    f"send has no static fan-out bound while handling "
                    f"{label} ({automaton.node_class})",
                )
