"""Runtime conformance probe: measured fan-out vs. the static bound.

The flow analyzer (:mod:`repro.lint.flow`) derives, per handler, a
symbolic per-activation send bound in the :class:`~repro.lint.flow.FanOut`
lattice.  That derivation is only useful if the running code actually
respects it — an obfuscated send (``getattr(ctx, "se" + "nd")``) or an
analyzer bug would make the static table a fiction.  This probe closes
the loop: it instruments every node of a real :class:`~repro.sim.network.
Network`, runs one benign election, and records the number of messages
each single activation (one ``on_wake`` or one ``on_message`` call)
pushed onto the wire, keyed by its trigger (``"wake"`` or the delivered
message's ``type_name``).  The measured maxima must not exceed the
static bounds evaluated at the topology's ``num_ports``.

The probe is *sound in one direction only*: it can refute a static bound
(measured > bound is always a real violation — every counted send
happened), but a clean run does not prove the bound tight or even
correct, since one schedule at one size exercises one path.  That is
exactly the right asymmetry for a conformance gate, and it is why the
probe runs inside ``python -m repro check --all`` (phase 6) rather than
replacing the analyzer.

Instrumentation detail: the wrappers go on ``on_wake``/``on_message``
(the protocol hooks), **not** ``wake``/``receive`` (the runtime entry
points).  ``receive`` on a sleeping node calls ``wake`` internally; the
hook-level wrappers attribute the wake-up sends to ``"wake"`` and only
the subsequent handler sends to the message kind, matching how the
analyzer splits the effects.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from .automaton import WAKE, FlowAutomaton

if TYPE_CHECKING:
    from repro.core.node import Node
    from repro.sim.network import Network

#: Default probe size: small enough that every protocol finishes in
#: milliseconds, a power of two so the tournament protocols (B, C)
#: accept it, and large enough that O(num_ports) bounds are not
#: accidentally satisfied by constant behaviour.
PROBE_N = 8


def _instrument_node(
    node: "Node", network: "Network", measured: dict[str, int]
) -> None:
    """Wrap one node's protocol hooks to record per-activation fan-out.

    ``measured`` maps trigger key -> max messages sent by one activation
    with that trigger, aggregated across all nodes of the network.
    """
    original_wake = node.on_wake
    original_message = node.on_message

    def on_wake(spontaneous: bool) -> None:
        before = network._messages_total
        original_wake(spontaneous)
        delta = network._messages_total - before
        if delta > measured.get(WAKE, -1):
            measured[WAKE] = delta

    def on_message(port: int, message: Any) -> None:
        before = network._messages_total
        original_message(port, message)
        delta = network._messages_total - before
        kind = message.type_name
        if delta > measured.get(kind, -1):
            measured[kind] = delta

    # Instance attributes shadow the class methods; the runtime entry
    # points (wake/receive) dispatch through ``self.on_*`` and pick the
    # wrappers up transparently.
    node.on_wake = on_wake  # type: ignore[method-assign]
    node.on_message = on_message  # type: ignore[method-assign]


def _trigger_bound(
    automaton: FlowAutomaton, trigger: str, num_ports: int
) -> int | None:
    """Static bound for one trigger at ``num_ports`` (None = unbounded).

    A trigger the automaton never saw (a kind with no matching handler
    arm, delivered anyway) falls back to the automaton-wide maximum so
    the probe still has *a* bound to hold the runtime to.
    """
    flow = automaton.handlers.get(trigger)
    if flow is not None:
        return flow.bound(num_ports)
    return automaton.max_fanout.bound(num_ports)


def probe_protocol_instance(
    protocol: Any,
    automaton: FlowAutomaton,
    *,
    n: int = PROBE_N,
    seed: int = 0,
) -> dict[str, Any]:
    """Run one instrumented benign election and compare against bounds.

    Returns a JSON-ready verdict.  The payload deliberately contains no
    wall-clock times and no worker counts: it is embedded in the
    ``check --all`` digest, which must be schedule-host-deterministic.
    """
    from repro.sim.network import Network
    from repro.topology.complete import (
        complete_with_sense_of_direction,
        complete_without_sense,
    )

    topology = (
        complete_with_sense_of_direction(n)
        if protocol.needs_sense_of_direction
        else complete_without_sense(n, seed=0)
    )
    network = Network(protocol, topology, seed=seed)
    measured: dict[str, int] = {}
    for node in network.nodes:
        _instrument_node(node, network, measured)
    result = network.run()

    num_ports = topology.num_ports
    per_trigger: dict[str, dict[str, Any]] = {}
    violations: list[dict[str, Any]] = []
    for trigger in sorted(measured):
        bound = _trigger_bound(automaton, trigger, num_ports)
        observed = measured[trigger]
        per_trigger[trigger] = {"measured": observed, "bound": bound}
        if bound is not None and observed > bound:
            violations.append(
                {"trigger": trigger, "measured": observed, "bound": bound}
            )
    return {
        "n": n,
        "num_ports": num_ports,
        "max_fanout": automaton.max_fanout.describe(),
        "static_bound": automaton.max_fanout.bound(num_ports),
        "measured_max": max(measured.values(), default=0),
        "leader_id": result.leader_id,
        "messages_total": result.messages_total,
        "per_trigger": per_trigger,
        "violations": violations,
        "ok": not violations,
    }


def probe_protocol_class(
    protocol_cls: type, *, n: int = PROBE_N, seed: int = 0
) -> dict[str, Any]:
    """Analyze + probe one protocol class (used by tests for fixtures)."""
    from .automaton import analyze_protocol

    automaton = analyze_protocol(protocol_cls)
    return probe_protocol_instance(protocol_cls(), automaton, n=n, seed=seed)


def conformance_task(protocol_name: str, *, n: int = PROBE_N) -> dict[str, Any]:
    """One probe task for ``check --all`` (runs inside the fork pool)."""
    from repro.core.protocol import protocol_class

    return probe_protocol_class(protocol_class(protocol_name), n=n)
