"""Interprocedural protocol-flow analysis (``repro lint --flow`` / ``repro analyze``).

The RPL01x rules see *names*: a kind that is constructed somewhere and
matched somewhere is "alive", no matter how the construction and the match
relate.  This package sees *flow*: it abstractly interprets the protocol
node classes — resolving helper calls, ``capture_base``/``common`` mixins,
``super().on_message`` chains and ``match``/``isinstance`` dispatch — into
a per-protocol **message-flow automaton** mapping each trigger (spontaneous
wake-up, or one matched message kind) to the set of kinds the handler can
send, the port class each send targets, and a static fan-out bound in the
lattice ``{0, const k, O(num_ports), ⊤}``.

On top of the automaton sit:

* the RPL03x rule family (:mod:`repro.lint.flow.rules`) — amplification
  cycles, dead/unreachable handler surface, unbounded fan-out;
* the capabilities-v2 fields (``uses_timers``, ``uses_rng``,
  ``max_fanout``, ``quiescent_kinds``) consumed by the symmetry prune
  gate, the sharded kernel and the matrix loader;
* the runtime conformance probe (:mod:`repro.lint.flow.conformance`)
  that ``repro check --all`` runs: measured per-activation fan-out must
  not exceed the static bound.
"""

from __future__ import annotations

from .automaton import (
    FlowAutomaton,
    HandlerFlow,
    analyze_node_class,
    analyze_protocol,
    analyze_registered_protocols,
)
from .lattice import FanOut
from .rules import flow_findings

__all__ = [
    "FanOut",
    "FlowAutomaton",
    "HandlerFlow",
    "analyze_node_class",
    "analyze_protocol",
    "analyze_registered_protocols",
    "flow_findings",
]
