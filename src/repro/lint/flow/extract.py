"""AST extraction and interprocedural effect summaries.

The analyzer works on a *universe* of parsed files — the lint targets plus
the transitive closure of their ``repro.*`` imports — so that layered
protocols resolve: ``capture_base`` defines ``claim``/``_forward``, the
concrete protocol modules match the kinds, ``common.py`` holds the role
vocabulary, and ``super().on_message(...)`` chains walk an approximated
MRO built from class names.

For one concrete node class and one trigger (``"wake"`` or a message
kind), :class:`Analyzer` abstractly interprets the dispatched handler:

* sequential statements **add** fan-outs, branches **join** (pointwise
  max), loops **multiply** by a classified trip count;
* ``match``/``isinstance`` dispatch over the bound message kind selects
  the matching arm only, so per-kind summaries stay precise;
* helper calls (``self.claim(...)``, module functions) inline the callee's
  summary, with message-kind bindings flowing through arguments and
  ``make_reply``-style factories contributing their *return kinds*;
* alongside the ``may`` fan-out (worst case, used for bounds) the
  interpreter tracks a ``must`` count — messages **every** execution of
  the handler emits — which is what amplification-cycle detection needs:
  a cycle only explodes when every traversal multiplies, and any
  terminating branch (a contest loss, a guard return) breaks the cycle.

Recursion through the call graph widens the whole summary to ``⊤``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Callable, Iterable, Sequence

from ..core import ModuleContext, dotted_name, terminal_name
from .lattice import FanOut

#: Modules whose imports seed the universe closure.
_REPRO_PREFIX = "repro"

#: Entropy modules whose import marks a protocol as randomized.
RNG_MODULES = {"random", "secrets", "uuid"}


# ---------------------------------------------------------------------------
# Effects: the abstract value one statement/handler evaluates to.
# ---------------------------------------------------------------------------


#: Kind used for sends whose message expression could not be resolved.
UNKNOWN_KIND = "?"


@dataclass(frozen=True)
class SendRecord:
    """One ``ctx.send`` site, scaled by its enclosing loops."""

    call: ast.Call
    module: ModuleContext | None  # None when the site is in a support file
    kinds: tuple[str, ...]
    port_class: str
    fanout: FanOut

    def scale(self, multiplier: FanOut) -> "SendRecord":
        """This site with its fan-out multiplied by an enclosing loop."""
        return replace(self, fanout=self.fanout.times(multiplier))


@dataclass(frozen=True)
class Effects:
    """May/must fan-out per kind, total fan-out, and the send sites."""

    may: tuple[tuple[str, FanOut], ...] = ()
    must: tuple[tuple[str, int], ...] = ()
    total: FanOut = field(default_factory=FanOut.zero)
    sites: tuple[SendRecord, ...] = ()
    recursive: bool = False

    @staticmethod
    def empty() -> "Effects":
        return _EMPTY

    @staticmethod
    def send(record: SendRecord) -> "Effects":
        may = tuple((kind, FanOut.constant(1)) for kind in record.kinds)
        # A send with several possible kinds guarantees *one of them*, not
        # any particular one — only single-kind sends produce must-flow.
        must = ((record.kinds[0], 1),) if len(record.kinds) == 1 else ()
        return Effects(
            may=may, must=must, total=FanOut.constant(1), sites=(record,)
        )

    def may_map(self) -> dict[str, FanOut]:
        """The ``may`` pairs as a dict (kind -> worst-case fan-out)."""
        return dict(self.may)

    def must_map(self) -> dict[str, int]:
        """The ``must`` pairs as a dict (kind -> guaranteed count)."""
        return dict(self.must)

    def seq(self, other: "Effects") -> "Effects":
        """Sequential composition: both happen, fan-outs add."""
        if other is _EMPTY:
            return self
        if self is _EMPTY:
            return other
        may = self.may_map()
        for kind, fan in other.may:
            may[kind] = may.get(kind, FanOut.zero()).add(fan)
        must = self.must_map()
        for kind, count in other.must:
            must[kind] = must.get(kind, 0) + count
        return Effects(
            may=tuple(sorted(may.items())),
            must=tuple(sorted(must.items())),
            total=self.total.add(other.total),
            sites=self.sites + other.sites,
            recursive=self.recursive or other.recursive,
        )

    def join(self, other: "Effects") -> "Effects":
        """Branch merge: ``may`` joins pointwise, ``must`` keeps the min."""
        may = self.may_map()
        for kind, fan in other.may:
            may[kind] = may.get(kind, FanOut.zero()).join(fan)
        ours, theirs = self.must_map(), other.must_map()
        must = {
            kind: min(ours.get(kind, 0), theirs.get(kind, 0))
            for kind in set(ours) | set(theirs)
        }
        return Effects(
            may=tuple(sorted(may.items())),
            must=tuple(sorted((k, c) for k, c in must.items() if c)),
            total=self.total.join(other.total),
            sites=self.sites + other.sites,
            recursive=self.recursive or other.recursive,
        )

    def scale(self, multiplier: FanOut, exact: int | None = None) -> "Effects":
        """Loop scaling; ``must`` survives only exact constant trip counts."""
        if self is _EMPTY:
            return self
        may = tuple(
            (kind, fan.times(multiplier)) for kind, fan in self.may
        )
        if exact is None:
            must: tuple[tuple[str, int], ...] = ()
        else:
            must = tuple(
                (kind, count * exact) for kind, count in self.must if count
            )
        return Effects(
            may=may,
            must=must,
            total=self.total.times(multiplier),
            sites=tuple(site.scale(multiplier) for site in self.sites),
            recursive=self.recursive,
        )

    def widened(self) -> "Effects":
        """Recursion detected somewhere below: nothing is bounded."""
        return replace(self.scale(FanOut.top()), recursive=False)


_EMPTY = Effects()


def join_all(items: Sequence[Effects]) -> Effects:
    """Fold :meth:`Effects.join` over ``items`` (empty -> no effects)."""
    if not items:
        return _EMPTY
    result = items[0]
    for item in items[1:]:
        result = result.join(item)
    return result


# ---------------------------------------------------------------------------
# The universe: parsed files, class tables, message classes.
# ---------------------------------------------------------------------------


@dataclass
class ClassInfo:
    """One class definition found in the universe."""

    name: str
    node: ast.ClassDef
    path: Path
    module: ModuleContext | None
    base_names: tuple[str, ...]
    methods: dict[str, ast.FunctionDef]
    app_messages: tuple[str, ...]


class Universe:
    """Every parsed file the analysis can see, indexed for resolution."""

    def __init__(
        self, targets: Sequence[ModuleContext], support: Sequence[tuple[Path, ast.Module]]
    ) -> None:
        self.targets = list(targets)
        self.files: list[tuple[Path, ast.Module, ModuleContext | None]] = [
            (ctx.path.resolve(), ctx.tree, ctx) for ctx in targets
        ]
        self.files.extend((path, tree, None) for path, tree in support)
        self.classes: dict[str, ClassInfo] = {}
        self.functions: dict[tuple[Path, str], ast.FunctionDef] = {}
        self.message_classes: set[str] = set()
        self.loose_sent: set[str] = set()
        self._mro_cache: dict[str, tuple[str, ...]] = {}
        for path, tree, module in self.files:
            self._index_file(path, tree, module)

    def _index_file(
        self, path: Path, tree: ast.Module, module: ModuleContext | None
    ) -> None:
        for stmt in tree.body:
            if isinstance(stmt, ast.ClassDef):
                self._index_class(stmt, path, module)
            elif isinstance(stmt, ast.FunctionDef):
                self.functions[(path, stmt.name)] = stmt
        for node in ast.walk(tree):
            if isinstance(node, ast.Call):
                name = terminal_name(node.func)
                if name is not None and name[:1].isupper():
                    self.loose_sent.add(name)

    def _index_class(
        self, stmt: ast.ClassDef, path: Path, module: ModuleContext | None
    ) -> None:
        bases = tuple(
            name
            for base in stmt.bases
            if (name := terminal_name(base)) is not None
        )
        methods: dict[str, ast.FunctionDef] = {}
        app_messages: list[str] = []
        for item in stmt.body:
            if isinstance(item, ast.FunctionDef):
                methods[item.name] = item
            elif isinstance(item, ast.Assign):
                for target in item.targets:
                    if (
                        isinstance(target, ast.Name)
                        and target.id == "APP_MESSAGES"
                        and isinstance(item.value, (ast.Tuple, ast.List))
                    ):
                        app_messages.extend(
                            name
                            for elt in item.value.elts
                            if (name := terminal_name(elt)) is not None
                        )
        info = ClassInfo(
            name=stmt.name,
            node=stmt,
            path=path,
            module=module,
            base_names=bases,
            methods=methods,
            app_messages=tuple(app_messages),
        )
        # First definition wins: target files shadow support files, which
        # matters when a fixture redefines a class name the repo also uses.
        self.classes.setdefault(stmt.name, info)
        if any(base.endswith("Message") for base in bases):
            self.message_classes.add(stmt.name)

    # -- class hierarchy ----------------------------------------------------

    def mro(self, class_name: str) -> tuple[str, ...]:
        """Left-to-right depth-first linearisation by class *name*.

        An approximation of Python's C3 that is exact for the single- and
        simple-multiple-inheritance shapes protocol code uses.
        """
        cached = self._mro_cache.get(class_name)
        if cached is not None:
            return cached
        order: list[str] = []
        stack = [class_name]
        seen: set[str] = set()
        while stack:
            name = stack.pop(0)
            if name in seen:
                continue
            seen.add(name)
            info = self.classes.get(name)
            if info is None:
                continue
            order.append(name)
            stack = list(info.base_names) + stack
        result = tuple(order)
        self._mro_cache[class_name] = result
        return result

    def is_message_subclass(self, kind: str, ancestor: str) -> bool:
        """Whether ``kind`` is ``ancestor`` or inherits from it."""
        if kind == ancestor:
            return True
        return ancestor in self.mro(kind)

    def node_classes(self) -> list[ClassInfo]:
        """Concrete node classes defined in *target* files."""
        result = []
        for info in self.classes.values():
            if info.module is None:
                continue
            chain = self.mro(info.name)
            last = self.classes.get(chain[-1]) if chain else None
            if last is not None and (
                last.name.endswith("Node")
                or any(b.endswith("Node") for b in last.base_names)
            ):
                result.append(info)
            elif any(name.endswith("Node") for name in chain[1:]) or any(
                b.endswith("Node") for b in info.base_names
            ):
                result.append(info)
        return sorted(result, key=lambda info: (str(info.path), info.name))

    def find_method(
        self, class_name: str, method: str, start: int = 0
    ) -> tuple[int, ClassInfo, ast.FunctionDef] | None:
        """Resolve ``method`` along ``class_name``'s MRO from ``start``."""
        chain = self.mro(class_name)
        for index in range(start, len(chain)):
            info = self.classes.get(chain[index])
            if info is not None and method in info.methods:
                return index, info, info.methods[method]
        return None

    def handled_kinds(self, class_name: str) -> set[str]:
        """Message kinds the class (or its mixins) dispatches on."""
        kinds: set[str] = set()
        for name in self.mro(class_name):
            info = self.classes.get(name)
            if info is None:
                continue
            kinds.update(
                k for k in info.app_messages if k in self.message_classes
            )
            for func in info.methods.values():
                for node in ast.walk(func):
                    if isinstance(node, ast.MatchClass):
                        matched = terminal_name(node.cls)
                        if matched in self.message_classes:
                            kinds.add(matched)
                    elif (
                        isinstance(node, ast.Call)
                        and terminal_name(node.func) == "isinstance"
                        and len(node.args) == 2
                    ):
                        spec = node.args[1]
                        elts = (
                            spec.elts
                            if isinstance(spec, ast.Tuple)
                            else [spec]
                        )
                        for elt in elts:
                            matched = terminal_name(elt)
                            if matched in self.message_classes:
                                kinds.add(matched)
        return kinds


def import_closure(
    seeds: Iterable[tuple[Path, ast.Module]],
) -> list[tuple[Path, ast.Module]]:
    """Transitive ``repro.*`` import closure of the seed files."""
    try:
        import repro
    except ImportError:  # pragma: no cover - repro is importable here
        return []
    root = Path(repro.__file__).resolve().parent
    seeds = list(seeds)
    seen = {path for path, _ in seeds}
    queue = [tree for _, tree in seeds]
    support: list[tuple[Path, ast.Module]] = []
    while queue:
        tree = queue.pop()
        for node in ast.walk(tree):
            modules: list[str] = []
            if isinstance(node, ast.Import):
                modules = [
                    a.name
                    for a in node.names
                    if a.name.startswith(_REPRO_PREFIX)
                ]
            elif isinstance(node, ast.ImportFrom) and node.module:
                if node.module.startswith(_REPRO_PREFIX):
                    modules = [node.module]
            for module in modules:
                rel = module.split(".")[1:]
                candidates = [
                    root.joinpath(*rel).with_suffix(".py"),
                    root.joinpath(*rel, "__init__.py"),
                ]
                for candidate in candidates:
                    if candidate.exists():
                        resolved = candidate.resolve()
                        if resolved in seen:
                            continue
                        seen.add(resolved)
                        try:
                            parsed = ast.parse(
                                resolved.read_text(), filename=str(resolved)
                            )
                        except SyntaxError:  # pragma: no cover
                            continue
                        support.append((resolved, parsed))
                        queue.append(parsed)
                        break
    return support


def build_universe(targets: Sequence[ModuleContext]) -> Universe:
    """Universe for a lint run: targets plus their import closure."""
    seeds = [(ctx.path.resolve(), ctx.tree) for ctx in targets]
    return Universe(targets, import_closure(seeds))


# ---------------------------------------------------------------------------
# Module-level behavioural scans (capabilities v2 raw facts).
# ---------------------------------------------------------------------------


def scan_uses_timers(trees: Iterable[ast.AST]) -> bool:
    """True when any tree arms a context timer (``...ctx.set_timer``)."""
    for tree in trees:
        for node in ast.walk(tree):
            if isinstance(node, ast.Call):
                dotted = dotted_name(node.func)
                if dotted is None:
                    continue
                parts = dotted.split(".")
                if parts[-1] == "set_timer" and "ctx" in parts:
                    return True
    return False


def scan_uses_ctx_rng(trees: Iterable[ast.AST]) -> bool:
    """True when any tree draws from the context stream (``...ctx.rng``).

    Distinct from :func:`scan_uses_rng` on purpose: ``ctx.rng()`` is the
    *seeded, per-node* stream (:mod:`repro.sim.rng`), deterministic under
    a pinned run seed and digest-safe to shard, while a module-level
    entropy import escapes the seeding machinery entirely.  The two
    capabilities gate differently downstream (symmetry pruning refuses
    both; the shard kernel and the scenario matrix refuse only the
    latter).
    """
    for tree in trees:
        for node in ast.walk(tree):
            if isinstance(node, ast.Call):
                dotted = dotted_name(node.func)
                if dotted is None:
                    continue
                parts = dotted.split(".")
                if parts[-1] == "rng" and "ctx" in parts:
                    return True
    return False


def scan_uses_rng(trees: Iterable[ast.Module]) -> bool:
    """True when any tree imports an entropy module."""
    for tree in trees:
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                if any(
                    alias.name.split(".")[0] in RNG_MODULES
                    for alias in node.names
                ):
                    return True
            elif isinstance(node, ast.ImportFrom) and node.module:
                if node.module.split(".")[0] in RNG_MODULES:
                    return True
    return False


# ---------------------------------------------------------------------------
# The abstract interpreter.
# ---------------------------------------------------------------------------


@dataclass
class _Frame:
    """One method evaluation: the dynamic class and local bindings."""

    dyn_cls: str
    owner_index: int  # MRO index of the class defining the running method
    env: dict[str, frozenset[str]]
    loop_vars: set[str] = field(default_factory=set)
    module: ModuleContext | None = None
    path: Path | None = None
    returns: set[str] = field(default_factory=set)
    opaque_return: bool = False


@dataclass
class _BlockResult:
    """Effects of a statement block, split by how paths leave it."""

    fall: Effects | None  # paths reaching the end of the block
    term: Effects | None  # paths leaving via return/raise/break/continue


@dataclass(frozen=True)
class MethodSummary:
    effects: Effects
    return_kinds: frozenset[str] | None


_RECURSIVE = Effects(recursive=True)


class Analyzer:
    """Interprocedural effect analysis over one :class:`Universe`."""

    def __init__(self, universe: Universe) -> None:
        self.universe = universe
        self._memo: dict[tuple, MethodSummary] = {}
        self._stack: set[tuple] = set()

    # -- public entry points ------------------------------------------------

    def wake_effects(self, class_name: str) -> Effects:
        """Effects of one spontaneous wake-up of ``class_name``."""
        return self._entry_effects(class_name, "on_wake", None)

    def message_effects(self, class_name: str, kind: str) -> Effects:
        """Effects of delivering one ``kind`` message to ``class_name``."""
        return self._entry_effects(class_name, "on_message", kind)

    def leader_effects(self, class_name: str) -> Effects:
        """Effects of the app-layer ``on_leader_elected`` hook, if any."""
        return self._entry_effects(class_name, "on_leader_elected", None)

    def has_entry(self, class_name: str, method: str) -> bool:
        """Whether ``class_name`` defines a concrete (non-stub) ``method``."""
        resolved = self.universe.find_method(class_name, method)
        if resolved is None:
            return False
        _, _, func = resolved
        return not _is_abstract_stub(func)

    # -- summarisation ------------------------------------------------------

    def _entry_effects(
        self, class_name: str, method: str, kind: str | None
    ) -> Effects:
        resolved = self.universe.find_method(class_name, method)
        if resolved is None:
            return Effects.empty()
        index, info, func = resolved
        env: dict[str, frozenset[str]] = {}
        if kind is not None:
            params = _positional_params(func)
            if len(params) >= 2:
                # (self, port, message) — the message parameter is last.
                env[params[-1]] = frozenset({kind})
        summary = self._summarize(class_name, index, info, func, env)
        return summary.effects

    def _summarize(
        self,
        dyn_cls: str,
        owner_index: int,
        owner: ClassInfo,
        func: ast.FunctionDef,
        env: dict[str, frozenset[str]],
    ) -> MethodSummary:
        key = (
            dyn_cls,
            owner.name,
            func.name,
            tuple(sorted((k, tuple(sorted(v))) for k, v in env.items())),
        )
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        if key in self._stack:
            return MethodSummary(_RECURSIVE, None)
        self._stack.add(key)
        try:
            frame = _Frame(
                dyn_cls=dyn_cls,
                owner_index=owner_index,
                env=dict(env),
                module=owner.module,
                path=owner.path,
            )
            result = self._eval_block(func.body, frame)
            effects = _merge_exits(result)
            if effects.recursive:
                effects = effects.widened()
            kinds = frozenset(frame.returns)
            summary = MethodSummary(
                effects, kinds if kinds and not frame.opaque_return else None
            )
        finally:
            self._stack.discard(key)
        self._memo[key] = summary
        return summary

    # -- statements ---------------------------------------------------------

    def _eval_block(
        self, stmts: Sequence[ast.stmt], frame: _Frame
    ) -> _BlockResult:
        fall: Effects | None = Effects.empty()
        term: Effects | None = None

        def terminate(effects: Effects) -> None:
            nonlocal term
            term = effects if term is None else term.join(effects)

        for stmt in stmts:
            if fall is None:
                break  # unreachable after an unconditional exit
            if isinstance(stmt, ast.Return):
                eff, kinds = (
                    self._eval_expr(stmt.value, frame)
                    if stmt.value is not None
                    else (Effects.empty(), None)
                )
                if stmt.value is not None:
                    if kinds:
                        frame.returns.update(kinds)
                    elif not _is_trivial_return(stmt.value):
                        frame.opaque_return = True
                terminate(fall.seq(eff))
                fall = None
            elif isinstance(stmt, ast.Raise):
                eff = Effects.empty()
                if stmt.exc is not None:
                    eff, _ = self._eval_expr(stmt.exc, frame)
                terminate(fall.seq(eff))
                fall = None
            elif isinstance(stmt, (ast.Break, ast.Continue)):
                terminate(fall)
                fall = None
            elif isinstance(stmt, ast.If):
                cond, _ = self._eval_expr(stmt.test, frame)
                pre = fall.seq(cond)
                fall = self._eval_branches(
                    pre, [stmt.body, stmt.orelse], frame, terminate
                )
            elif isinstance(stmt, ast.Match):
                fall = self._eval_match(stmt, fall, frame, terminate)
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                fall = fall.seq(self._eval_for(stmt, frame))
            elif isinstance(stmt, ast.While):
                fall = fall.seq(self._eval_while(stmt, frame))
            elif isinstance(stmt, ast.Expr):
                eff, _ = self._eval_expr(stmt.value, frame)
                fall = fall.seq(eff)
            elif isinstance(stmt, ast.Assign):
                eff, kinds = self._eval_expr(stmt.value, frame)
                fall = fall.seq(eff)
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        if kinds:
                            frame.env[target.id] = kinds
                        else:
                            frame.env.pop(target.id, None)
            elif isinstance(stmt, ast.AnnAssign):
                if stmt.value is not None:
                    eff, kinds = self._eval_expr(stmt.value, frame)
                    fall = fall.seq(eff)
                    if isinstance(stmt.target, ast.Name) and kinds:
                        frame.env[stmt.target.id] = kinds
            elif isinstance(stmt, ast.AugAssign):
                eff, _ = self._eval_expr(stmt.value, frame)
                fall = fall.seq(eff)
            elif isinstance(stmt, ast.Try):
                fall = fall.seq(self._eval_try(stmt, frame))
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                for item in stmt.items:
                    eff, _ = self._eval_expr(item.context_expr, frame)
                    fall = fall.seq(eff)
                inner = self._eval_block(stmt.body, frame)
                fall = fall.seq(_merge_exits(inner))
            elif isinstance(stmt, ast.Assert):
                eff, _ = self._eval_expr(stmt.test, frame)
                fall = fall.seq(eff)
            # FunctionDef/ClassDef/Import/Pass/Global/Delete: no effects.
        return _BlockResult(fall, term)

    def _eval_branches(
        self,
        pre: Effects,
        branches: Sequence[Sequence[ast.stmt]],
        frame: _Frame,
        terminate: Callable[[Effects], None],
    ) -> Effects | None:
        """Join the branch blocks, routing exited paths to ``terminate``."""
        fall_candidates: list[Effects] = []
        for body in branches:
            result = self._eval_block(list(body), frame)
            if result.term is not None:
                terminate(pre.seq(result.term))
            if result.fall is not None:
                fall_candidates.append(pre.seq(result.fall))
        if not fall_candidates:
            return None
        return join_all(fall_candidates)

    # -- match dispatch ------------------------------------------------------

    def _eval_match(
        self,
        stmt: ast.Match,
        fall: Effects,
        frame: _Frame,
        terminate: Callable[[Effects], None],
    ) -> Effects | None:
        subject_eff, kinds = self._eval_expr(stmt.subject, frame)
        pre = fall.seq(subject_eff)
        if kinds is None:
            # Unknown subject: any arm may run (or none, without wildcard).
            branches = [list(case.body) for case in stmt.cases]
            if not any(_is_wildcard(case.pattern) for case in stmt.cases):
                branches.append([])
            return self._eval_branches(pre, branches, frame, terminate)

        arms: list[list[ast.stmt]] = []
        remaining = set(kinds)
        for case in stmt.cases:
            if not remaining:
                break
            matched = {
                kind
                for kind in remaining
                if self._pattern_matches(case.pattern, kind)
            }
            if not matched:
                continue
            arms.append(list(case.body))
            if case.guard is None:
                remaining -= matched
            # A guarded arm may fall through to later arms: keep the kinds.
        if remaining:
            arms.append([])  # no arm matched: the match is a no-op
        return self._eval_branches(pre, arms, frame, terminate)

    def _pattern_matches(self, pattern: ast.pattern, kind: str) -> bool:
        if isinstance(pattern, ast.MatchClass):
            name = terminal_name(pattern.cls)
            return name is not None and self.universe.is_message_subclass(
                kind, name
            )
        if isinstance(pattern, ast.MatchAs):
            if pattern.pattern is None:
                return True  # wildcard / capture
            return self._pattern_matches(pattern.pattern, kind)
        if isinstance(pattern, ast.MatchOr):
            return any(
                self._pattern_matches(p, kind) for p in pattern.patterns
            )
        return False

    # -- loops ---------------------------------------------------------------

    def _eval_for(self, stmt: ast.For | ast.AsyncFor, frame: _Frame) -> Effects:
        iter_eff, _ = self._eval_expr(stmt.iter, frame)
        multiplier, exact = _classify_for(stmt)
        added = set()
        if isinstance(stmt.target, ast.Name):
            if stmt.target.id not in frame.loop_vars:
                frame.loop_vars.add(stmt.target.id)
                added.add(stmt.target.id)
        body = _merge_exits(self._eval_block(stmt.body, frame))
        frame.loop_vars -= added
        orelse = _merge_exits(self._eval_block(stmt.orelse, frame))
        return iter_eff.seq(body.scale(multiplier, exact)).seq(orelse)

    def _eval_while(self, stmt: ast.While, frame: _Frame) -> Effects:
        test_eff, _ = self._eval_expr(stmt.test, frame)
        multiplier = _classify_while(stmt)
        body = _merge_exits(self._eval_block(stmt.body, frame))
        orelse = _merge_exits(self._eval_block(stmt.orelse, frame))
        return test_eff.seq(body.scale(multiplier, None)).seq(orelse)

    def _eval_try(self, stmt: ast.Try, frame: _Frame) -> Effects:
        body = _merge_exits(self._eval_block(stmt.body, frame))
        handlers = join_all(
            [Effects.empty()]
            + [
                _merge_exits(self._eval_block(h.body, frame))
                for h in stmt.handlers
            ]
        )
        orelse = _merge_exits(self._eval_block(stmt.orelse, frame))
        final = _merge_exits(self._eval_block(stmt.finalbody, frame))
        return body.seq(handlers).seq(orelse).seq(final)

    # -- expressions ---------------------------------------------------------

    def _eval_expr(
        self, expr: ast.expr | None, frame: _Frame
    ) -> tuple[Effects, frozenset[str] | None]:
        if expr is None:
            return Effects.empty(), None
        if isinstance(expr, ast.Call):
            return self._eval_call(expr, frame)
        if isinstance(expr, ast.Name):
            return Effects.empty(), frame.env.get(expr.id)
        if isinstance(expr, ast.IfExp):
            test_eff, _ = self._eval_expr(expr.test, frame)
            body_eff, body_kinds = self._eval_expr(expr.body, frame)
            else_eff, else_kinds = self._eval_expr(expr.orelse, frame)
            kinds = (
                body_kinds | else_kinds
                if body_kinds is not None and else_kinds is not None
                else None
            )
            return test_eff.seq(body_eff.join(else_eff)), kinds
        if isinstance(expr, ast.NamedExpr):
            eff, kinds = self._eval_expr(expr.value, frame)
            if isinstance(expr.target, ast.Name) and kinds:
                frame.env[expr.target.id] = kinds
            return eff, kinds
        if isinstance(expr, ast.BoolOp):
            eff = Effects.empty()
            for value in expr.values:
                sub, _ = self._eval_expr(value, frame)
                eff = eff.seq(sub)
            return eff, None
        if isinstance(expr, (ast.Lambda, ast.Constant)):
            return Effects.empty(), None
        # Generic traversal: evaluate child expressions sequentially.
        eff = Effects.empty()
        for child in ast.iter_child_nodes(expr):
            if isinstance(child, ast.expr):
                sub, _ = self._eval_expr(child, frame)
                eff = eff.seq(sub)
            elif isinstance(child, ast.comprehension):
                sub, _ = self._eval_expr(child.iter, frame)
                eff = eff.seq(sub)
        return eff, None

    def _eval_call(
        self, call: ast.Call, frame: _Frame
    ) -> tuple[Effects, frozenset[str] | None]:
        func = call.func

        # 1. ctx.send(port, message) — the accounting choke point.
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "send"
            and terminal_name(func.value) == "ctx"
        ):
            return self._eval_send(call, frame), None

        # 2. Message constructor.
        name = terminal_name(func)
        if (
            isinstance(func, ast.Name)
            and name in self.universe.message_classes
        ):
            eff = self._eval_args(call, frame)
            return eff, frozenset({name})

        # 3. super().method(...) — continue along the dynamic MRO.
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Call)
            and terminal_name(func.value.func) == "super"
        ):
            resolved = self.universe.find_method(
                frame.dyn_cls, func.attr, frame.owner_index + 1
            )
            return self._eval_resolved_call(call, resolved, frame)

        # 4. self.method(...) — dynamic dispatch from the concrete class.
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "self"
        ):
            resolved = self.universe.find_method(frame.dyn_cls, func.attr)
            if resolved is not None:
                return self._eval_resolved_call(call, resolved, frame)
            return self._eval_args(call, frame), None

        # 5. Module-level helper in the same file.
        if isinstance(func, ast.Name) and frame.path is not None:
            helper = self.universe.functions.get((frame.path, func.id))
            if helper is not None:
                return self._eval_function_call(call, helper, frame)

        # Unknown callable: evaluate arguments for their effects only.
        return self._eval_args(call, frame), None

    def _eval_send(self, call: ast.Call, frame: _Frame) -> Effects:
        port_expr = call.args[0] if call.args else None
        message_expr: ast.expr | None = None
        if len(call.args) > 1:
            message_expr = call.args[1]
        else:
            for kw in call.keywords:
                if kw.arg == "message":
                    message_expr = kw.value
        port_eff, _ = self._eval_expr(port_expr, frame)
        msg_eff, kinds = self._eval_expr(message_expr, frame)
        record = SendRecord(
            call=call,
            module=frame.module,
            kinds=tuple(sorted(kinds)) if kinds else (UNKNOWN_KIND,),
            port_class=_classify_port(port_expr, frame),
            fanout=FanOut.constant(1),
        )
        return port_eff.seq(msg_eff).seq(Effects.send(record))

    def _eval_args(self, call: ast.Call, frame: _Frame) -> Effects:
        eff = Effects.empty()
        for arg in call.args:
            sub, _ = self._eval_expr(arg, frame)
            eff = eff.seq(sub)
        for kw in call.keywords:
            sub, _ = self._eval_expr(kw.value, frame)
            eff = eff.seq(sub)
        return eff

    def _eval_resolved_call(
        self,
        call: ast.Call,
        resolved: tuple[int, ClassInfo, ast.FunctionDef] | None,
        frame: _Frame,
    ) -> tuple[Effects, frozenset[str] | None]:
        if resolved is None:
            return self._eval_args(call, frame), None
        index, owner, func = resolved
        arg_eff, env = self._bind_arguments(call, func, frame)
        summary = self._summarize(frame.dyn_cls, index, owner, func, env)
        return arg_eff.seq(summary.effects), summary.return_kinds

    def _eval_function_call(
        self, call: ast.Call, func: ast.FunctionDef, frame: _Frame
    ) -> tuple[Effects, frozenset[str] | None]:
        arg_eff, env = self._bind_arguments(
            call, func, frame, skip_self=False
        )
        # Module functions carry no dynamic class; summarize against a
        # pseudo-owner keyed by the defining file.
        owner = ClassInfo(
            name=f"<module:{func.name}>",
            node=ast.ClassDef(
                name="", bases=[], keywords=[], body=[], decorator_list=[]
            ),
            path=frame.path or Path("."),
            module=frame.module,
            base_names=(),
            methods={func.name: func},
            app_messages=(),
        )
        key = (
            "<module>",
            str(owner.path),
            func.name,
            tuple(sorted((k, tuple(sorted(v))) for k, v in env.items())),
        )
        cached = self._memo.get(key)
        if cached is not None:
            return arg_eff.seq(cached.effects), cached.return_kinds
        if key in self._stack:
            return arg_eff.seq(_RECURSIVE), None
        self._stack.add(key)
        try:
            inner = _Frame(
                dyn_cls=frame.dyn_cls,
                owner_index=frame.owner_index,
                env=env,
                module=frame.module,
                path=frame.path,
            )
            result = self._eval_block(func.body, inner)
            effects = _merge_exits(result)
            if effects.recursive:
                effects = effects.widened()
            kinds = frozenset(inner.returns)
            summary = MethodSummary(
                effects,
                kinds if kinds and not inner.opaque_return else None,
            )
        finally:
            self._stack.discard(key)
        self._memo[key] = summary
        return arg_eff.seq(summary.effects), summary.return_kinds

    def _bind_arguments(
        self,
        call: ast.Call,
        func: ast.FunctionDef,
        frame: _Frame,
        skip_self: bool = True,
    ) -> tuple[Effects, dict[str, frozenset[str]]]:
        params = _positional_params(func)
        if skip_self and params and params[0] == "self":
            params = params[1:]
        env: dict[str, frozenset[str]] = {}
        eff = Effects.empty()
        for index, arg in enumerate(call.args):
            sub, kinds = self._eval_expr(arg, frame)
            eff = eff.seq(sub)
            if kinds and index < len(params):
                env[params[index]] = kinds
        for kw in call.keywords:
            sub, kinds = self._eval_expr(kw.value, frame)
            eff = eff.seq(sub)
            if kinds and kw.arg is not None:
                env[kw.arg] = kinds
        return eff, env


# ---------------------------------------------------------------------------
# Classification helpers.
# ---------------------------------------------------------------------------


def _positional_params(func: ast.FunctionDef) -> list[str]:
    args = func.args
    return [a.arg for a in args.posonlyargs + args.args]


def _merge_exits(result: _BlockResult) -> Effects:
    if result.fall is not None and result.term is not None:
        return result.fall.join(result.term)
    if result.fall is not None:
        return result.fall
    if result.term is not None:
        return result.term
    return Effects.empty()


def _is_trivial_return(expr: ast.expr) -> bool:
    """Returns that clearly carry no message value (None, ints, bools...)."""
    return isinstance(expr, ast.Constant)


def _is_abstract_stub(func: ast.FunctionDef) -> bool:
    """A body that only raises/passes/docstrings — not a real handler."""
    for stmt in func.body:
        if isinstance(stmt, ast.Expr) and isinstance(
            stmt.value, ast.Constant
        ):
            continue  # docstring
        if isinstance(stmt, (ast.Pass, ast.Raise)):
            continue
        return False
    return True


def _is_wildcard(pattern: ast.pattern) -> bool:
    return isinstance(pattern, ast.MatchAs) and pattern.pattern is None


def _classify_for(
    stmt: ast.For | ast.AsyncFor,
) -> tuple[FanOut, int | None]:
    """Trip-count bound for a ``for`` loop.

    ``range`` with all-constant arguments is exact; every other iterable —
    ``range`` over expressions, lists of ports, buffered state — is
    bounded by the node degree (protocol state is port-derived, so
    O(num_ports) entries), hence ``LINEAR``.
    """
    iterator = stmt.iter
    if (
        isinstance(iterator, ast.Call)
        and terminal_name(iterator.func) == "range"
        and iterator.args
        and all(
            isinstance(arg, ast.Constant) and isinstance(arg.value, int)
            for arg in iterator.args
        )
    ):
        values = [arg.value for arg in iterator.args]  # type: ignore[attr-defined]
        count = len(range(*values))
        return FanOut.constant(count), count
    return FanOut.linear(), None


def _classify_while(stmt: ast.While) -> FanOut:
    """Trip-count bound for a ``while`` loop.

    A constant-true condition has no static bound (``⊤``).  Conditions
    over protocol state (window refills, wave cursors) are bounded by the
    port-derived state they consume, hence ``LINEAR``.
    """
    test = stmt.test
    if isinstance(test, ast.Constant) and bool(test.value):
        return FanOut.top()
    return FanOut.linear()


def _classify_port(expr: ast.expr | None, frame: _Frame) -> str:
    """Coarse port-class of a send's first argument."""
    if expr is None:
        return "other"
    if isinstance(expr, ast.Call):
        if terminal_name(expr.func) == "port_with_label":
            return "labelled"
        return "other"
    dotted = dotted_name(expr)
    if dotted is not None:
        if dotted.endswith("owner_port"):
            return "owner"
        leaf = dotted.split(".")[-1]
        if isinstance(expr, ast.Name) and expr.id in frame.loop_vars:
            return "scan"
        if "port" in leaf:
            return "reply"
    return "other"
