"""Named execution environments.

The paper's bounds quantify over wake-up patterns, hidden wirings and delay
schedules; experiments keep reusing the same few combinations.  A
:class:`Scenario` bundles one combination under a name so tests, examples
and benchmarks can say ``run_scenario(ProtocolG(k=8), "chain", n=128)``
instead of re-assembling the pieces.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass
from typing import Any

from repro.adversary import wakeup
from repro.adversary.delays import band_freeze, congested_links, worst_case_unit
from repro.core.errors import ConfigurationError
from repro.core.protocol import ElectionProtocol
from repro.core.results import ElectionResult
from repro.sim.delays import UniformDelay
from repro.sim.network import Network
from repro.topology.complete import (
    complete_with_sense_of_direction,
    complete_without_sense,
)
from repro.topology.ports import UpDownPorts


@dataclass(frozen=True)
class Scenario:
    """A named (topology, delays, wake-up) combination."""

    name: str
    description: str
    build: Callable[[int, int, bool], tuple[Any, dict[str, Any]]]


def _benign(n: int, seed: int, sense: bool):
    topo = (
        complete_with_sense_of_direction(n)
        if sense
        else complete_without_sense(n, seed=seed)
    )
    return topo, {"delays": UniformDelay(0.05, 1.0)}


def _worst_case(n: int, seed: int, sense: bool):
    topo = (
        complete_with_sense_of_direction(n)
        if sense
        else complete_without_sense(n, seed=seed)
    )
    return topo, {"delays": worst_case_unit()}


def _chain(n: int, seed: int, sense: bool):
    topo, kwargs = _worst_case(n, seed, sense)
    kwargs["wakeup"] = wakeup.staggered_chain()
    return topo, kwargs


def _adversarial_ports(n: int, seed: int, sense: bool):
    if sense:
        raise ConfigurationError(
            "the port adversary only exists on unlabeled networks"
        )
    import math

    k = max(1, math.ceil(math.log2(n)))
    topo = complete_without_sense(n, port_strategy=UpDownPorts(k), seed=seed)
    return topo, {"delays": worst_case_unit()}


def _congested(n: int, seed: int, sense: bool):
    topo = (
        complete_with_sense_of_direction(n)
        if sense
        else complete_without_sense(n, seed=seed)
    )
    return topo, {"delays": congested_links()}


def _frozen_middle(n: int, seed: int, sense: bool):
    topo = (
        complete_with_sense_of_direction(n)
        if sense
        else complete_without_sense(n, seed=seed)
    )
    return topo, {"delays": band_freeze(n)}


SCENARIOS: dict[str, Scenario] = {
    s.name: s
    for s in (
        Scenario("benign", "uniform random delays, everyone wakes at 0", _benign),
        Scenario("worst_case", "unit delays (the time-complexity schedule)",
                 _worst_case),
        Scenario("chain", "unit delays + the Section 3 staggered chain", _chain),
        Scenario("adversarial_ports",
                 "Section 5 Up-first wiring + unit delays", _adversarial_ports),
        Scenario("congested",
                 "fast links, full unit inter-message spacing", _congested),
        Scenario("frozen_middle",
                 "Section 5 band stretching: the middle identities crawl",
                 _frozen_middle),
    )
}


def run_scenario(
    protocol: ElectionProtocol,
    scenario: str,
    n: int,
    *,
    seed: int = 0,
    trace: bool = False,
    **overrides: Any,
) -> ElectionResult:
    """Run one protocol inside one named scenario."""
    try:
        spec = SCENARIOS[scenario]
    except KeyError:
        raise ConfigurationError(
            f"unknown scenario {scenario!r}; choose from {sorted(SCENARIOS)}"
        ) from None
    topology, kwargs = spec.build(n, seed, protocol.needs_sense_of_direction)
    kwargs.update(overrides)
    return Network(protocol, topology, seed=seed, trace=trace, **kwargs).run()
