"""Named execution environments.

The paper's bounds quantify over wake-up patterns, hidden wirings and delay
schedules; experiments keep reusing the same few combinations.  A
:class:`Scenario` bundles one combination under a name so tests, examples
and benchmarks can say ``run_scenario(ProtocolG(k=8), "chain", n=128)``
instead of re-assembling the pieces.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass
from typing import Any

from repro.adversary import wakeup
from repro.adversary.delays import band_freeze, congested_links, worst_case_unit
from repro.core.errors import ConfigurationError
from repro.core.protocol import ElectionProtocol
from repro.core.reliable import ReliableDelivery
from repro.core.results import ElectionResult
from repro.sim.delays import UniformDelay
from repro.sim.faults import FaultPlan, isolate
from repro.sim.network import Network
from repro.topology.complete import (
    complete_with_sense_of_direction,
    complete_without_sense,
)
from repro.topology.ports import UpDownPorts


@dataclass(frozen=True)
class Scenario:
    """A named (topology, delays, wake-up, faults) combination.

    ``reliable`` scenarios violate the paper's reliable-FIFO link model
    (they install a :class:`~repro.sim.faults.FaultPlan`), so
    :func:`run_scenario` wraps the protocol in the retransmission overlay
    (:class:`~repro.core.reliable.ReliableDelivery`) before running it.
    """

    name: str
    description: str
    build: Callable[[int, int, bool], tuple[Any, dict[str, Any]]]
    reliable: bool = False


def _benign(n: int, seed: int, sense: bool):
    topo = (
        complete_with_sense_of_direction(n)
        if sense
        else complete_without_sense(n, seed=seed)
    )
    return topo, {"delays": UniformDelay(0.05, 1.0)}


def _worst_case(n: int, seed: int, sense: bool):
    topo = (
        complete_with_sense_of_direction(n)
        if sense
        else complete_without_sense(n, seed=seed)
    )
    return topo, {"delays": worst_case_unit()}


def _chain(n: int, seed: int, sense: bool):
    topo, kwargs = _worst_case(n, seed, sense)
    kwargs["wakeup"] = wakeup.staggered_chain()
    return topo, kwargs


def _adversarial_ports(n: int, seed: int, sense: bool):
    if sense:
        raise ConfigurationError(
            "the port adversary only exists on unlabeled networks"
        )
    import math

    k = max(1, math.ceil(math.log2(n)))
    topo = complete_without_sense(n, port_strategy=UpDownPorts(k), seed=seed)
    return topo, {"delays": worst_case_unit()}


def _congested(n: int, seed: int, sense: bool):
    topo = (
        complete_with_sense_of_direction(n)
        if sense
        else complete_without_sense(n, seed=seed)
    )
    return topo, {"delays": congested_links()}


def _frozen_middle(n: int, seed: int, sense: bool):
    topo = (
        complete_with_sense_of_direction(n)
        if sense
        else complete_without_sense(n, seed=seed)
    )
    return topo, {"delays": band_freeze(n)}


def _lossy(n: int, seed: int, sense: bool):
    topo = (
        complete_with_sense_of_direction(n)
        if sense
        else complete_without_sense(n, seed=seed)
    )
    plan = FaultPlan(seed=seed, drop=0.10, duplicate=0.05, jitter=0.25)
    return topo, {"delays": UniformDelay(0.05, 1.0), "faults": plan}


def _partitioned(n: int, seed: int, sense: bool):
    topo = (
        complete_with_sense_of_direction(n)
        if sense
        else complete_without_sense(n, seed=seed)
    )
    # Cut the eventual winner (the largest identity) off from everyone for
    # a while mid-election; the overlay must carry the election across the
    # healed partition.
    victim = max(topo.ids)
    plan = FaultPlan(
        seed=seed, partitions=isolate(victim, topo.ids, start=1.0, end=6.0)
    )
    return topo, {"delays": UniformDelay(0.05, 1.0), "faults": plan}


SCENARIOS: dict[str, Scenario] = {
    s.name: s
    for s in (
        Scenario("benign", "uniform random delays, everyone wakes at 0", _benign),
        Scenario("worst_case", "unit delays (the time-complexity schedule)",
                 _worst_case),
        Scenario("chain", "unit delays + the Section 3 staggered chain", _chain),
        Scenario("adversarial_ports",
                 "Section 5 Up-first wiring + unit delays", _adversarial_ports),
        Scenario("congested",
                 "fast links, full unit inter-message spacing", _congested),
        Scenario("frozen_middle",
                 "Section 5 band stretching: the middle identities crawl",
                 _frozen_middle),
        Scenario("lossy",
                 "10% loss + 5% duplication + jitter, retransmission overlay",
                 _lossy, reliable=True),
        Scenario("partitioned",
                 "the top identity is cut off for t in [1, 6), then healed",
                 _partitioned, reliable=True),
    )
}


def run_scenario(
    protocol: ElectionProtocol,
    scenario: str,
    n: int,
    *,
    seed: int = 0,
    trace: bool = False,
    **overrides: Any,
) -> ElectionResult:
    """Run one protocol inside one named scenario."""
    try:
        spec = SCENARIOS[scenario]
    except KeyError:
        raise ConfigurationError(
            f"unknown scenario {scenario!r}; choose from {sorted(SCENARIOS)}"
        ) from None
    topology, kwargs = spec.build(n, seed, protocol.needs_sense_of_direction)
    kwargs.update(overrides)
    if spec.reliable:
        protocol = ReliableDelivery(protocol)
    return Network(protocol, topology, seed=seed, trace=trace, **kwargs).run()
