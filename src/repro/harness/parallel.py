"""Parallel sweep execution: fan independent runs across worker processes.

Every experiment in :mod:`repro.harness.experiments` is a *sweep*: a list of
independent ``(protocol, n, seed, adversary)`` elections whose results are
aggregated afterwards.  Sweeps are embarrassingly parallel — each run owns
its private RNG, scheduler, and topology — so this module provides one
primitive, :func:`run_sweep`, that executes a list of zero-argument tasks
and returns their results **in task order**, either serially or on a
``multiprocessing`` pool.

Determinism contract
--------------------

``run_sweep(tasks, parallel=True) == run_sweep(tasks, parallel=False)`` for
any tasks that are themselves deterministic (as every simulation run here
is: a run is a pure function of its configuration).  Three properties make
this hold:

* results are collected with ``pool.map``, which returns them indexed by
  task, not by completion time — aggregation order is therefore independent
  of worker scheduling;
* each task builds its own ``random.Random(seed)`` from its configuration,
  so worker-process RNG state can't leak into results; and
* workers are started with the ``fork`` start method and receive only a
  task *index*; the task closures themselves are inherited through the
  forked address space, never pickled.  (This is also what lets sweeps
  capture protocol factories, adversarial wake-up closures, and delay hooks
  without any of them having to be picklable.)

On platforms without ``fork`` — or when the pool cannot be created, e.g. in
restricted sandboxes — :func:`run_sweep` silently degrades to serial
execution, which is always correct, just slower.

Configuration: the ``REPRO_PARALLEL`` environment variable.  Unset, sweeps
parallelise when the machine has >1 CPU and the sweep is big enough to
amortise pool start-up.  ``REPRO_PARALLEL=0`` (or ``off``) forces serial;
any positive integer forces a pool of that many workers.
"""

from __future__ import annotations

import multiprocessing
import os
from array import array
from collections.abc import Callable, Sequence
from typing import Any, TypeVar

T = TypeVar("T")

#: Below this many tasks a pool's start-up cost dominates; run serially.
MIN_PARALLEL_TASKS = 4

#: The task list the forked workers read (inherited via fork, not pickled).
_TASKS: Sequence[Callable[[], Any]] | None = None


def _run_indexed_task(index: int) -> Any:
    """Worker entry point: run one inherited task by index."""
    assert _TASKS is not None, "worker forked without a task list"
    return _TASKS[index]()


def configured_processes() -> int | None:
    """Worker count from ``REPRO_PARALLEL``, or None when unset/invalid.

    Public: the sharded kernel (:mod:`repro.sim.shard`) honours the same
    variable for its shard worker pool, so one knob governs every form of
    process-level parallelism in the repo.
    """
    raw = os.environ.get("REPRO_PARALLEL", "").strip().lower()
    if not raw:
        return None
    if raw in ("off", "false", "no"):
        return 0
    try:
        return max(0, int(raw))
    except ValueError:
        return None


def fork_context() -> multiprocessing.context.BaseContext | None:
    """The ``fork`` multiprocessing context, or None where unavailable.

    Fork-only by design: tasks and shard configurations are inherited
    through the forked address space, never pickled.
    """
    try:
        return multiprocessing.get_context("fork")
    except ValueError:
        return None


# Backwards-compatible private aliases (pre-shard callers import these).
_configured_processes = configured_processes
_fork_context = fork_context


def run_sweep(
    tasks: Sequence[Callable[[], T]],
    *,
    parallel: bool | None = None,
    processes: int | None = None,
) -> list[T]:
    """Run every task and return the results in task order.

    ``parallel=None`` (the default) auto-decides: parallel when allowed by
    ``REPRO_PARALLEL``, the host has more than one CPU, ``fork`` is
    available, and the sweep has at least :data:`MIN_PARALLEL_TASKS` tasks.
    ``parallel=True``/``False`` force the choice (``True`` still degrades
    to serial when no pool can be created).  ``processes`` caps the worker
    count; it defaults to ``min(len(tasks), cpu_count, REPRO_PARALLEL)``.

    Results are deterministic and order-independent: the returned list is
    indexed like ``tasks`` regardless of which worker finished first.
    """
    tasks = list(tasks)
    if not tasks:
        return []

    env_processes = _configured_processes()
    if env_processes == 0:
        parallel = False
    if parallel is None:
        parallel = (
            len(tasks) >= MIN_PARALLEL_TASKS
            and (env_processes or os.cpu_count() or 1) > 1
        )
    if parallel:
        if processes is None:
            processes = env_processes or os.cpu_count() or 1
        processes = max(1, min(processes, len(tasks)))
        if processes > 1:
            results = _run_pool(tasks, processes)
            if results is not None:
                return results
    return [task() for task in tasks]


#: Default per-segment record capacity for the shared-memory exchange.
#: One "record" is one fast-lane message crossing a shard boundary in one
#: window; batches that exceed the capacity simply ride the pipes instead.
DEFAULT_SHM_RECORDS = 2048

#: Default packed-int words budgeted per record (header 9 + fields).
DEFAULT_SHM_INTS_PER_RECORD = 16


def shm_records_config() -> int:
    """Per-segment record capacity from ``REPRO_SHM_RECORDS`` (>= 1)."""
    raw = os.environ.get("REPRO_SHM_RECORDS", "").strip()
    if raw:
        try:
            return max(1, int(raw))
        except ValueError:
            pass
    return DEFAULT_SHM_RECORDS


def shm_enabled() -> bool:
    """Whether the shared-memory exchange is allowed (``REPRO_SHM`` knob).

    Unset or any truthy value enables it; ``0``/``off``/``false``/``no``
    force the pipe-only transport (useful for A/B digest checks and for
    containers with a tiny ``/dev/shm``).
    """
    raw = os.environ.get("REPRO_SHM", "").strip().lower()
    return raw not in ("0", "off", "false", "no")


class ShmExchange:
    """Double-buffered shared-memory segments for sharded window exchange.

    The sharded kernel's fork transport moves one batch of packed fast-lane
    arrays (``times``/``ints``/``offs`` plus coordinator-assigned merge
    keys) per directed shard pair per window.  Pickling those arrays
    through the worker pipes copies every byte twice; this class instead
    backs each directed pair with one ``multiprocessing.shared_memory``
    segment that the source worker writes, the coordinator stamps merge
    keys into, and the destination worker reads -- zero pickling for the
    fast lane.  Slow-lane records (arbitrary pickled messages) and any
    batch that exceeds a segment's fixed capacity keep riding the pipes,
    so capacity is purely a performance knob, never a correctness one.

    Segments are double-buffered by window parity: while window ``w``
    writes parity ``w & 1``, the destination is still decoding window
    ``w - 1`` from the other half, and the coordinator barrier guarantees
    no concurrent access to either half.

    Lifecycle is coordinator-owned: the coordinator creates every segment
    *before* forking workers (so the mappings are inherited through the
    forked address space -- workers never attach by name and never touch
    the resource tracker), and it alone closes and unlinks them.  Creation
    runs under :meth:`create`, which returns ``None`` -- pipes-only
    fallback -- when shared memory is unavailable, too small, or disabled
    via ``REPRO_SHM=0``.
    """

    _HDR_BYTES = 16  # two little-endian int64s: n_fast, ints_len

    def __init__(
        self,
        shards: int,
        records: int,
        ints_words: int,
        segments: list[Any],
    ) -> None:
        self.shards = shards
        self.records = records
        self.ints_words = ints_words
        self._segments = segments
        hdr = self._HDR_BYTES
        self._off_offs = hdr
        self._off_keys = hdr + 8 * records
        self._off_times = hdr + 16 * records
        self._off_ints = hdr + 32 * records
        self._parity_bytes = hdr + 32 * records + 8 * ints_words

    @classmethod
    def create(
        cls,
        shards: int,
        *,
        records: int | None = None,
        ints_words: int | None = None,
    ) -> "ShmExchange | None":
        """Create one segment per directed shard pair, or None on failure."""
        if not shm_enabled():
            return None
        try:
            from multiprocessing import shared_memory
        except ImportError:
            return None
        if records is None:
            records = shm_records_config()
        if ints_words is None:
            ints_words = records * DEFAULT_SHM_INTS_PER_RECORD
        size = 2 * (cls._HDR_BYTES + 32 * records + 8 * ints_words)
        segments: list[Any] = []
        try:
            for _ in range(shards * shards):
                segments.append(
                    shared_memory.SharedMemory(create=True, size=size)
                )
        except (OSError, ValueError):
            # /dev/shm missing, full, or too small; degrade to pipes.
            for segment in segments:
                try:
                    segment.close()
                    segment.unlink()
                except OSError:
                    pass
            return None
        return cls(shards, records, ints_words, segments)

    def _base(self, src: int, dest: int, parity: int) -> tuple[Any, int]:
        segment = self._segments[src * self.shards + dest]
        return segment.buf, (parity & 1) * self._parity_bytes

    def try_write(
        self, src: int, dest: int, parity: int, times: Any, ints: Any,
        offs: Any,
    ) -> bool:
        """Write one fast batch into the pair's segment; False on overflow."""
        n_fast = len(offs)
        ints_len = len(ints)
        if n_fast > self.records or ints_len > self.ints_words:
            return False
        buf, base = self._base(src, dest, parity)
        header = buf[base : base + self._HDR_BYTES].cast("q")
        header[0] = n_fast
        header[1] = ints_len
        if n_fast:
            off = base + self._off_offs
            buf[off : off + 8 * n_fast] = memoryview(offs).cast("B")
            off = base + self._off_times
            buf[off : off + 16 * n_fast] = memoryview(times).cast("B")
        if ints_len:
            off = base + self._off_ints
            buf[off : off + 8 * ints_len] = memoryview(ints).cast("B")
        return True

    def header(self, src: int, dest: int, parity: int) -> tuple[int, int]:
        """The pair's ``(n_fast, ints_len)`` counts for ``parity``."""
        buf, base = self._base(src, dest, parity)
        header = buf[base : base + self._HDR_BYTES].cast("q")
        return header[0], header[1]

    def fast_views(
        self, src: int, dest: int, parity: int, n_fast: int, ints_len: int
    ) -> tuple[Any, Any, Any]:
        """``(times, ints, offs)`` typed memoryviews over the stored batch."""
        buf, base = self._base(src, dest, parity)
        off = base + self._off_times
        times = buf[off : off + 16 * n_fast].cast("d")
        off = base + self._off_ints
        ints = buf[off : off + 8 * ints_len].cast("q")
        off = base + self._off_offs
        offs = buf[off : off + 8 * n_fast].cast("q")
        return times, ints, offs

    def keys_view(self, src: int, dest: int, parity: int, n_fast: int) -> Any:
        """Int64 memoryview over the batch's merge-key region."""
        buf, base = self._base(src, dest, parity)
        off = base + self._off_keys
        return buf[off : off + 8 * n_fast].cast("q")

    def write_keys(
        self, src: int, dest: int, parity: int, fast_keys: Sequence[int]
    ) -> None:
        """Stamp the coordinator-assigned merge keys into the segment."""
        self.keys_view(src, dest, parity, len(fast_keys))[:] = array(
            "q", fast_keys
        )

    def close(self) -> None:
        """Release and unlink every segment (coordinator side only)."""
        for segment in self._segments:
            try:
                segment.close()
            except BufferError:
                # A stray exported view keeps the mapping alive; unlinking
                # below still reclaims the name, and the mapping dies with
                # the process.
                pass
            try:
                segment.unlink()
            except (FileNotFoundError, OSError):
                pass


def _run_pool(
    tasks: Sequence[Callable[[], T]], processes: int
) -> list[T] | None:
    """Map the tasks over a fork pool; None when no pool can be made."""
    global _TASKS
    context = _fork_context()
    if context is None:
        return None
    if _TASKS is not None:
        # A worker (or a nested sweep) is already mid-flight; nested pools
        # deadlock daemonic workers, so degrade to serial.
        return None
    _TASKS = tasks
    try:
        with context.Pool(processes) as pool:
            return pool.map(_run_indexed_task, range(len(tasks)), chunksize=1)
    except OSError:
        # Restricted environments (sandboxes, containers without /dev/shm)
        # can refuse pools; the sweep still runs, just serially.
        return None
    finally:
        _TASKS = None
