"""Parallel sweep execution: fan independent runs across worker processes.

Every experiment in :mod:`repro.harness.experiments` is a *sweep*: a list of
independent ``(protocol, n, seed, adversary)`` elections whose results are
aggregated afterwards.  Sweeps are embarrassingly parallel — each run owns
its private RNG, scheduler, and topology — so this module provides one
primitive, :func:`run_sweep`, that executes a list of zero-argument tasks
and returns their results **in task order**, either serially or on a
``multiprocessing`` pool.

Determinism contract
--------------------

``run_sweep(tasks, parallel=True) == run_sweep(tasks, parallel=False)`` for
any tasks that are themselves deterministic (as every simulation run here
is: a run is a pure function of its configuration).  Three properties make
this hold:

* results are collected with ``pool.map``, which returns them indexed by
  task, not by completion time — aggregation order is therefore independent
  of worker scheduling;
* each task builds its own ``random.Random(seed)`` from its configuration,
  so worker-process RNG state can't leak into results; and
* workers are started with the ``fork`` start method and receive only a
  task *index*; the task closures themselves are inherited through the
  forked address space, never pickled.  (This is also what lets sweeps
  capture protocol factories, adversarial wake-up closures, and delay hooks
  without any of them having to be picklable.)

On platforms without ``fork`` — or when the pool cannot be created, e.g. in
restricted sandboxes — :func:`run_sweep` silently degrades to serial
execution, which is always correct, just slower.

Configuration: the ``REPRO_PARALLEL`` environment variable.  Unset, sweeps
parallelise when the machine has >1 CPU and the sweep is big enough to
amortise pool start-up.  ``REPRO_PARALLEL=0`` (or ``off``) forces serial;
any positive integer forces a pool of that many workers.
"""

from __future__ import annotations

import multiprocessing
import os
from collections.abc import Callable, Sequence
from typing import Any, TypeVar

T = TypeVar("T")

#: Below this many tasks a pool's start-up cost dominates; run serially.
MIN_PARALLEL_TASKS = 4

#: The task list the forked workers read (inherited via fork, not pickled).
_TASKS: Sequence[Callable[[], Any]] | None = None


def _run_indexed_task(index: int) -> Any:
    """Worker entry point: run one inherited task by index."""
    assert _TASKS is not None, "worker forked without a task list"
    return _TASKS[index]()


def configured_processes() -> int | None:
    """Worker count from ``REPRO_PARALLEL``, or None when unset/invalid.

    Public: the sharded kernel (:mod:`repro.sim.shard`) honours the same
    variable for its shard worker pool, so one knob governs every form of
    process-level parallelism in the repo.
    """
    raw = os.environ.get("REPRO_PARALLEL", "").strip().lower()
    if not raw:
        return None
    if raw in ("off", "false", "no"):
        return 0
    try:
        return max(0, int(raw))
    except ValueError:
        return None


def fork_context() -> multiprocessing.context.BaseContext | None:
    """The ``fork`` multiprocessing context, or None where unavailable.

    Fork-only by design: tasks and shard configurations are inherited
    through the forked address space, never pickled.
    """
    try:
        return multiprocessing.get_context("fork")
    except ValueError:
        return None


# Backwards-compatible private aliases (pre-shard callers import these).
_configured_processes = configured_processes
_fork_context = fork_context


def run_sweep(
    tasks: Sequence[Callable[[], T]],
    *,
    parallel: bool | None = None,
    processes: int | None = None,
) -> list[T]:
    """Run every task and return the results in task order.

    ``parallel=None`` (the default) auto-decides: parallel when allowed by
    ``REPRO_PARALLEL``, the host has more than one CPU, ``fork`` is
    available, and the sweep has at least :data:`MIN_PARALLEL_TASKS` tasks.
    ``parallel=True``/``False`` force the choice (``True`` still degrades
    to serial when no pool can be created).  ``processes`` caps the worker
    count; it defaults to ``min(len(tasks), cpu_count, REPRO_PARALLEL)``.

    Results are deterministic and order-independent: the returned list is
    indexed like ``tasks`` regardless of which worker finished first.
    """
    tasks = list(tasks)
    if not tasks:
        return []

    env_processes = _configured_processes()
    if env_processes == 0:
        parallel = False
    if parallel is None:
        parallel = (
            len(tasks) >= MIN_PARALLEL_TASKS
            and (env_processes or os.cpu_count() or 1) > 1
        )
    if parallel:
        if processes is None:
            processes = env_processes or os.cpu_count() or 1
        processes = max(1, min(processes, len(tasks)))
        if processes > 1:
            results = _run_pool(tasks, processes)
            if results is not None:
                return results
    return [task() for task in tasks]


def _run_pool(
    tasks: Sequence[Callable[[], T]], processes: int
) -> list[T] | None:
    """Map the tasks over a fork pool; None when no pool can be made."""
    global _TASKS
    context = _fork_context()
    if context is None:
        return None
    if _TASKS is not None:
        # A worker (or a nested sweep) is already mid-flight; nested pools
        # deadlock daemonic workers, so degrade to serial.
        return None
    _TASKS = tasks
    try:
        with context.Pool(processes) as pool:
            return pool.map(_run_indexed_task, range(len(tasks)), chunksize=1)
    except OSError:
        # Restricted environments (sandboxes, containers without /dev/shm)
        # can refuse pools; the sweep still runs, just serially.
        return None
    finally:
        _TASKS = None
