"""EXPERIMENTS.md generator.

Runs every experiment (at FULL scale by default) and writes the
paper-vs-measured record the reproduction brief requires.  Usage::

    python -m repro.harness.report [--quick] [--output EXPERIMENTS.md]
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.harness.experiments import ALL_EXPERIMENTS, FULL, QUICK, Scale

PREAMBLE = """\
# EXPERIMENTS — paper vs. measured

Reproduction record for *Leader Election in Complete Networks*
(Gurdip Singh, PODC 1992).  The paper is theoretical: its "tables" are the
complexity claims of Sections 3-5 plus Figure 1 (see DESIGN.md §2/§6 for
the inventory and the experiment-to-module map).  Each section below
restates one claim, shows the measured sweep from this library's simulator,
and lists the executable checks of the claim's shape (growth exponents,
orderings, crossovers, bounds).  Absolute constants are ours — the paper
reports none — but every "who wins / how it scales / where it crosses"
statement is checked mechanically.

Regenerate with `python -m repro.harness.report` (append `--quick` for the
benchmark-sized sweeps).  For the engineering complement — the declarative
(protocol x scenario x N) sweep matrix and the one-command claim check
`python -m repro check --all` — see docs/matrix.md.

"""


def generate(scale: Scale, stream=None) -> str:
    """Run all experiments and return the rendered markdown."""
    if stream is None:
        stream = sys.stdout  # resolved at call time, not import time
    sections = [PREAMBLE]
    for experiment in ALL_EXPERIMENTS:
        started = time.time()
        report = experiment(scale)
        elapsed = time.time() - started
        status = "PASS" if report.passed else "FAIL"
        print(f"[{status}] {report.experiment} ({elapsed:.1f}s)", file=stream)
        sections.append(report.render())
    return "\n".join(sections)


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="use the benchmark-sized sweeps"
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=Path("EXPERIMENTS.md"),
        help="where to write the report (default: ./EXPERIMENTS.md)",
    )
    args = parser.parse_args(argv)
    scale = QUICK if args.quick else FULL
    markdown = generate(scale)
    args.output.write_text(markdown)
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
