"""Experiments E1–E10: one per claim in the paper (DESIGN.md §6).

Each function runs a sweep, renders tables, and evaluates executable
checks of the corresponding claim's *shape* (growth exponents, orderings,
crossovers, bounds).  ``Scale`` controls sweep sizes: ``QUICK`` keeps the
benchmarks snappy; ``FULL`` feeds the EXPERIMENTS.md report.

The paper has no empirical tables (it is a theory paper); the claims being
regenerated are the complexity statements of Sections 3–5, inventoried in
DESIGN.md §1.

Execution goes through :func:`repro.harness.parallel.run_sweep`: each
experiment stages its independent runs as a task list, the executor fans
them across cores when that pays off, and the results come back in task
order — so tables, checks, and verdicts are identical whether a sweep ran
serially or in parallel (the determinism suite asserts exactly this).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.adversary import wakeup
from repro.adversary.congestion import hotspot_scenario
from repro.adversary.delays import worst_case_unit
from repro.adversary.lower_bound import adversarial_run, corollary_bound, theorem_bound
from repro.analysis.charts import chart_series
from repro.analysis.complexity import boundedness_ratio, loglog_slope
from repro.apps.broadcast import Broadcast
from repro.apps.global_function import GlobalFunction
from repro.apps.spanning_tree import SpanningTree
from repro.core.reliable import ReliableDelivery
from repro.harness.parallel import run_sweep
from repro.harness.runner import ExperimentReport, messages_summary, time_summary
from repro.protocols.nosense.fault_tolerant import FaultTolerantElection
from repro.protocols.nosense.protocol_d import ProtocolD
from repro.protocols.nosense.protocol_e import AfekGafni, ProtocolE
from repro.protocols.nosense.protocol_f import ProtocolF
from repro.protocols.nosense.protocol_g import ProtocolG
from repro.protocols.sense.chang_roberts import ChangRoberts
from repro.protocols.sense.hirschberg_sinclair import HirschbergSinclair
from repro.protocols.sense.lmw86 import LMW86
from repro.protocols.sense.protocol_a import ProtocolA, ProtocolAPrime
from repro.protocols.sense.protocol_b import ProtocolB
from repro.protocols.sense.protocol_c import ProtocolC
from repro.sim.faults import FaultPlan
from repro.sim.network import Network, run_election
from repro.topology.complete import (
    complete_with_sense_of_direction,
    complete_without_sense,
)
from repro.topology.sense_of_direction import (
    ascii_figure,
    figure1,
    verify_sense_of_direction,
)


@dataclass(frozen=True)
class Scale:
    """Sweep sizes for one pass over the experiments."""

    ns: tuple[int, ...] = (16, 32, 64, 128)
    n_fixed: int = 128
    ks: tuple[int, ...] = (4, 8, 16, 32, 64)
    failure_counts: tuple[int, ...] = (0, 4, 8, 16, 31)
    base_counts: tuple[int, ...] = (1, 4, 16, 64, 128)
    seeds: tuple[int, ...] = (1, 2, 3)


QUICK = Scale()
FULL = Scale(
    ns=(16, 32, 64, 128, 256, 512),
    n_fixed=256,
    ks=(4, 8, 16, 32, 64, 128),
    failure_counts=(0, 8, 16, 32, 63),
    base_counts=(1, 4, 16, 64, 256),
    seeds=(1, 2, 3, 4, 5),
)


# ---------------------------------------------------------------------------
# E1 — Figure 1: the sense-of-direction labeling
# ---------------------------------------------------------------------------


def e1_figure1(scale: Scale = QUICK) -> ExperimentReport:
    """Reproduce Figure 1 and validate the labeling laws at every size."""
    report = ExperimentReport(
        "E1 — Figure 1 (sense of direction)",
        "A complete network has sense of direction when a directed "
        "Hamiltonian cycle exists and each edge is labeled with the cyclic "
        "distance to its far end (Figure 1 shows N=6).",
    )
    topology = figure1()
    verify_sense_of_direction(topology)
    report.check("figure-1 labeling is a valid sense of direction", True)
    report.find("figure 1", "\n" + ascii_figure(topology))
    rows = []
    for n in scale.ns:
        big = complete_with_sense_of_direction(n)
        verify_sense_of_direction(big)
        rows.append((n, big.num_ports, n * (n - 1) // 2))
    report.add_table(
        "Labeling validated at scale", ("N", "labeled ports/node", "edges"), rows
    )
    report.check(
        "labels are antisymmetric and cyclically consistent at every N",
        True,
        f"checked N in {scale.ns}",
    )
    return report


# ---------------------------------------------------------------------------
# E2 — message complexity with sense of direction
# ---------------------------------------------------------------------------

SENSE_PROTOCOLS = (
    ("CR", ChangRoberts),
    ("HS", HirschbergSinclair),
    ("LMW86", LMW86),
    ("A", ProtocolA),
    ("A'", ProtocolAPrime),
    ("B", ProtocolB),
    ("C", ProtocolC),
)


def e2_messages_sense(scale: Scale = QUICK) -> ExperimentReport:
    """LMW86/A/A′/C are O(N) messages; B is O(N log N)."""
    report = ExperimentReport(
        "E2 — messages, with sense of direction",
        "LMW86, A, A' and C require O(N) messages; B requires O(N log N) "
        "(Section 3).  All nodes wake simultaneously; worst-case unit delays.",
    )
    series: dict[str, list[float]] = {name: [] for name, _ in SENSE_PROTOCOLS}
    results = iter(run_sweep([
        lambda n=n, cls=cls: run_election(
            cls(), complete_with_sense_of_direction(n), delays=worst_case_unit()
        )
        for n in scale.ns
        for _, cls in SENSE_PROTOCOLS
    ]))
    rows = []
    for n in scale.ns:
        row: list[object] = [n]
        for name, _ in SENSE_PROTOCOLS:
            result = next(results)
            series[name].append(result.messages_total)
            row.append(result.messages_total)
        rows.append(row)
    report.add_table(
        "Total messages vs N",
        ("N", *(name for name, _ in SENSE_PROTOCOLS)),
        rows,
    )
    for name in ("LMW86", "A", "A'", "C"):
        slope = loglog_slope(scale.ns, series[name])
        report.find(f"{name} message growth exponent", round(slope, 3))
        report.check(
            f"{name} messages grow ~linearly (exponent <= 1.25)",
            slope <= 1.25,
            f"exponent {slope:.3f}",
        )
    slope_b = loglog_slope(scale.ns, series["B"])
    slope_c = loglog_slope(scale.ns, series["C"])
    report.find("B message growth exponent", round(slope_b, 3))
    report.check(
        "B (N log N) grows strictly faster than C (N)",
        slope_b > slope_c + 0.05,
        f"B {slope_b:.3f} vs C {slope_c:.3f}",
    )
    ratio = boundedness_ratio(scale.ns, series["C"], lambda n: n)
    report.check(
        "C messages/N stays within a constant band",
        ratio <= 3.0,
        f"max/min of messages/N = {ratio:.2f}",
    )
    report.find(
        "shape at a glance (log scale)",
        "\n" + chart_series(scale.ns, series),
    )
    return report


# ---------------------------------------------------------------------------
# E3 — time complexity with sense of direction
# ---------------------------------------------------------------------------


def e3_time_sense(scale: Scale = QUICK) -> ExperimentReport:
    """Under the chain wake-up: A is Θ(N), A′ is O(√N), C is O(log N)."""
    report = ExperimentReport(
        "E3 — time, with sense of direction",
        "The staggered chain (node i+1 wakes just before i's message "
        "arrives) drives A to Θ(N) time; A' bounds it by O(√N) via wake-up "
        "spreading; C runs in O(log N) (Section 3).",
    )
    protocols = (("LMW86", LMW86), ("A", ProtocolA), ("A'", ProtocolAPrime),
                 ("C", ProtocolC))
    series: dict[str, list[float]] = {name: [] for name, _ in protocols}
    results = iter(run_sweep([
        lambda n=n, cls=cls: run_election(
            cls(),
            complete_with_sense_of_direction(n),
            delays=worst_case_unit(),
            wakeup=wakeup.staggered_chain(),
        )
        for n in scale.ns
        for _, cls in protocols
    ]))
    rows = []
    for n in scale.ns:
        row: list[object] = [n]
        for name, _ in protocols:
            result = next(results)
            series[name].append(result.election_time)
            row.append(round(result.election_time, 2))
        rows.append(row)
    report.add_table(
        "Election time vs N (chain wake-up)",
        ("N", *(name for name, _ in protocols)),
        rows,
    )
    slope_a = loglog_slope(scale.ns, series["A"])
    slope_ap = loglog_slope(scale.ns, series["A'"])
    slope_c = loglog_slope(scale.ns, series["C"])
    report.find("A time exponent", round(slope_a, 3))
    report.find("A' time exponent", round(slope_ap, 3))
    report.find("C time exponent", round(slope_c, 3))
    report.check("A suffers ~linear time", slope_a >= 0.75, f"{slope_a:.3f}")
    report.check(
        "A' time grows like √N (exponent <= 0.72)", slope_ap <= 0.72, f"{slope_ap:.3f}"
    )
    report.check(
        "C time grows sublinearly, slower than A'",
        slope_c < slope_ap and slope_c <= 0.55,
        f"C {slope_c:.3f} vs A' {slope_ap:.3f}",
    )
    n_max = scale.ns[-1]
    final_c, final_ap, final_a = series["C"][-1], series["A'"][-1], series["A"][-1]
    report.check(
        "at the largest N the order is C < A' < A",
        final_c < final_ap < final_a,
        f"N={n_max}: C {final_c:.1f}, A' {final_ap:.1f}, A {final_a:.1f}",
    )
    report.find(
        "shape at a glance (log scale)",
        "\n" + chart_series(scale.ns, series),
    )
    return report


# ---------------------------------------------------------------------------
# E4 — Protocol A's k trade-off
# ---------------------------------------------------------------------------


def e4_k_tradeoff_a(scale: Scale = QUICK) -> ExperimentReport:
    """A's O(N + N²/k²) messages and A′'s O(k + N/k) time, swept over k."""
    report = ExperimentReport(
        "E4 — Protocol A/A' trade-off over k",
        "A sends O(N + N²/k²) messages, so k = √N is message-optimal; A' "
        "runs in O(k + N/k) time, minimised at the same point (Section 3).",
    )
    n = scale.n_fixed
    rows = []
    msgs_by_k: list[float] = []
    time_by_k: list[float] = []
    ks = [k for k in scale.ks if k <= n - 1]
    # The adversarial wake-up that makes both terms of O(k + N/k) bite:
    # a chain just *faster* than A''s awaken spread (which covers k
    # positions per time unit), so every node is still a base node and
    # the surviving candidate — the largest identity, at the far end —
    # wakes only after ~0.9·N/k, then pays its O(k) capture phase.
    results = run_sweep([
        lambda k=k: run_election(
            ProtocolAPrime(k=k),
            complete_with_sense_of_direction(n),
            delays=worst_case_unit(),
            wakeup=wakeup.staggered_uniform(n, spread=0.9 * n / k),
        )
        for k in ks
    ])
    for k, result in zip(ks, results):
        msgs_by_k.append(result.messages_total)
        time_by_k.append(result.election_time)
        rows.append((k, result.messages_total, round(result.election_time, 2)))
    report.add_table(
        f"A' at N={n}, chain wake-up at the awaken-spread rate",
        ("k", "messages", "time"),
        rows,
    )
    sqrt_index = min(
        range(len(ks)), key=lambda i: abs(ks[i] - math.sqrt(n))
    )
    report.find("k nearest √N", ks[sqrt_index])
    report.check(
        "messages at k≈√N beat small k (the N²/k² term)",
        msgs_by_k[sqrt_index] <= msgs_by_k[0],
        f"{msgs_by_k[sqrt_index]:.0f} <= {msgs_by_k[0]:.0f}",
    )
    report.check(
        "time at k≈√N beats both extremes (the k + N/k curve)",
        time_by_k[sqrt_index] <= time_by_k[0]
        and time_by_k[sqrt_index] <= time_by_k[-1],
        f"time(k≈√N)={time_by_k[sqrt_index]:.1f}, "
        f"time(k={ks[0]})={time_by_k[0]:.1f}, time(k={ks[-1]})={time_by_k[-1]:.1f}",
    )
    return report


# ---------------------------------------------------------------------------
# E5 — protocols D and ℰ (and the congestion duel vs AG85)
# ---------------------------------------------------------------------------


def e5_d_and_e(scale: Scale = QUICK) -> ExperimentReport:
    """D: O(1) time / O(N²) messages.  ℰ: O(N log N) messages, O(1) per
    capture — demonstrated by the hotspot duel against AG85."""
    report = ExperimentReport(
        "E5 — protocols D and ℰ (vs AG85)",
        "D elects in O(1) time with O(N²) messages; ℰ keeps AG85's "
        "O(N log N) messages while making each capture O(1) time — under "
        "the forwarding-congestion execution AG85 takes Θ(N) (Section 4).",
    )
    d_msgs, d_time, e_msgs, e_time = [], [], [], []
    rows = []
    sweep = iter(run_sweep([
        lambda cls=cls, n=n, seed=seed: run_election(
            cls(), complete_without_sense(n, seed=seed), seed=seed
        )
        for n in scale.ns
        for cls in (ProtocolD, ProtocolE)
        for seed in scale.seeds
    ]))
    for n in scale.ns:
        rd = [next(sweep) for _ in scale.seeds]
        re_ = [next(sweep) for _ in scale.seeds]
        d_msgs.append(messages_summary(rd).mean)
        d_time.append(time_summary(rd).mean)
        e_msgs.append(messages_summary(re_).mean)
        e_time.append(time_summary(re_).mean)
        rows.append(
            (n, int(d_msgs[-1]), round(d_time[-1], 2), int(e_msgs[-1]),
             round(e_time[-1], 2))
        )
    report.add_table(
        "D vs ℰ (simultaneous wake, unit delays)",
        ("N", "D msgs", "D time", "E msgs", "E time"),
        rows,
    )
    slope_d = loglog_slope(scale.ns, d_msgs)
    slope_e = loglog_slope(scale.ns, e_msgs)
    report.find("D message exponent", round(slope_d, 3))
    report.find("E message exponent", round(slope_e, 3))
    report.check("D messages grow ~quadratically", slope_d >= 1.8, f"{slope_d:.3f}")
    report.check(
        "D time is constant", max(d_time) <= 4.0, f"max {max(d_time):.2f}"
    )
    report.check(
        "E messages grow ~N log N (exponent in [1, 1.45])",
        1.0 <= slope_e <= 1.45,
        f"{slope_e:.3f}",
    )

    duel_rows = []
    ag_times, e_times = [], []
    duel_ns = [n for n in scale.ns if n >= 6]

    def duel_run(cls, n):
        topo, wake, delays = hotspot_scenario(n)
        return Network(cls(), topo, delays=delays, wakeup=wake).run()

    duel = iter(run_sweep([
        lambda cls=cls, n=n: duel_run(cls, n)
        for n in duel_ns
        for cls in (AfekGafni, ProtocolE)
    ]))
    for n in duel_ns:
        r_ag = next(duel)
        r_e = next(duel)
        ag_times.append(r_ag.election_time)
        e_times.append(r_e.election_time)
        duel_rows.append(
            (n, round(r_ag.election_time, 2), round(r_e.election_time, 2),
             round(r_ag.election_time / r_e.election_time, 2),
             r_ag.max_channel_load, r_e.max_channel_load)
        )
    report.add_table(
        "Forwarding-congestion duel (link load = busiest directed channel)",
        ("N", "AG85 time", "E time", "speed-up", "AG85 link load",
         "E link load"),
        duel_rows,
    )
    report.check(
        "flow control caps the hotspot link load AG85 lets grow ~linearly",
        duel_rows[-1][4] > 4 * duel_rows[-1][5],
        f"N={duel_rows[-1][0]}: AG85 {duel_rows[-1][4]} vs ℰ {duel_rows[-1][5]}",
    )
    slope_ag = loglog_slope(scale.ns, ag_times)
    report.find("AG85 hotspot time exponent", round(slope_ag, 3))
    report.check(
        "AG85 takes ~Θ(N) on the hotspot while ℰ stays fast",
        slope_ag >= 0.85 and ag_times[-1] / e_times[-1] >= 3.0,
        f"AG85 exponent {slope_ag:.3f}, final speed-up "
        f"{ag_times[-1] / e_times[-1]:.1f}x",
    )
    return report


# ---------------------------------------------------------------------------
# E6 — the ℱ/𝒢 family trade-off and the chain robustness of 𝒢
# ---------------------------------------------------------------------------


def e6_fg_tradeoff(scale: Scale = QUICK) -> ExperimentReport:
    """ℱ/𝒢: O(Nk) messages vs O(N/k) time; 𝒢 survives the chain."""
    report = ExperimentReport(
        "E6 — ℱ/𝒢 message-time trade-off over k",
        "ℱ and 𝒢 send O(Nk) messages and finish in O(N/k) time "
        "(Lemmas 4.1-4.3); ℱ's time bound needs clustered wake-ups, 𝒢's "
        "does not (Section 4).",
    )
    n = scale.n_fixed
    ks = [k for k in scale.ks if k <= n - 1]
    rows = []
    f_msgs, f_time, g_msgs, g_time = [], [], [], []
    sweep = iter(run_sweep([
        lambda cls=cls, k=k, seed=seed: run_election(
            cls(k=k), complete_without_sense(n, seed=seed),
            delays=worst_case_unit(), seed=seed,
        )
        for k in ks
        for cls in (ProtocolF, ProtocolG)
        for seed in scale.seeds
    ]))
    for k in ks:
        rf = [next(sweep) for _ in scale.seeds]
        rg = [next(sweep) for _ in scale.seeds]
        f_msgs.append(messages_summary(rf).mean)
        f_time.append(time_summary(rf).mean)
        g_msgs.append(messages_summary(rg).mean)
        g_time.append(time_summary(rg).mean)
        rows.append(
            (k, int(f_msgs[-1]), round(f_time[-1], 1), int(g_msgs[-1]),
             round(g_time[-1], 1))
        )
    report.add_table(
        f"ℱ and 𝒢 at N={n} (simultaneous wake)",
        ("k", "F msgs", "F time", "G msgs", "G time"),
        rows,
    )
    report.check(
        "G messages grow with k (the O(Nk) cost)",
        g_msgs[-1] > g_msgs[0] * 2,
        f"{g_msgs[0]:.0f} -> {g_msgs[-1]:.0f}",
    )
    report.check(
        "F time falls as k grows (the O(N/k) gain)",
        f_time[-1] < f_time[0],
        f"{f_time[0]:.1f} -> {f_time[-1]:.1f}",
    )

    # Chain robustness: the wake pattern Lemma 4.1 excludes.
    k_mid = ks[min(1, len(ks) - 1)]
    chain_f, chain_g = run_sweep([
        lambda cls=cls: run_election(
            cls(k=k_mid), complete_without_sense(n, seed=7),
            delays=worst_case_unit(), wakeup=wakeup.staggered_chain(), seed=7,
        )
        for cls in (ProtocolF, ProtocolG)
    ])
    report.find(
        f"chain wake-up at k={k_mid}",
        f"F time {chain_f.election_time:.1f}, G time {chain_g.election_time:.1f}",
    )
    report.check(
        "G beats F under the staggered chain (the point of the two phases)",
        chain_g.election_time < chain_f.election_time,
        f"G {chain_g.election_time:.1f} < F {chain_f.election_time:.1f}",
    )
    return report


# ---------------------------------------------------------------------------
# E7 — the Section 5 lower bound, executed
# ---------------------------------------------------------------------------


def e7_lower_bound(scale: Scale = QUICK) -> ExperimentReport:
    """Measured time respects N/16d and grows ~linearly under the adversary;
    the ℱ family's message-time product is Ω(N)."""
    report = ExperimentReport(
        "E7 — lower bound (Theorem 5.1 / corollary)",
        "A comparison-based protocol sending < Nd messages needs ≥ N/16d "
        "time; message-optimal protocols need Ω(N/log N).  We run the "
        "adversary (Up-first ports, unit delays, simultaneous wake) against "
        "ℰ and check the trade-off product across the ℱ family.",
    )
    rows = []
    times, bounds = [], []
    adversarial = run_sweep([
        lambda n=n: adversarial_run(ProtocolE(), n) for n in scale.ns
    ])
    for n, result in zip(scale.ns, adversarial):
        floor = theorem_bound(n, result.messages_total)
        times.append(result.election_time)
        bounds.append(floor)
        rows.append(
            (n, result.messages_total, round(result.election_time, 1),
             round(floor, 2), round(corollary_bound(n), 2))
        )
    report.add_table(
        "ℰ under the Section-5 adversary",
        ("N", "messages", "time", "N/16d floor", "corollary floor"),
        rows,
    )
    report.check(
        "measured time ≥ the N/16d floor at every N",
        all(t >= b for t, b in zip(times, bounds)),
        f"min slack {min(t / b for t, b in zip(times, bounds)):.1f}x",
    )
    slope_t = loglog_slope(scale.ns, times)
    report.find("adversarial time exponent", round(slope_t, 3))
    report.check(
        "adversarial time grows ~linearly in N",
        slope_t >= 0.85,
        f"{slope_t:.3f}",
    )

    # The engine of the proof (Lemmas 5.1/5.2): middle-band nodes stay in
    # order-equivalent states until asymmetric information physically
    # reaches them, so the symmetric prefix grows with band depth — and
    # with N.
    from repro.adversary.symmetry import check_band_symmetry
    from repro.topology.ports import UpDownPorts

    symmetry_rows = []
    centers = []
    # below ~32 nodes the "quarter deep" probe sits inside the extreme
    # band itself and the geometry degenerates
    sym_ns = [n for n in scale.ns if n >= 32]

    def traced_run(n):
        k = max(1, math.ceil(math.log2(n)))
        topology = complete_without_sense(n, port_strategy=UpDownPorts(k))
        return Network(
            ProtocolE(), topology, delays=worst_case_unit(), trace=True
        ).run()

    for n, traced in zip(
        sym_ns, run_sweep([lambda n=n: traced_run(n) for n in sym_ns])
    ):
        k = max(1, math.ceil(math.log2(n)))
        times = check_band_symmetry(traced, band_width=k)
        centers.append(times["center"])
        symmetry_rows.append(
            (n, round(times["near_extreme"], 1),
             round(times["quarter_deep"], 1), round(times["center"], 1),
             round(traced.election_time, 1))
        )
    report.add_table(
        "Band symmetry (Lemmas 5.1/5.2): how long identity-adjacent pairs "
        "stay order-equivalent",
        ("N", "near extreme", "quarter deep", "center", "election time"),
        symmetry_rows,
    )
    report.check(
        "symmetry persists longer deeper into the middle, at every N",
        all(row[1] < row[2] < row[3] for row in symmetry_rows),
    )
    slope_sym = loglog_slope([row[0] for row in symmetry_rows], centers)
    report.find("center-symmetry growth exponent", round(slope_sym, 3))
    report.check(
        "the center's symmetric prefix grows ~linearly with N "
        "(the proof's time floor)",
        slope_sym >= 0.85,
        f"{slope_sym:.3f}",
    )

    # Trade-off product: time × (messages/N) should be Ω(N) across k.
    n = scale.n_fixed
    ks = [k for k in scale.ks if k <= n - 1]
    product_rows = []
    products = []
    product_results = run_sweep([
        lambda k=k: run_election(
            ProtocolF(k=k), complete_without_sense(n, seed=11),
            delays=worst_case_unit(), seed=11,
        )
        for k in ks
    ])
    for k, result in zip(ks, product_results):
        d = result.messages_total / n
        product = result.election_time * d
        products.append(product)
        product_rows.append(
            (k, result.messages_total, round(result.election_time, 1),
             round(product, 1), round(n / 16, 1))
        )
    report.add_table(
        f"ℱ trade-off at N={n}: time × messages/N",
        ("k", "messages", "time", "time×d", "N/16"),
        product_rows,
    )
    report.check(
        "the time×d product never drops below N/16",
        all(p >= n / 16 for p in products),
        f"min product {min(products):.1f} vs floor {n / 16:.1f}",
    )
    return report


# ---------------------------------------------------------------------------
# E8 — fault tolerance
# ---------------------------------------------------------------------------


def e8_fault_tolerance(scale: Scale = QUICK) -> ExperimentReport:
    """Messages grow ~O(Nf + N log N); time stays sublinear; f < N/2."""
    report = ExperimentReport(
        "E8 — initial site failures",
        "The fault-tolerant variant elects a live leader despite f < N/2 "
        "initial site failures, with O(Nf + N log N) messages and "
        "sub-linear time (Section 4; BKWZ87 substitution per DESIGN.md §4).",
    )
    import random as random_module

    n = scale.n_fixed // 2
    rows = []
    msgs_by_f = []
    fs = [f for f in scale.failure_counts if f < n / 2]

    def faulty_run(f, seed):
        rng = random_module.Random(seed * 1000 + f)
        failed = set(rng.sample(range(1, n), f)) if f else set()
        return run_election(
            FaultTolerantElection(max_failures=max(f, 1)),
            complete_without_sense(n, seed=seed),
            failed_positions=failed,
            delays=worst_case_unit(),
            seed=seed,
        )

    sweep = iter(run_sweep([
        lambda f=f, seed=seed: faulty_run(f, seed)
        for f in fs
        for seed in scale.seeds
    ]))
    for f in fs:
        results = [next(sweep) for _ in scale.seeds]
        msgs = messages_summary(results)
        times = time_summary(results)
        msgs_by_f.append(msgs.mean)
        rows.append((f, str(msgs), str(times)))
    report.add_table(
        f"Fault-tolerant election at N={n}", ("f", "messages", "time"), rows
    )
    # The claim is an upper envelope: messages = O(N·f + N·log N).  Check
    # the worst constant over the sweep (one-sided — the f-term need not
    # dominate at small f).
    envelope = [
        msgs / (n * f + n * math.log2(n)) for f, msgs in zip(fs, msgs_by_f)
    ]
    report.find("messages / (N·f + N·log N), worst constant",
                round(max(envelope), 2))
    report.check(
        "messages stay under a constant times N·f + N·log N",
        max(envelope) <= 8.0,
        f"worst constant {max(envelope):.2f}",
    )
    report.check(
        "every run elected a live leader",
        True,
        "run_election verifies liveness/safety/validity on every run",
    )
    return report


# ---------------------------------------------------------------------------
# E9 — dependence on the number of base nodes
# ---------------------------------------------------------------------------


def e9_base_nodes(scale: Scale = QUICK) -> ExperimentReport:
    """Time grows with the number of base nodes r, then plateaus: ≤ O(N/k)
    for 𝒢, and O(log N + min(r, N/log N)) for the reconstructed R."""
    from repro.protocols.nosense.protocol_r import ProtocolR

    report = ExperimentReport(
        "E9 — number of base nodes r",
        "Via [Si92] the paper claims a message-optimal protocol with time "
        "O(log N + min(r, N/log N)), r = number of base nodes.  We measure "
        "𝒢 (plateaus under its unconditional O(N/k) ceiling) against the "
        "reconstructed Protocol R (DESIGN.md §4), whose wave conquest must "
        "show the claimed r-dependence.",
    )
    n = scale.n_fixed
    k = max(2, math.ceil(math.log2(n)))
    rows = []
    g_times, r_times = [], []
    rs = [r for r in scale.base_counts if r <= n]
    sweep = iter(run_sweep([
        lambda cls=cls, r=r, seed=seed: run_election(
            cls(k=k),
            complete_without_sense(n, seed=seed),
            delays=worst_case_unit(),
            wakeup=wakeup.random_subset(r, seed_offset=seed),
            seed=seed,
        )
        for r in rs
        for cls in (ProtocolG, ProtocolR)
        for seed in scale.seeds
    ]))
    for r in rs:
        g_results = [next(sweep) for _ in scale.seeds]
        r_results = [next(sweep) for _ in scale.seeds]
        g_summary, r_summary = time_summary(g_results), time_summary(r_results)
        g_times.append(g_summary.mean)
        r_times.append(r_summary.mean)
        rows.append(
            (r, str(g_summary), str(messages_summary(g_results)),
             str(r_summary), str(messages_summary(r_results)))
        )
    report.add_table(
        f"𝒢 vs R at N={n}, k={k}, r simultaneous base nodes",
        ("r", "G time", "G messages", "R time", "R messages"),
        rows,
    )
    ceiling = 12 * n / k
    report.find("O(N/k) ceiling used for G", round(ceiling, 1))
    report.check(
        "G's time stays under the unconditional O(N/k) ceiling at every r",
        all(t <= ceiling for t in g_times),
        f"max time {max(g_times):.1f} vs ceiling {ceiling:.1f}",
    )
    r_bound = [8 * (math.log2(n) + min(r, n / math.log2(n))) for r in rs]
    report.check(
        "R's time stays under c·(log N + min(r, N/log N)) at every r",
        all(t <= b for t, b in zip(r_times, r_bound)),
        f"worst slack {max(t / b for t, b in zip(r_times, r_bound)):.2f}",
    )
    report.check(
        "R beats G outright when r is small (the point of the refinement)",
        r_times[0] < g_times[0] / 2,
        f"r={rs[0]}: R {r_times[0]:.1f} vs G {g_times[0]:.1f}",
    )
    return report


# ---------------------------------------------------------------------------
# E10 — applications inherit election complexity
# ---------------------------------------------------------------------------


def e10_applications(scale: Scale = QUICK) -> ExperimentReport:
    """Spanning tree / global function / broadcast cost election + O(N)."""
    report = ExperimentReport(
        "E10 — equivalence of spanning tree, global function, broadcast",
        "Spanning-tree construction, computing a global function, etc. are "
        "equivalent to election in message and time complexity (Section 1): "
        "each costs the election plus O(N) messages and O(1) time.",
    )
    rows = []
    ok_overhead = True
    factories = (
        ("bare", ProtocolC),
        ("tree", lambda: SpanningTree(ProtocolC())),
        ("global-sum", lambda: GlobalFunction(ProtocolC(), fold="sum")),
        ("broadcast", lambda: Broadcast(ProtocolC())),
    )
    sweep = iter(run_sweep([
        lambda factory=factory, n=n: run_election(
            factory(),
            complete_with_sense_of_direction(n),
            delays=worst_case_unit(),
        )
        for n in scale.ns
        for _, factory in factories
    ]))
    for n in scale.ns:
        bare = next(sweep)
        apps = {name: next(sweep) for name, _ in factories[1:]}
        row = [n, bare.messages_total]
        for name, result in apps.items():
            overhead = result.messages_total - bare.messages_total
            time_overhead = result.quiescent_at - bare.quiescent_at
            row.extend([overhead, round(time_overhead, 1)])
            if not 0 < overhead <= 4 * n or time_overhead > 8:
                ok_overhead = False
        rows.append(tuple(row))
        # semantic checks at the largest size
        if n == scale.ns[-1]:
            expected = sum(range(n))
            sums_ok = all(
                s["global_result"] == expected
                for s in apps["global-sum"].node_snapshots
            )
            report.check(
                "every node computes the exact global sum", sums_ok, f"Σ={expected}"
            )
            tree = apps["tree"].node_snapshots
            parents = sum(1 for s in tree if s["parent_port"] is not None)
            report.check(
                "spanning tree has exactly N-1 edges and all know the root",
                parents == n - 1
                and all(s["leader_id"] == apps["tree"].leader_id for s in tree),
                f"{parents} parent pointers",
            )
    report.add_table(
        "App overhead beyond bare Protocol C",
        ("N", "C msgs", "tree Δmsgs", "Δt", "sum Δmsgs", "Δt", "bcast Δmsgs", "Δt"),
        rows,
    )
    report.check(
        "every app costs O(N) extra messages and O(1) extra time",
        ok_overhead,
    )
    return report


# ---------------------------------------------------------------------------
# E11 — the asynchrony penalty
# ---------------------------------------------------------------------------


def e11_asynchrony_penalty(scale: Scale = QUICK) -> ExperimentReport:
    """Synchronous O(log N) rounds vs asynchronous Ω(N/log N) time: the
    paper's N/(log N)² speed loss."""
    from repro.sim.rounds import run_synchronous

    report = ExperimentReport(
        "E11 — asynchrony penalty",
        "In synchronous complete networks election takes O(log N) rounds "
        "([AG85], realised here by protocol B under lock-step rounds); "
        "message-optimal asynchronous election needs Ω(N/log N) time "
        "(Corollary 5.1).  'Introducing asynchrony may result in a loss in "
        "speed by a factor of N/(logN)²' (Sections 1 and 6).",
    )
    rows = []
    sync_rounds, async_times, penalties = [], [], []
    ns = [n for n in scale.ns if n >= 8]
    sweep = iter(run_sweep([
        task
        for n in ns
        for task in (
            lambda n=n: run_synchronous(
                ProtocolB(), complete_with_sense_of_direction(n)
            ),
            lambda n=n: adversarial_run(ProtocolE(), n),
        )
    ]))
    for n in ns:
        sync = next(sweep)
        asyn = next(sweep)
        penalty = asyn.election_time / sync.rounds
        sync_rounds.append(sync.rounds)
        async_times.append(asyn.election_time)
        penalties.append(penalty)
        rows.append(
            (n, sync.rounds, round(asyn.election_time, 1),
             round(penalty, 1), round(n / math.log2(n) ** 2, 1))
        )
    report.add_table(
        "Synchronous B (rounds) vs adversarial asynchronous ℰ (time)",
        ("N", "sync rounds", "async time", "measured penalty", "N/log²N"),
        rows,
    )
    slope_sync = loglog_slope(ns, sync_rounds)
    slope_penalty = loglog_slope(ns, penalties)
    report.find("sync round growth exponent", round(slope_sync, 3))
    report.find("penalty growth exponent", round(slope_penalty, 3))
    report.check(
        "synchronous rounds grow sub-polynomially (O(log N))",
        slope_sync <= 0.45,
        f"{slope_sync:.3f}",
    )
    report.check(
        "the penalty grows ~N/polylog(N) (exponent >= 0.6)",
        slope_penalty >= 0.6,
        f"{slope_penalty:.3f}",
    )
    report.check(
        "the penalty exceeds N/(4·log²N) at every N",
        all(p >= n / (4 * math.log2(n) ** 2) for p, n in zip(penalties, ns)),
        f"min margin {min(p / (n / (4 * math.log2(n) ** 2)) for p, n in zip(penalties, ns)):.1f}x",
    )
    return report


# ---------------------------------------------------------------------------
# E12 — survivability under link faults
# ---------------------------------------------------------------------------


def e12_survivability(scale: Scale = QUICK) -> ExperimentReport:
    """Elections stay correct over lossy links behind the retransmission
    overlay; FT's O(Nf + N log N) envelope survives 10% loss; mid-run
    crashes never produce two surviving leaders."""
    import random as random_module

    report = ExperimentReport(
        "E12 — survivability under link faults",
        "The model assumes reliable FIFO links (Section 2).  A seeded "
        "FaultPlan breaks that assumption — loss, duplication, bounded "
        "reordering — and the retransmission overlay restores it, so every "
        "protocol's correctness must survive unchanged; only the message "
        "bill may grow.  Mid-run crash-stop goes beyond the paper's initial "
        "site failures, so there we demand safety only.",
    )

    # -- drop-rate sweep: correctness and overhead --------------------------
    drops = (0.0, 0.10, 0.25)
    ns = tuple(n for n in scale.ns if n <= 128)
    protocols = (
        ("C", lambda: ProtocolC(), True),
        ("E", lambda: ProtocolE(), False),
        ("FT", lambda: FaultTolerantElection(max_failures=1), False),
    )

    def lossy_run(factory, sense, n, drop):
        topology = (
            complete_with_sense_of_direction(n)
            if sense
            else complete_without_sense(n, seed=1)
        )
        plan = FaultPlan(seed=n, drop=drop, duplicate=drop / 2)
        return run_election(
            ReliableDelivery(factory()), topology, faults=plan, seed=1
        )

    sweep = iter(run_sweep([
        lambda factory=factory, sense=sense, n=n, drop=drop: lossy_run(
            factory, sense, n, drop
        )
        for drop in drops
        for n in ns
        for _, factory, sense in protocols
    ]))
    rows = []
    msgs_at: dict[tuple[str, float, int], float] = {}
    rexmit_at: dict[tuple[str, float, int], int] = {}
    for drop in drops:
        for n in ns:
            row: list[object] = [drop, n]
            for name, _, _ in protocols:
                result = next(sweep)
                msgs_at[name, drop, n] = result.messages_total
                rexmit_at[name, drop, n] = result.retransmissions
                row.extend([result.messages_total, result.retransmissions])
            rows.append(tuple(row))
    report.add_table(
        "Messages and retransmissions over lossy links (overlay installed)",
        ("drop", "N", "C msgs", "C rexmit", "E msgs", "E rexmit",
         "FT msgs", "FT rexmit"),
        rows,
    )
    report.check(
        "every lossy run elected a verified unique live leader",
        True,
        f"run_election verifies every run; drops {drops}, N in {ns}",
    )
    # The overlay's coarse per-node timer retransmits a little even without
    # loss (a packet sent just before an older packet's deadline shares its
    # timer); what loss adds on top must show in the counter.
    report.check(
        "retransmissions grow with the drop rate, per protocol and N",
        all(
            rexmit_at[name, drops[-1], n] > rexmit_at[name, 0.0, n]
            for name, _, _ in protocols for n in ns
        ),
    )
    overhead = [
        msgs_at[name, drops[-1], n] / msgs_at[name, 0.0, n]
        for name, _, _ in protocols
        for n in ns
    ]
    report.find(
        f"message overhead at drop={drops[-1]} vs drop=0, worst ratio",
        round(max(overhead), 2),
    )
    report.check(
        "25% loss costs at most a constant-factor message overhead",
        max(overhead) <= 3.0,
        f"worst ratio {max(overhead):.2f}",
    )

    # -- FT's envelope under loss -------------------------------------------
    n = scale.n_fixed // 2
    fs = [f for f in scale.failure_counts if f < n / 2]
    drop = 0.10

    def ft_lossy_run(f, seed):
        rng = random_module.Random(seed * 1000 + f)
        failed = set(rng.sample(range(1, n), f)) if f else set()
        plan = FaultPlan(seed=seed, drop=drop, duplicate=drop / 2)
        return run_election(
            ReliableDelivery(FaultTolerantElection(max_failures=max(f, 1))),
            complete_without_sense(n, seed=seed),
            failed_positions=failed,
            faults=plan,
            seed=seed,
        )

    ft_results = run_sweep([
        lambda f=f: ft_lossy_run(f, seed=scale.seeds[0]) for f in fs
    ])
    ft_rows = []
    envelope = []
    for f, result in zip(fs, ft_results):
        bound = n * f + n * math.log2(n)
        envelope.append(result.messages_total / bound)
        ft_rows.append(
            (f, result.messages_total, result.retransmissions,
             round(result.messages_total / bound, 2))
        )
    report.add_table(
        f"FT at N={n} under drop={drop}: messages vs the N·f + N·log N bound",
        ("f", "messages", "rexmit", "constant"),
        ft_rows,
    )
    report.check(
        "FT's messages stay O(N·f + N·log N) even over lossy links "
        "(overlay envelopes and acks included)",
        max(envelope) <= 24.0,
        f"worst constant {max(envelope):.2f}",
    )

    # -- mid-run crash-stop: safety only ------------------------------------
    crash_n = 32
    crash_rows = []
    safety_ok = True

    def crash_run(seed):
        rng = random_module.Random(seed)
        victims = rng.sample(range(crash_n), 3)
        plan = FaultPlan(
            seed=seed,
            drop=0.05,
            crashes={v: rng.uniform(0.0, 3.0) for v in victims},
        )
        return run_election(
            ReliableDelivery(ProtocolE()),
            complete_without_sense(crash_n, seed=seed),
            faults=plan,
            seed=seed,
            require_leader=False,
        )

    for seed, result in zip(
        scale.seeds, run_sweep([lambda s=s: crash_run(s) for s in scale.seeds])
    ):
        live_leaders = [
            s for position, s in enumerate(result.node_snapshots)
            if s["is_leader"] and position not in result.crashed_positions
        ]
        if len(live_leaders) > 1:
            safety_ok = False
        crash_rows.append(
            (seed, result.crashed_positions, len(live_leaders),
             result.leader_crashed)
        )
    report.add_table(
        f"3 mid-run crashes at N={crash_n} (drop=0.05, overlay installed)",
        ("seed", "crashed", "live leaders", "leader crashed"),
        crash_rows,
    )
    report.check(
        "mid-run crashes never leave two surviving leaders (safety)",
        safety_ok,
        f"{len(crash_rows)} crash schedules",
    )
    return report


# ---------------------------------------------------------------------------
# E13 — randomized sublinear elections (the deterministic/randomized tradeoff)
# ---------------------------------------------------------------------------


def e13_randomized_sublinear(scale: Scale = QUICK) -> ExperimentReport:
    """The randomized family beats the paper's deterministic Ω(N log N)
    message bound by paying in certainty: candidate sampling (RS) and the
    wave-paced tradeoff point (RT) elect w.h.p. with strictly sublinear
    messages, measured against Protocol E's n log n on the same sizes."""
    from repro.matrix.spec import family_seed
    from repro.protocols.random.common import whp_message_bound
    from repro.protocols.random.protocol_rs import RandomizedSampling
    from repro.protocols.random.protocol_rt import RandomizedTradeoff

    report = ExperimentReport(
        "E13 — randomized sublinear elections",
        "The paper's Section 5 lower bound (Ω(N log N) messages) binds "
        "deterministic protocols only.  The randomized family trades "
        "certainty for messages: candidate sampling (RS, after "
        "arXiv 1210.4822) elects w.h.p. in O(1) time with "
        "O(sqrt(N) log^1.5 N) messages, and the wave-paced variant (RT, "
        "after the arXiv 2301.08235 tradeoff) spends O(log N) time to "
        "cut the expected message bill further.  Both curves must come "
        "out strictly sublinear in N where the deterministic n log n "
        "baseline (Protocol B, the paper's Section 3 O(N log N) "
        "protocol) is superlinear.  Protocols, coin streams and the "
        "statistical gate: docs/randomized.md.",
    )

    # The sublinear regime only: below N=64 the referee sample saturates
    # at s = N-1 and RS degenerates to probe-everyone.
    ns = tuple(n for n in (64, 128, 256, 512) if n <= 2 * scale.n_fixed)
    trials = 10 * len(scale.seeds)

    def randomized_run(cls, tag, n, index):
        seed = family_seed(f"e13/{tag}/{n}", index)
        return run_election(
            cls(), complete_without_sense(n, seed=seed), seed=seed
        )

    curves: dict[str, list[tuple[int, float, float, int]]] = {}
    success_total = 0
    bound_total = 0
    for tag, cls in (("RS", RandomizedSampling), ("RT", RandomizedTradeoff)):
        rows = []
        for n in ns:
            results = run_sweep([
                lambda c=cls, t=tag, n=n, i=i: randomized_run(c, t, n, i)
                for i in range(trials)
            ])
            for result in results:
                result.verify()
            success_total += sum(
                1 for r in results if r.leader_id is not None
            )
            bound_total += sum(
                1
                for r in results
                if r.messages_total <= whp_message_bound(n)
            )
            rows.append((
                n,
                sum(r.messages_total for r in results) / trials,
                sum(r.election_time for r in results) / trials,
                max(r.messages_total for r in results),
            ))
        curves[tag] = rows

    det_rows = []
    for n in ns:
        result = run_election(
            ProtocolB(), complete_with_sense_of_direction(n), seed=1
        )
        result.verify()
        det_rows.append((n, result.messages_total, result.election_time))

    report.add_table(
        "Deterministic vs randomized tradeoff (messages/time, mean over "
        f"{trials} seeded trials per size)",
        ("N", "B msgs", "RS msgs", "RS time", "RT msgs", "RT time"),
        [
            (
                n,
                det_rows[i][1],
                round(curves["RS"][i][1]), round(curves["RS"][i][2], 1),
                round(curves["RT"][i][1]), round(curves["RT"][i][2], 1),
            )
            for i, n in enumerate(ns)
        ],
    )

    rs_exponent = loglog_slope(ns, [row[1] for row in curves["RS"]])
    rt_exponent = loglog_slope(ns, [row[1] for row in curves["RT"]])
    det_exponent = loglog_slope(ns, [row[1] for row in det_rows])
    total_trials = 2 * len(ns) * trials
    success_rate = success_total / total_trials
    report.find("rs_message_exponent", round(rs_exponent, 3))
    report.find("rt_message_exponent", round(rt_exponent, 3))
    report.find("det_message_exponent", round(det_exponent, 3))
    report.find("whp_success_rate", round(success_rate, 4))
    report.find(
        "rs_message_ratio_vs_det_at_max_n",
        round(curves["RS"][-1][1] / det_rows[-1][1], 3),
    )

    report.check(
        "randomized message growth is strictly sublinear where the "
        "deterministic baseline is superlinear",
        rs_exponent < 1.0 < det_exponent and rt_exponent < 1.0,
        f"exponents: RS {rs_exponent:.2f}, RT {rt_exponent:.2f}, "
        f"B {det_exponent:.2f}",
    )
    report.check(
        "every trial elected a leader (w.h.p. liveness at these sizes)",
        success_total == total_trials,
        f"{success_total}/{total_trials} trials",
    )
    report.check(
        "every trial stayed within the whp message bound "
        "ceil(9 ln N)*(4s+4)",
        bound_total == total_trials,
        f"{bound_total}/{total_trials} trials",
    )
    report.check(
        "RT's wave pacing buys messages with time "
        "(fewer messages, more time than RS at every size)",
        all(
            curves["RT"][i][1] < curves["RS"][i][1]
            and curves["RT"][i][2] >= curves["RS"][i][2]
            for i in range(len(ns))
        ),
        "the arXiv 2301.08235 tradeoff direction",
    )
    return report


ALL_EXPERIMENTS = (
    e1_figure1,
    e2_messages_sense,
    e3_time_sense,
    e4_k_tradeoff_a,
    e5_d_and_e,
    e6_fg_tradeoff,
    e7_lower_bound,
    e8_fault_tolerance,
    e9_base_nodes,
    e10_applications,
    e11_asynchrony_penalty,
    e12_survivability,
    e13_randomized_sublinear,
)


def run_all(scale: Scale = QUICK) -> list[ExperimentReport]:
    """Run every experiment at the given scale."""
    return [experiment(scale) for experiment in ALL_EXPERIMENTS]
