"""Experiment harness: definitions E1-E11, scenarios, report generation."""
