"""Experiment plumbing: repeated runs and structured reports.

An experiment (one row of DESIGN.md §6) runs a sweep, condenses it into
tables, and evaluates *checks* — executable versions of the paper's claims
("messages grow linearly", "𝒢 beats ℱ under the chain", "measured time ≥
N/16d").  The same report objects back both the pytest benchmarks (which
assert ``report.passed``) and the EXPERIMENTS.md generator (which renders
them).
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass, field
from typing import Any

from repro.analysis.stats import Summary, summarize
from repro.analysis.tables import render_table
from repro.core.results import ElectionResult


@dataclass(frozen=True, slots=True)
class Check:
    """One executable claim with its verdict."""

    name: str
    passed: bool
    detail: str


@dataclass
class ExperimentReport:
    """Everything one experiment produced."""

    experiment: str
    claim: str
    tables: list[tuple[str, Sequence[str], list[Sequence[Any]]]] = field(
        default_factory=list
    )
    findings: list[tuple[str, Any]] = field(default_factory=list)
    checks: list[Check] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        """True when every check held."""
        return all(check.passed for check in self.checks)

    def add_table(
        self, title: str, headers: Sequence[str], rows: list[Sequence[Any]]
    ) -> None:
        """Attach one result table."""
        self.tables.append((title, headers, rows))

    def check(self, name: str, passed: bool, detail: str = "") -> None:
        """Record one claim verdict."""
        self.checks.append(Check(name, bool(passed), detail))

    def find(self, key: str, value: Any) -> None:
        """Record one headline number."""
        self.findings.append((key, value))

    def render(self) -> str:
        """Full plain-text report (used verbatim in EXPERIMENTS.md)."""
        lines = [f"### {self.experiment}", "", f"**Paper claim.** {self.claim}", ""]
        for title, headers, rows in self.tables:
            lines.append(f"**{title}**")
            lines.append("")
            lines.append(render_table(headers, rows))
            lines.append("")
        if self.findings:
            lines.append("**Measured.**")
            for key, value in self.findings:
                lines.append(f"- {key}: {value}")
            lines.append("")
        lines.append("**Checks.**")
        for check in self.checks:
            mark = "PASS" if check.passed else "FAIL"
            suffix = f" — {check.detail}" if check.detail else ""
            lines.append(f"- [{mark}] {check.name}{suffix}")
        lines.append("")
        return "\n".join(lines)

    def raise_if_failed(self) -> None:
        """Raise AssertionError listing the failed checks (for pytest)."""
        failed = [c for c in self.checks if not c.passed]
        if failed:
            details = "; ".join(f"{c.name} ({c.detail})" for c in failed)
            raise AssertionError(f"{self.experiment}: failed checks: {details}")

    def to_payload(
        self, *, tables: dict[str, int] | None = None
    ) -> dict[str, Any]:
        """JSON-able snapshot: findings + check verdicts (+ named tables).

        This is the shape the committed ``BENCH_*.json`` snapshots use
        (and what the trend gate walks): ``findings`` as a mapping,
        ``checks`` as name → bool.  ``tables`` selects report tables to
        embed, as ``{json_key: table_index}``.
        """
        payload: dict[str, Any] = {
            "experiment": self.experiment,
            "findings": dict(self.findings),
            "checks": {check.name: check.passed for check in self.checks},
        }
        for key, index in (tables or {}).items():
            title, headers, rows = self.tables[index]
            payload[key] = {
                "title": title,
                "header": list(headers),
                "rows": [list(row) for row in rows],
            }
        return payload


def report_digest(payload: dict[str, Any]) -> str:
    """SHA-256 over a payload's canonical JSON serialisation."""
    import hashlib
    import json

    canonical = json.dumps(payload, sort_keys=True).encode()
    return hashlib.sha256(canonical).hexdigest()


def repeat(
    run: Callable[[int], ElectionResult], seeds: Iterable[int]
) -> list[ElectionResult]:
    """Run one configuration across ``seeds`` and return all results."""
    return [run(seed) for seed in seeds]


def messages_summary(results: Sequence[ElectionResult]) -> Summary:
    """Summary of total messages across repeats."""
    return summarize([r.messages_total for r in results])


def time_summary(results: Sequence[ElectionResult]) -> Summary:
    """Summary of election time across repeats."""
    return summarize([r.election_time for r in results])
