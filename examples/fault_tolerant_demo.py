"""Electing a live leader despite initial site failures (Section 4).

Kills up to ⌈N/2⌉-1 randomly chosen nodes before the run starts (they never
respond to anything) and shows the fault-tolerant protocol still electing a
live leader, with message cost growing roughly as O(Nf + N log N).

Usage::

    python examples/fault_tolerant_demo.py [N]
"""

from __future__ import annotations

import random
import sys

from repro import FaultTolerantElection, complete_without_sense, run_election
from repro.analysis.tables import render_table


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 64
    f_max = (n - 1) // 2
    rows = []
    for f in sorted({0, f_max // 4, f_max // 2, f_max}):
        rng = random.Random(f)
        failed = set(rng.sample(range(n), f))
        result = run_election(
            FaultTolerantElection(max_failures=max(f, 1)),
            complete_without_sense(n, seed=f),
            failed_positions=failed,
            seed=f,
        )
        assert result.leader_position not in failed
        rows.append(
            (f, result.leader_id, result.messages_total,
             round(result.election_time, 1))
        )
    print(f"fault-tolerant election, N={n} (dead nodes never respond):\n")
    print(render_table(("failures f", "leader", "messages", "time"), rows))
    print("\nThe leader is always a live node; messages grow with f as the")
    print("redundancy window pays for claims that black-hole into dead nodes.")


if __name__ == "__main__":
    main()
