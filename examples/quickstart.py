"""Quickstart: elect a leader three ways.

Runs the paper's headline protocol (C) on a labeled complete network, the
unconditional-time protocol (𝒢) on an unlabeled one, and prints what each
run cost.  Everything here is the public API surface a downstream user
would touch first.

Usage::

    python examples/quickstart.py [N]
"""

from __future__ import annotations

import sys

from repro import (
    ProtocolC,
    ProtocolG,
    UniformDelay,
    complete_with_sense_of_direction,
    complete_without_sense,
    run_election,
)


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 64

    # --- with sense of direction: O(N) messages, O(log N) time -------------
    topology = complete_with_sense_of_direction(n)
    result = run_election(ProtocolC(), topology)
    print("Protocol C (labeled network, worst-case unit delays)")
    print(f"  {result.summary()}")
    print(f"  messages/node = {result.messages_per_node:.1f}")

    # --- without sense of direction: O(Nk) messages, O(N/k) time -----------
    topology = complete_without_sense(n, seed=42)
    result = run_election(
        ProtocolG(k=8), topology, delays=UniformDelay(0.1, 1.0), seed=42
    )
    print("Protocol G(k=8) (unlabeled network, random delays)")
    print(f"  {result.summary()}")

    # --- everything is verified: liveness, safety, validity ----------------
    result.verify()
    print("verified: exactly one leader, and it is a base node")


if __name__ == "__main__":
    main()
