"""The adversary gallery: one protocol, every hostile environment.

Runs the same protocols through each named scenario from
`repro.harness.scenarios` and prints the message/time matrix — a compact
demonstration of which adversary hurts which design, and of the specific
defence each of the paper's protocols contributes:

* the **chain** wake-up ruins ℱ but not 𝒢 (the ordering phases);
* **adversarial ports** pin message-optimal ℰ to ~linear time
  (Theorem 5.1), while 𝒢 pays messages to stay fast;
* **congested** links (unit inter-message spacing) are survivable for
  everyone *except* unmodified AG85 on a hotspot (see benchmark E5).

Usage::

    python examples/adversary_gallery.py [N]
"""

from __future__ import annotations

import sys

from repro import AfekGafni, ProtocolE, ProtocolG, ProtocolR
from repro.analysis.tables import render_table
from repro.core.errors import ConfigurationError
from repro.harness.scenarios import SCENARIOS, run_scenario

PROTOCOLS = [
    ("AG85", lambda: AfekGafni()),
    ("E", lambda: ProtocolE()),
    ("G(k=8)", lambda: ProtocolG(k=8)),
    ("R", lambda: ProtocolR()),
]


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 64
    print(f"adversary gallery at N={n} — election time (messages)\n")
    headers = ["scenario"] + [name for name, _ in PROTOCOLS]
    rows = []
    for scenario_name, scenario in sorted(SCENARIOS.items()):
        row = [scenario_name]
        for _, factory in PROTOCOLS:
            try:
                result = run_scenario(factory(), scenario_name, n, seed=3)
            except ConfigurationError:
                row.append("n/a")
                continue
            row.append(
                f"{result.election_time:.1f} ({result.messages_total})"
            )
        rows.append(row)
    print(render_table(headers, rows))
    print()
    for scenario in sorted(SCENARIOS.values(), key=lambda s: s.name):
        print(f"  {scenario.name:18s} {scenario.description}")


if __name__ == "__main__":
    main()
