"""Run the Section 5 lower-bound adversary against message-optimal ℰ.

The adversary wires fresh ports Up-first and schedules worst-case unit
delays; a comparison-based message-optimal protocol is then forced into a
long identity chain.  The table shows measured time staying above the
Theorem 5.1 floor N/16d (d = messages/N) and growing linearly — far above
the O(log N) that sense of direction, or a synchronous network, would
allow.

Usage::

    python examples/lower_bound_adversary.py [N ...]
"""

from __future__ import annotations

import sys

from repro.adversary.lower_bound import (
    adversarial_run,
    corollary_bound,
    theorem_bound,
)
from repro.analysis.tables import render_table
from repro.protocols.nosense.protocol_e import ProtocolE


def main() -> None:
    sizes = [int(a) for a in sys.argv[1:]] or [32, 64, 128, 256]
    rows = []
    for n in sizes:
        result = adversarial_run(ProtocolE(), n)
        rows.append(
            (
                n,
                result.messages_total,
                round(result.election_time, 1),
                round(theorem_bound(n, result.messages_total), 2),
                round(corollary_bound(n), 2),
            )
        )
    print("Protocol ℰ under the Section-5 adversary "
          "(Up-first ports, unit delays):\n")
    print(render_table(
        ("N", "messages", "time", "N/16d floor", "N/16·logN floor"), rows
    ))
    print("\nEvery measured time sits above both floors, and doubles with N —")
    print("the asynchrony penalty of Theorem 5.1 made concrete.")


if __name__ == "__main__":
    main()
