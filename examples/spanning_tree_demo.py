"""Spanning tree and global aggregation on top of election (Section 1).

Elects a leader with 𝒢 on an unlabeled network, builds the BFS (star)
spanning tree rooted at it, then computes a global sum — demonstrating the
paper's claim that these problems are message/time-equivalent to election.

Usage::

    python examples/spanning_tree_demo.py [N]
"""

from __future__ import annotations

import sys

from repro import (
    GlobalFunction,
    ProtocolG,
    SpanningTree,
    complete_without_sense,
    run_election,
)


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 32

    bare = run_election(ProtocolG(k=4), complete_without_sense(n, seed=9))
    print(f"bare election:      {bare.summary()}")

    tree = run_election(
        SpanningTree(ProtocolG(k=4)), complete_without_sense(n, seed=9)
    )
    print(f"with spanning tree: {tree.summary()}")
    print(f"  tree overhead: +{tree.messages_total - bare.messages_total} "
          f"messages, +{tree.quiescent_at - bare.quiescent_at:.1f} time")
    root = tree.node_snapshots[tree.leader_position]
    assert root["tree_complete"]
    print(f"  root {tree.leader_id} adopted {root['children']} children; "
          f"every node knows the root")

    sums = run_election(
        GlobalFunction(ProtocolG(k=4), fold="sum", input_fn=lambda i: i * i),
        complete_without_sense(n, seed=9),
    )
    value = sums.node_snapshots[0]["global_result"]
    print(f"with global Σ i²:   {sums.summary()}")
    print(f"  every node now holds Σ i² = {value} "
          f"(exact: {sum(i * i for i in range(n))})")


if __name__ == "__main__":
    main()
