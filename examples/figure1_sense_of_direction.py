"""Reproduce Figure 1: the 6-node complete network with sense of direction.

Prints the chord structure exactly as the paper's figure annotates it,
verifies the two labeling laws (antisymmetry and cyclic consistency), and —
when networkx is available — reports graph-level statistics from the
exported DiGraph.

Usage::

    python examples/figure1_sense_of_direction.py
"""

from __future__ import annotations

from repro.topology.sense_of_direction import (
    ascii_figure,
    figure1,
    verify_sense_of_direction,
)


def main() -> None:
    topology = figure1()
    print(ascii_figure(topology))
    verify_sense_of_direction(topology)
    print()
    print("labeling laws verified:")
    print("  * label(u->v) + label(v->u) = N on every edge")
    print("  * label d at node p always reaches position (p + d) mod N")

    try:
        from repro.topology.sense_of_direction import as_networkx
    except ImportError:  # pragma: no cover
        return
    try:
        graph = as_networkx(topology)
    except ImportError:
        print("(networkx not installed; skipping graph export)")
        return
    print()
    print(f"networkx export: {graph.number_of_nodes()} nodes, "
          f"{graph.number_of_edges()} directed labeled edges")
    hamiltonian = [
        (u, v) for u, v, d in graph.edges(data="label") if d == 1
    ]
    print(f"directed Hamiltonian cycle (label-1 chords): {hamiltonian}")


if __name__ == "__main__":
    main()
