"""Exhaustively verify small elections — every interleaving, not a sample.

The paper's guarantees quantify over *all* executions; this example runs
the library's explicit-state explorer over every interleaving of wake-ups
and FIFO deliveries for small instances of each protocol, confirming that
safety (never two leaders), liveness (always one at quiescence) and
validity (the leader woke spontaneously) hold in all of them.

One fact the exploration surfaces that sampling never would: *any* base
node can win under some adversary — the schedule can deliver a capture to
a rival before its spontaneous wake-up, demoting it to a passive bystander.

Usage::

    python examples/exhaustive_verification.py
"""

from __future__ import annotations

import time

from repro import (
    AfekGafni,
    ChangRoberts,
    HirschbergSinclair,
    LMW86,
    ProtocolA,
    ProtocolC,
    ProtocolD,
    ProtocolE,
    complete_with_sense_of_direction,
    complete_without_sense,
)
from repro.analysis.tables import render_table
from repro.verification import explore_protocol

INSTANCES = [
    ("A", ProtocolA(), complete_with_sense_of_direction(3)),
    ("LMW86", LMW86(), complete_with_sense_of_direction(3)),
    ("C", ProtocolC(), complete_with_sense_of_direction(4)),
    ("CR", ChangRoberts(), complete_with_sense_of_direction(4)),
    ("HS", HirschbergSinclair(), complete_with_sense_of_direction(3)),
    ("D", ProtocolD(), complete_without_sense(3, seed=0)),
    ("AG85", AfekGafni(), complete_without_sense(3, seed=0)),
    ("E", ProtocolE(), complete_without_sense(3, seed=0)),
]


def main() -> None:
    rows = []
    for name, protocol, topology in INSTANCES:
        started = time.time()
        report = explore_protocol(protocol, topology)
        rows.append(
            (
                name,
                topology.n,
                report.states_explored,
                report.terminal_states,
                str(sorted(report.leaders_seen)),
                f"{time.time() - started:.2f}s",
            )
        )
    print("Exhaustive interleaving verification "
          "(safety + liveness + validity in EVERY execution):\n")
    print(render_table(
        ("protocol", "N", "states", "terminals", "possible winners", "time"),
        rows,
    ))
    print("\nEvery interleaving elected exactly one valid leader — and every")
    print("base node wins in some schedule, because the adversary can wake")
    print("(or capture) candidates in any order it likes.")


if __name__ == "__main__":
    main()
