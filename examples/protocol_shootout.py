"""Shoot-out: every protocol in the paper on the same network sizes.

Prints the message/time table that summarises the paper's contribution —
who wins on which resource, and how the gaps open as N grows.  Protocols
that need sense of direction run on labeled networks; the rest run on an
unlabeled network with hidden random wiring.

Usage::

    python examples/protocol_shootout.py [N ...]
"""

from __future__ import annotations

import sys

from repro import (
    AfekGafni,
    HirschbergSinclair,
    ChangRoberts,
    LMW86,
    ProtocolA,
    ProtocolAPrime,
    ProtocolB,
    ProtocolC,
    ProtocolD,
    ProtocolE,
    ProtocolF,
    ProtocolG,
    complete_with_sense_of_direction,
    complete_without_sense,
    run_election,
)
from repro.analysis.tables import render_table

SENSE = [
    ("CR (ring baseline)", ChangRoberts),
    ("HS (ring baseline)", HirschbergSinclair),
    ("LMW86 (baseline)", LMW86),
    ("A", ProtocolA),
    ("A'", ProtocolAPrime),
    ("B", ProtocolB),
    ("C", ProtocolC),
]
NOSENSE = [
    ("D", ProtocolD),
    ("AG85 (baseline)", AfekGafni),
    ("E", ProtocolE),
    ("F", ProtocolF),
    ("G", ProtocolG),
]


def main() -> None:
    sizes = [int(a) for a in sys.argv[1:]] or [16, 64, 256]
    for n in sizes:
        rows = []
        for name, cls in SENSE:
            result = run_election(cls(), complete_with_sense_of_direction(n))
            rows.append((name, result.messages_total,
                         round(result.election_time, 1), result.leader_id))
        for name, cls in NOSENSE:
            result = run_election(cls(), complete_without_sense(n, seed=n))
            rows.append((name, result.messages_total,
                         round(result.election_time, 1), result.leader_id))
        print(f"\n=== N = {n} (simultaneous wake-up, unit delays) ===")
        print(render_table(("protocol", "messages", "time", "leader"), rows))


if __name__ == "__main__":
    main()
