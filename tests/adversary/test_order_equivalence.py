"""Tests for the comparison-based / order-equivalence machinery (Section 5)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.adversary.order_equivalence import (
    canonical_trace,
    check_comparison_based,
    order_isomorphic,
)
from repro.core.errors import ConfigurationError
from repro.protocols.nosense.protocol_d import ProtocolD
from repro.protocols.nosense.protocol_e import ProtocolE
from repro.protocols.nosense.protocol_f import ProtocolF
from repro.protocols.sense.protocol_a import ProtocolA
from repro.protocols.sense.protocol_c import ProtocolC
from repro.sim.tracing import TraceEvent


class TestOrderIsomorphism:
    def test_monotone_transforms_are_isomorphic(self):
        assert order_isomorphic([3, 1, 2], [30, 10, 20])
        assert order_isomorphic([0, 5, 9], [100, 200, 999])

    def test_rank_swaps_are_not(self):
        assert not order_isomorphic([1, 2, 3], [2, 1, 3])

    def test_length_mismatch(self):
        assert not order_isomorphic([1, 2], [1, 2, 3])


class TestCanonicalTrace:
    def test_identities_replaced_by_ranks_everywhere(self):
        events = [
            TraceEvent(1.0, "send", 30, (("message", "X"), ("to", 10))),
            TraceEvent(2.0, "level", 10, (("level", 2),)),
        ]
        canon = canonical_trace(events, [10, 20, 30])
        assert canon[0][2] == 2  # node 30 has rank 2
        assert dict(canon[0][3])["to"] == 0  # id 10 has rank 0
        assert dict(canon[1][3])["level"] == 2  # counts untouched


monotone_assignments = st.integers(min_value=2, max_value=12).flatmap(
    lambda n: st.tuples(
        st.just(list(range(n))),
        st.tuples(
            st.integers(min_value=1, max_value=50),
            st.integers(min_value=0, max_value=1000),
        ).map(lambda ab: [ab[0] * x + ab[1] for x in range(n)]),
    )
)


class TestComparisonBased:
    @pytest.mark.parametrize(
        "factory",
        [ProtocolD, ProtocolE, lambda: ProtocolF(k=3)],
        ids=["D", "E", "F"],
    )
    def test_unlabeled_protocols_cannot_distinguish_isomorphic_ids(self, factory):
        check_comparison_based(factory, list(range(10)),
                               [7 * x + 3 for x in range(10)])

    @pytest.mark.parametrize(
        "factory", [ProtocolA, ProtocolC], ids=["A", "C"]
    )
    def test_sense_protocols_are_comparison_based_too(self, factory):
        check_comparison_based(
            factory, list(range(16)), [5 * x + 2 for x in range(16)],
            sense_of_direction=True,
        )

    @settings(max_examples=10, deadline=None)
    @given(monotone_assignments)
    def test_property_affine_id_maps_never_distinguishable(self, pair):
        ids_a, ids_b = pair
        check_comparison_based(ProtocolE, ids_a, ids_b)

    def test_non_isomorphic_assignments_rejected(self):
        with pytest.raises(ConfigurationError, match="not order-isomorphic"):
            check_comparison_based(ProtocolD, [1, 2, 3], [3, 2, 1])

    def test_a_genuinely_identity_dependent_protocol_is_caught(self):
        """Sanity: the checker can fail.  A protocol where only even
        identities stand for election is not comparison-based."""
        from repro.protocols.nosense.protocol_d import ProtocolD, ProtocolDNode

        class ParityNode(ProtocolDNode):
            def on_wake(self, spontaneous):
                # Only even identities contest: an arithmetic (non-order)
                # property of the identity.
                super().on_wake(spontaneous and self.ctx.node_id % 2 == 0)

        class ParityProtocol(ProtocolD):
            name = "parity-test"

            def create_node(self, ctx):
                return ParityNode(ctx)

        # Same ranks, but rank 3 is even (4) in one assignment and odd (5)
        # in the other, so the candidate sets differ.
        with pytest.raises(AssertionError, match="diverge|lengths"):
            check_comparison_based(
                ParityProtocol, [1, 2, 3, 4], [1, 2, 3, 5], seed=0
            )
