"""Tests for the wake-up patterns."""

from __future__ import annotations

import random

import pytest

from repro.adversary import wakeup
from repro.core.errors import ConfigurationError
from repro.topology.complete import complete_with_sense_of_direction

RNG = random.Random(0)
TOPO = complete_with_sense_of_direction(16)


class TestSimultaneous:
    def test_everyone_at_the_given_time(self):
        schedule = wakeup.simultaneous(2.5)(TOPO, RNG)
        assert set(schedule) == set(range(16))
        assert set(schedule.values()) == {2.5}


class TestSingleBase:
    def test_one_entry(self):
        schedule = wakeup.single_base(3, time=1.0)(TOPO, RNG)
        assert schedule == {3: 1.0}

    def test_position_validated(self):
        with pytest.raises(ConfigurationError):
            wakeup.single_base(99)(TOPO, RNG)


class TestRandomSubset:
    def test_count_and_window_respected(self):
        schedule = wakeup.random_subset(5, window=3.0)(TOPO, RNG)
        assert len(schedule) == 5
        assert all(0.0 <= t <= 3.0 for t in schedule.values())

    def test_zero_window_means_simultaneous(self):
        schedule = wakeup.random_subset(4)(TOPO, RNG)
        assert set(schedule.values()) == {0.0}

    def test_count_validated(self):
        with pytest.raises(ConfigurationError):
            wakeup.random_subset(17)(TOPO, RNG)

    def test_seed_offset_changes_the_draw(self):
        rng_a, rng_b = random.Random(1), random.Random(1)
        a = wakeup.random_subset(5, seed_offset=0)(TOPO, rng_a)
        b = wakeup.random_subset(5, seed_offset=1)(TOPO, rng_b)
        assert a != b


class TestStaggeredChain:
    def test_spacing_is_one_minus_epsilon(self):
        schedule = wakeup.staggered_chain(epsilon=0.25)(TOPO, RNG)
        assert schedule[0] == 0.0
        assert schedule[5] == pytest.approx(5 * 0.75)

    def test_count_limits_participants(self):
        schedule = wakeup.staggered_chain(count=4)(TOPO, RNG)
        assert set(schedule) == {0, 1, 2, 3}

    def test_epsilon_validated(self):
        with pytest.raises(ConfigurationError):
            wakeup.staggered_chain(epsilon=0.0)


class TestStaggeredUniform:
    def test_spread_covered_evenly(self):
        schedule = wakeup.staggered_uniform(5, spread=8.0)(TOPO, RNG)
        assert schedule[0] == 0.0
        assert schedule[4] == pytest.approx(8.0)
        assert schedule[2] == pytest.approx(4.0)

    def test_single_node_degenerates(self):
        schedule = wakeup.staggered_uniform(1, spread=8.0)(TOPO, RNG)
        assert schedule == {0: 0.0}


class TestExplicit:
    def test_passes_through_verbatim(self):
        schedule = wakeup.explicit({2: 0.5, 9: 1.5})(TOPO, RNG)
        assert schedule == {2: 0.5, 9: 1.5}
