"""Tests for the staged forwarding-congestion scenario."""

from __future__ import annotations

import pytest

from repro.adversary.congestion import hotspot_scenario
from repro.core.errors import ConfigurationError
from repro.protocols.nosense.protocol_e import AfekGafni, ProtocolE
from repro.sim.network import Network


class TestScenarioShape:
    def test_minimum_size_enforced(self):
        with pytest.raises(ConfigurationError):
            hotspot_scenario(4)

    def test_everyone_claims_the_victim_first_except_the_winner(self):
        n = 12
        topo, wake, delays = hotspot_scenario(n)
        for p in range(1, n - 1):
            assert topo.neighbor(p, 0) == 0
        assert topo.neighbor(n - 1, topo.num_ports - 1) == 0

    def test_wake_order_blocker_winner_crowd(self):
        _, wake, _ = hotspot_scenario(12)
        assert wake[10] == 0.0  # blocker
        assert wake[11] == 0.1  # winner
        assert all(wake[p] == 0.2 for p in range(1, 10))
        assert 0 not in wake  # the victim stays passive


class TestScenarioOutcome:
    def test_the_designated_winner_wins_under_both_protocols(self):
        for protocol in (AfekGafni(), ProtocolE()):
            topo, wake, delays = hotspot_scenario(16)
            result = Network(protocol, topo, delays=delays, wakeup=wake).run()
            assert result.leader_id == 15

    def test_blocker_ends_stalled_with_pair_one(self):
        topo, wake, delays = hotspot_scenario(16)
        result = Network(ProtocolE(), topo, delays=delays, wakeup=wake).run()
        blocker = result.node_snapshots[14]
        assert blocker["role"] in ("stalled", "captured")

    def test_e_wins_the_duel_by_a_growing_margin(self):
        margins = []
        for n in (16, 64):
            topo, wake, delays = hotspot_scenario(n)
            slow = Network(AfekGafni(), topo, delays=delays, wakeup=wake).run()
            topo, wake, delays = hotspot_scenario(n)
            fast = Network(ProtocolE(), topo, delays=delays, wakeup=wake).run()
            margins.append(slow.election_time / fast.election_time)
        assert margins[1] > margins[0] > 1.5
