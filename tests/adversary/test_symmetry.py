"""Tests for the Lemma 5.1/5.2 band-symmetry machinery."""

from __future__ import annotations

import math

import pytest

from repro.adversary.delays import worst_case_unit
from repro.adversary.symmetry import (
    check_band_symmetry,
    history_signature,
    symmetric_prefix_time,
)
from repro.core.errors import ConfigurationError
from repro.protocols.nosense.protocol_e import ProtocolE
from repro.sim.network import Network
from repro.topology.complete import complete_without_sense
from repro.topology.ports import RandomPorts, UpDownPorts


def adversarial_trace(n, *, k=None):
    k = k if k is not None else max(1, math.ceil(math.log2(n)))
    topology = complete_without_sense(n, port_strategy=UpDownPorts(k))
    network = Network(
        ProtocolE(), topology, delays=worst_case_unit(), trace=True
    )
    return network.run(), k


class TestHistorySignature:
    def test_partner_identities_become_centered_offsets(self):
        result, _ = adversarial_trace(16)
        history = history_signature(result, 8, until=3.0)
        assert history, "the node must have acted by t=3"
        for _, kind, detail in history:
            for key, value in detail:
                if key in ("to", "sender", "cand", "owner"):
                    assert -8 < value <= 8  # centered, not raw ids

    def test_requires_a_trace(self):
        result = Network(
            ProtocolE(), complete_without_sense(8, seed=0)
        ).run()
        with pytest.raises(ConfigurationError, match="traced"):
            history_signature(result, 0)


class TestSymmetricPrefix:
    def test_adjacent_middle_nodes_are_long_symmetric(self):
        result, k = adversarial_trace(64)
        center = symmetric_prefix_time(result, 32, 33)
        assert center >= 64  # far beyond anything random wiring allows

    def test_random_wiring_breaks_symmetry_immediately(self):
        """The symmetry is the ADVERSARY's construction: benign random
        wiring has no translation invariance to preserve."""
        n = 64
        topology = complete_without_sense(n, port_strategy=RandomPorts(), seed=1)
        network = Network(
            ProtocolE(), topology, delays=worst_case_unit(), trace=True, seed=1
        )
        result = network.run()
        assert symmetric_prefix_time(result, 32, 33) <= 8.0


class TestLemmaShape:
    def test_symmetry_lasts_longer_deeper_into_the_middle(self):
        result, k = adversarial_trace(128)
        times = check_band_symmetry(result, band_width=k)
        assert (
            times["near_extreme"]
            < times["quarter_deep"]
            < times["center"]
        )

    def test_center_symmetry_scales_linearly_with_n(self):
        centers = {}
        for n in (64, 256):
            result, k = adversarial_trace(n)
            centers[n] = check_band_symmetry(result, band_width=k)["center"]
        assert centers[256] / centers[64] > 3.0

    def test_center_nodes_stay_symmetric_for_almost_the_whole_run(self):
        """Lemma 5.2's conclusion: the middle cannot be told apart until
        the execution is nearly over — which is exactly why the election
        cannot finish early."""
        result, k = adversarial_trace(128)
        center = check_band_symmetry(result, band_width=k)["center"]
        assert center >= 0.9 * result.election_time
